# Convenience targets for the repro library.

.PHONY: install test bench report examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report --output results/REPORT.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
