# Convenience targets for the repro library.

.PHONY: install test check bench bench-smoke bench-kernel bench-pipeline bench-obs bench-serve bench-journal bench-ledger bench-tempering serve-smoke scrape-smoke crash-smoke fuzz-smoke tune-smoke report examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/ -q

# Robustness gate: the chaos fault-injection suite plus a strict deep
# verification of the smoke workload (see docs/robustness.md).
check:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m pytest tests/test_chaos.py -q
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro check smoke --verify strict

bench:
	pytest benchmarks/ --benchmark-only

# Tiny engine shakedown (<30 s): two short codesign jobs through the
# process pool, no cache, telemetry trace into results/.
bench-smoke:
	@mkdir -p results
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro run smoke \
		--jobs 2 --no-cache --trace results/smoke_trace.jsonl

# Exchange-kernel throughput gate (<30 s): times the array backend against
# the object model at 448/1792 fingers and fails below 2x at 1792 (the
# full sweep with the recorded speedup table is `pytest benchmarks/bench_kernel.py`).
bench-kernel:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python benchmarks/bench_kernel.py --smoke

# End-to-end staged-pipeline smoke (<30 s): one assign+density+IR flow
# iteration on both backends at 4096 fingers, failing below 2x (the full
# 100k sweep writing results/BENCH_pipeline.json is
# `pytest benchmarks/bench_pipeline.py`).
bench-pipeline:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python benchmarks/bench_pipeline.py --smoke

# Observability null-path gate (<30 s): the instrumented SA loop with
# telemetry disabled must be within 5% of a telemetry-free replica
# (see docs/observability.md); writes results/BENCH_obs.json.
bench-obs:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python benchmarks/bench_obs.py

# Serving-layer end-to-end smoke (<60 s): start a real `repro serve`
# subprocess on an ephemeral port, POST a co-design job, prove the
# identical second request is served without re-executing, then SIGTERM
# and require a clean drain with exit code 143 (see docs/serving.md).
serve-smoke:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro.serve.smoke

# Telemetry-plane smoke (<60 s): start a real daemon, submit a job, GET
# /metrics, run the exposition through the promtool-style validator, and
# require the request-latency histogram and queue gauges to show the
# traffic; then SIGTERM -> 143 (see docs/observability.md).
scrape-smoke:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro.serve.scrape_smoke

# Perf-regression ledger gate (<5 min): run every registered bench, append
# schema-versioned records (git rev, seed, host fingerprint) to
# results/BENCH_history.jsonl, then gate the newest records against the
# committed results/BENCH_baseline.json (see docs/observability.md).
bench-ledger:
	@mkdir -p results
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro bench run
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro bench compare --gate 20

# kill -9 recovery smoke (<90 s): SIGKILL a journaled daemon mid-stream,
# restart it on the same journal + cache, and require every submitted
# digest to settle byte-identically to a crash-free reference without
# re-executing the work that already settled (see docs/robustness.md).
crash-smoke:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro.serve.crash_smoke

# Serving-layer throughput gate (<60 s): cold/hot/duplicate request mixes
# against an in-process daemon; fails below the hot-cache req/s floor or
# if the duplicate burst executes more than one job.  Writes
# results/BENCH_serve.json.
bench-serve:
	@mkdir -p results
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python benchmarks/bench_serve.py --smoke

# Durability overhead gate (<90 s): the journal on the hot serve path must
# stay within 10% of the unjournaled daemon's hot req/s, and periodic SA
# checkpointing must cost <= 5% anneal walltime.  Writes
# results/BENCH_journal.json.
bench-journal:
	@mkdir -p results
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python benchmarks/bench_journal.py

# Tuning-stack smoke (<30 s): a tiny sweep run twice against a throwaway
# cache (must replay >= 90% from cache with byte-identical reports) plus a
# K=2 tempering run whose sa.swap trace must validate (see docs/tuning.md).
tune-smoke:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro.tune.smoke

# Parallel-tempering quality gate (<60 s): K=4 replica exchange must reach
# an equal-or-better Eq.-3 cost than the single chain on the benchmark
# circuits at the pinned seed.  Writes results/BENCH_tempering.json.
bench-tempering:
	@mkdir -p results
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python benchmarks/bench_tempering.py --smoke

# Differential-fuzz gate (~60 s, fixed seed so CI failures replay locally):
# a 200-case campaign over every oracle, then a replay of the checked-in
# minimized corpus (see docs/fuzzing.md).
fuzz-smoke:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro fuzz \
		--cases 200 --seed 0 --corpus tests/data/fuzz_corpus
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m repro fuzz replay \
		--corpus tests/data/fuzz_corpus

report:
	python -m repro report --output results/REPORT.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
