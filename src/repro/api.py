"""The stable high-level facade of the reproduction (``repro.api``).

PRs grew three overlapping entry points — :class:`~repro.flow.CoDesignFlow`,
``flow.run_experiment`` and the ``JobEngine`` workloads — each with its own
seed/verify/telemetry spelling.  This module is the one front door: five
functions covering the paper's pipeline end to end, all taking the same
keywords with the same meaning:

``seed=``
    One per-call integer seed; every stochastic stage derives from it.
    Never stored on objects (``RandomAssigner(seed=...)`` is deprecated).
``verify=``
    A :mod:`repro.verify` policy name: ``"off"`` (default), ``"strict"``,
    ``"repair"`` or ``"degrade"``.
``telemetry=``
    ``None`` (inherit the ambient telemetry), a
    :class:`~repro.runtime.Telemetry`, or a path-like — which opens a
    JSONL trace at that path for the duration of the call.
``backend=``
    Pipeline kernel selection: ``"auto"`` (default), ``"object"``,
    ``"array"`` or ``"exact"`` (see :mod:`repro.kernels`).  One keyword
    drives every stage — SA exchange cost machinery, staged assignment
    and density estimation (``"exact"`` only means something to the
    exchange stage; others treat it as ``"object"``).

Typical session::

    import repro.api as api

    design = api.load_design("design.json")       # or a Table-1 index
    assigned = api.assign(design, seed=7)
    exchanged = api.exchange(design, assigned.assignments, seed=7)
    metrics = api.evaluate(design, exchanged.after)
    # ... or the whole two-step flow in one call:
    result = api.run(design, seed=7, verify="repair")
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Protocol, Union, runtime_checkable

from .assign import DFAAssigner, IFAAssigner, RandomAssigner
from .assign import assign_design as _assign_design
from .errors import ReproError
from .exchange import CostWeights, ExchangeResult, SAParams
from .flow.codesign import CoDesignFlow, CoDesignResult
from .flow.metrics import DesignMetrics, measure
from .package import NetType, PackageDesign
from .power import PowerGridConfig

__all__ = [
    "Assigner",
    "AssignResult",
    "DensityEstimator",
    "EvaluateResult",
    "ExchangeOutcome",
    "Factorization",
    "IRSolver",
    "RunResult",
    "assign",
    "evaluate",
    "exchange",
    "load_design",
    "run",
]


# -- staged solver protocols -------------------------------------------------
#
# The pipeline's three pre-exchange stages as structural interfaces.  Any
# object with the right methods satisfies them (the stock implementations
# do: repro.assign assigners, routing.MonotonicDensityEstimator,
# power.FDSolver / power.IRDropAnalyzer, kernels.GridFactorization) — no
# inheritance required, so alternative routers/solvers slot in without
# importing repro internals.


@runtime_checkable
class Assigner(Protocol):
    """Step-1 strategy: one monotonic-legal assignment per quadrant.

    Design-level runs go through :func:`repro.assign.assign_design`
    (or :func:`assign` here), which owns the per-quadrant seed derivation
    and the ``backend=`` dispatch onto the array kernels.
    """

    def assign(self, quadrant, seed: Optional[int] = None):
        """Produce an ``Assignment`` for *quadrant*."""


@runtime_checkable
class DensityEstimator(Protocol):
    """Pre-route congestion model: assignment(s) -> max wire density."""

    def max_density(self, assignment) -> int:
        """Maximum run density of one quadrant assignment."""

    def max_density_of_design(self, assignments: Dict) -> int:
        """Maximum density across every quadrant of a design."""


@runtime_checkable
class Factorization(Protocol):
    """Prefactorized power grid: cheap re-solves per injection vector."""

    def solve(self, current_map=None):
        """Solve one injection vector; returns an ``IRDropResult``."""


@runtime_checkable
class IRSolver(Protocol):
    """Power-grid solver with an explicit factor-once / re-solve-many split."""

    def factorize(self, pads) -> Factorization:
        """Factor the grid for one pad configuration."""

#: Assigner spellings accepted by ``assign()`` and ``run()``.
_ASSIGNERS = {
    "random": RandomAssigner,
    "ifa": IFAAssigner,
    "dfa": DFAAssigner,
}


# -- shared keyword plumbing -------------------------------------------------


def _telemetry_scope(telemetry):
    """Resolve the uniform ``telemetry=`` keyword into a context manager.

    ``None`` inherits whatever telemetry is ambient (usually the no-op
    default); a ``Telemetry`` instance is installed for the call; a
    str/Path opens a JSONL sink at that location for the call.
    """
    from .runtime import JsonlSink, Telemetry, using_telemetry

    if telemetry is None:
        return contextlib.nullcontext()
    if isinstance(telemetry, Telemetry):
        return using_telemetry(telemetry)

    @contextlib.contextmanager
    def _jsonl_scope():
        from .obs.schema import SCHEMA_VERSION

        # The sink is a context manager, so a facade call that raises
        # mid-trace still flushes and closes the file.
        with JsonlSink(telemetry) as sink:
            scoped = Telemetry(sink=sink)
            scoped.emit(
                "trace.meta", schema=SCHEMA_VERSION, tool="repro", command="api"
            )
            with using_telemetry(scoped):
                yield

    return _jsonl_scope()


def _resolve_assigner(method: Union[str, Assigner, None]) -> Assigner:
    if method is None:
        return DFAAssigner()
    if isinstance(method, Assigner):
        return method
    try:
        return _ASSIGNERS[str(method).lower()]()
    except KeyError:
        raise ReproError(
            f"unknown assigner {method!r}; expected an Assigner instance or "
            f"one of {', '.join(sorted(_ASSIGNERS))}"
        ) from None


def _resolve_grid(grid) -> Optional[PowerGridConfig]:
    if grid is None or isinstance(grid, PowerGridConfig):
        return grid
    return PowerGridConfig(size=int(grid))


# -- result dataclasses ------------------------------------------------------


@dataclass
class AssignResult:
    """What ``assign()`` produced."""

    design: PackageDesign
    #: ``{side: Assignment}`` in design ring order.
    assignments: Dict
    #: Name of the assigner that produced it ("Random", "IFA", "DFA", ...).
    assigner: str
    seed: Optional[int] = None

    def orders(self) -> Dict:
        """JSON-friendly ``{side value: [net ids]}`` view."""
        return {side.value: a.order for side, a in self.assignments.items()}


@dataclass
class ExchangeOutcome:
    """What ``exchange()`` produced (a thin typed view of ExchangeResult)."""

    design: PackageDesign
    result: ExchangeResult
    #: The backend that actually ran ("object" or "array").
    backend: str
    seed: Optional[int] = None

    @property
    def before(self) -> Dict:
        return self.result.before

    @property
    def after(self) -> Dict:
        return self.result.after

    @property
    def bonding_improvement(self) -> float:
        return self.result.bonding_improvement

    @property
    def stats(self):
        return self.result.stats


@dataclass
class EvaluateResult:
    """What ``evaluate()`` produced."""

    design: PackageDesign
    metrics: DesignMetrics

    @property
    def max_density(self) -> int:
        return self.metrics.max_density

    @property
    def max_ir_drop(self) -> Optional[float]:
        return self.metrics.max_ir_drop


@dataclass
class RunResult:
    """What ``run()`` produced: the full two-step co-design outcome."""

    design: PackageDesign
    result: CoDesignResult
    backend: str
    seed: Optional[int] = None
    extra: Dict = field(default_factory=dict)

    @property
    def assignments(self) -> Dict:
        return self.result.assignments_final

    @property
    def metrics_initial(self) -> Optional[DesignMetrics]:
        return self.result.metrics_initial

    @property
    def metrics_final(self) -> Optional[DesignMetrics]:
        return self.result.metrics_final

    @property
    def ir_improvement(self) -> float:
        return self.result.ir_improvement

    @property
    def bonding_improvement(self) -> float:
        return self.result.bonding_improvement


# -- the facade --------------------------------------------------------------


def load_design(
    source: Union[str, Path, int],
    tiers: int = 1,
    seed: int = 0,
    verify: str = "off",
) -> PackageDesign:
    """Load a package design from JSON, or build a Table-1 circuit.

    ``source`` is either a path to a design JSON (``io.save_design``
    format) or an integer 1-5 selecting a Table-1 circuit (``tiers`` and
    ``seed`` shape the synthetic build).  Any active ``verify`` policy
    checks the design on ingest and raises
    :class:`~repro.errors.VerificationError` on malformed input.
    """
    if isinstance(source, bool):
        raise ReproError("load_design source must be a path or circuit index")
    if isinstance(source, int):
        from .circuits import build_design, table1_circuit

        design = build_design(table1_circuit(source, tier_count=tiers), seed=seed)
    else:
        from .io import load_design as _load

        design = _load(source)
    if verify != "off":
        from .verify import check_design, normalize

        normalize(verify)
        check_design(design).raise_if_errors()
    return design


def assign(
    design: PackageDesign,
    method: Union[str, Assigner, None] = None,
    seed: Optional[int] = None,
    verify: str = "off",
    telemetry=None,
    backend: str = "auto",
) -> AssignResult:
    """Step 1: congestion-driven finger/pad assignment (DFA by default)."""
    from .obs.spans import span

    assigner = _resolve_assigner(method)
    with _telemetry_scope(telemetry), span("api.assign", assigner=assigner.name):
        assignments = _assign_design(assigner, design, seed=seed, backend=backend)
        if verify != "off":
            from .verify import check_assignments, normalize

            policy = normalize(verify)
            report = check_assignments(design, assignments)
            if not report.ok and policy in ("repair", "degrade"):
                from .verify import repair_assignments

                repair_assignments(design, assignments)
                report = check_assignments(design, assignments)
            report.raise_if_errors()
    return AssignResult(
        design=design, assignments=assignments, assigner=assigner.name, seed=seed
    )


def exchange(
    design: PackageDesign,
    assignments: Dict,
    weights: Optional[CostWeights] = None,
    sa_params: Optional[SAParams] = None,
    net_type: Optional[NetType] = NetType.POWER,
    seed: Optional[int] = None,
    verify: str = "off",
    telemetry=None,
    backend: str = "auto",
) -> ExchangeOutcome:
    """Step 2: SA finger/pad exchange (Eq. 3) from an existing assignment."""
    from .exchange import FingerPadExchanger
    from .obs.spans import span

    exchanger = FingerPadExchanger(
        design,
        weights=weights,
        params=sa_params,
        net_type=net_type,
        backend=backend,
    )
    with _telemetry_scope(telemetry), span("api.exchange", backend=exchanger.backend):
        result = exchanger.run(assignments, seed=seed)
        if verify != "off":
            from .verify import check_assignments, normalize

            normalize(verify)
            check_assignments(
                design, result.after, baseline=result.before
            ).raise_if_errors()
    return ExchangeOutcome(
        design=design, result=result, backend=exchanger.backend, seed=seed
    )


def evaluate(
    design: PackageDesign,
    assignments: Dict,
    grid: Union[int, PowerGridConfig, None] = None,
    with_ir: bool = True,
    net_type: Optional[NetType] = NetType.POWER,
    verify: str = "off",
    telemetry=None,
    backend: str = "auto",
) -> EvaluateResult:
    """Measure an assignment: density, wirelength, omega and IR-drop."""
    from .obs.spans import span

    with _telemetry_scope(telemetry), span("api.evaluate"):
        if verify != "off":
            from .verify import check_assignments, normalize

            normalize(verify)
            check_assignments(design, assignments).raise_if_errors()
        metrics = measure(
            design,
            assignments,
            grid_config=_resolve_grid(grid),
            with_ir=with_ir,
            net_type=net_type,
            backend=backend,
        )
        if verify != "off" and with_ir:
            from .verify import check_power_values

            check_power_values(
                {"max_ir_drop": metrics.max_ir_drop}
            ).raise_if_errors()
    return EvaluateResult(design=design, metrics=metrics)


def run(
    design: PackageDesign,
    method: Union[str, Assigner, None] = None,
    weights: Optional[CostWeights] = None,
    sa_params: Optional[SAParams] = None,
    grid: Union[int, PowerGridConfig, None] = None,
    net_type: Optional[NetType] = NetType.POWER,
    seed: Optional[int] = 0,
    verify: str = "off",
    telemetry=None,
    backend: str = "auto",
) -> RunResult:
    """The whole two-step co-design flow (paper Fig. 1(B)) in one call.

    Equivalent to ``CoDesignFlow(...).run(design, seed=seed)`` — the flow
    remains the implementation; this is the stable spelling.
    """
    flow = CoDesignFlow(
        assigner=_resolve_assigner(method),
        weights=weights,
        sa_params=sa_params,
        grid_config=_resolve_grid(grid),
        net_type=net_type,
        verify=verify,
        backend=backend,
    )
    from .obs.spans import span

    with _telemetry_scope(telemetry), span("api.run"):
        result = flow.run(design, seed=seed)
    from .kernels import resolve_backend

    return RunResult(
        design=design,
        result=result,
        backend=resolve_backend(backend, design),
        seed=seed,
    )
