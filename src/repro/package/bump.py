"""Bump balls and the per-quadrant bump-ball array.

In the canonical quadrant frame (see :mod:`repro.geometry.transform`) the
fingers sit on a horizontal row at the top and the bump-ball rows extend
downwards.  Row ``y = R`` (``R`` = row count) is the *highest* horizontal
line, i.e. the one nearest the fingers — the paper's ``y = n``.  Row ``y = 1``
is the outermost ring of the BGA quadrant.  Outer rows hold at least as many
balls as inner rows (the quadrant is a trapezoid cut by the diagonal
cut-lines of Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import PackageModelError
from ..geometry import Point


@dataclass(frozen=True)
class BumpBall:
    """One bump ball: the landing site of one net on layer 2.

    ``col``/``row`` are 1-based indices inside the quadrant's bump array;
    ``col`` counts left-to-right within the row, ``row`` counts from the
    outermost ring (1) towards the fingers (``row_count``).
    """

    net_id: int
    col: int
    row: int

    def __post_init__(self) -> None:
        if self.col < 1 or self.row < 1:
            raise PackageModelError(
                f"bump ball indices must be 1-based, got ({self.col},{self.row})"
            )


class BumpArray:
    """The bump balls of one quadrant, organized by row.

    Parameters
    ----------
    rows:
        ``rows[i]`` is the left-to-right sequence of net ids of row ``i + 1``
        (row 1 is the outermost ring, the last row is nearest the fingers).
    pitch:
        Physical bump-ball pitch in micrometres (Table 1's "bump ball
        space" plus the ball diameter).
    """

    def __init__(self, rows: Sequence[Sequence[int]], pitch: float = 1.0) -> None:
        if pitch <= 0:
            raise PackageModelError(f"bump pitch must be positive, got {pitch}")
        if not rows:
            raise PackageModelError("bump array needs at least one row")
        self._rows: List[List[int]] = [list(row) for row in rows]
        self.pitch = float(pitch)
        seen: Dict[int, BumpBall] = {}
        for row_index, row in enumerate(self._rows, start=1):
            if not row:
                raise PackageModelError(f"bump row {row_index} is empty")
            for col_index, net_id in enumerate(row, start=1):
                if net_id in seen:
                    raise PackageModelError(
                        f"net {net_id} owns more than one bump ball"
                    )
                seen[net_id] = BumpBall(net_id=net_id, col=col_index, row=row_index)
        self._ball_of = seen

    # -- structure ---------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of horizontal bump rows (the paper's ``n``)."""
        return len(self._rows)

    @property
    def net_count(self) -> int:
        """Total number of balls (== number of nets in the quadrant)."""
        return len(self._ball_of)

    def row_nets(self, row: int) -> List[int]:
        """Net ids of row *row* (1-based), left to right."""
        self._check_row(row)
        return list(self._rows[row - 1])

    def row_size(self, row: int) -> int:
        """Number of balls in row *row*."""
        self._check_row(row)
        return len(self._rows[row - 1])

    def ball_of(self, net_id: int) -> BumpBall:
        """The bump ball owned by *net_id*."""
        try:
            return self._ball_of[net_id]
        except KeyError:
            raise PackageModelError(f"net {net_id} has no bump ball") from None

    def net_ids(self) -> List[int]:
        """All net ids, outer rows first, left to right within each row."""
        return [net_id for row in self._rows for net_id in row]

    def __contains__(self, net_id: int) -> bool:
        return net_id in self._ball_of

    def rows_top_down(self) -> List[int]:
        """Row indices from the highest line (nearest fingers) outwards.

        This is the processing order of both IFA and DFA (paper Figs. 9, 11):
        ``y = n`` first, then ``y = n-1`` and so on.
        """
        return list(range(self.row_count, 0, -1))

    def _check_row(self, row: int) -> None:
        if not (1 <= row <= self.row_count):
            raise PackageModelError(
                f"row {row} outside 1..{self.row_count}"
            )

    # -- physical coordinates (canonical quadrant frame) --------------------

    def row_y(self, row: int) -> float:
        """Physical y coordinate of row *row*; fingers sit at y = 0 above."""
        self._check_row(row)
        return -(self.row_count - row + 1) * self.pitch

    def ball_position(self, net_id: int) -> Point:
        """Physical centre of the ball owned by *net_id*.

        Each row is centred on x = 0, so the quadrant trapezoid is symmetric
        about the vertical axis through the middle of the finger row.
        """
        ball = self.ball_of(net_id)
        row_size = self.row_size(ball.row)
        x = (ball.col - (row_size + 1) / 2.0) * self.pitch
        return Point(x, self.row_y(ball.row))

    def via_position(self, net_id: int) -> Point:
        """Physical location of the net's via: the ball's bottom-left corner.

        This is the paper's convention (section 3.1): "the connected via is
        fixed at the bottom-left corner of the bump ball".
        """
        ball_pos = self.ball_position(net_id)
        return Point(ball_pos.x - self.pitch / 2.0, ball_pos.y - self.pitch / 2.0)

    def via_candidate_xs(self, row: int) -> List[float]:
        """X coordinates of the via candidate sites on row *row*'s line.

        A row with ``m`` balls has ``m + 1`` candidates: the gaps left of the
        first ball, between each pair of adjacent balls, and right of the
        last ball ("the number of vias between four adjacent bump balls is at
        most one").  Ball ``j`` uses candidate ``j - 1`` (its bottom-left
        corner); the rightmost candidate is never owned by a ball.
        """
        row_size = self.row_size(row)
        first_ball_x = (1 - (row_size + 1) / 2.0) * self.pitch
        return [
            first_ball_x + (j - 0.5) * self.pitch for j in range(0, row_size + 1)
        ]

    def validate_against(self, net_ids: Sequence[int]) -> None:
        """Check that the array covers exactly the given nets."""
        expected = set(net_ids)
        actual = set(self._ball_of)
        if expected != actual:
            missing = sorted(expected - actual)
            extra = sorted(actual - expected)
            raise PackageModelError(
                f"bump array does not match netlist: missing={missing} extra={extra}"
            )
