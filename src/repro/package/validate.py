"""Design-rule checking for package designs.

The paper's experimental setup fixes physical dimensions (Table 1: via
diameter 0.1 um, ball diameter 0.2 um, bump/finger pitches); "if the density
is higher, it indicates that too many wires pass through a narrow range,
therefore a violation of design rules probably occurred" (section 2.3).
This module makes those rules explicit: geometric sanity of the package
stack plus the wire-capacity rule that links the congestion model to the
physical gap between via candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .design import PackageDesign


@dataclass(frozen=True)
class DRCViolation:
    """One design-rule violation."""

    rule: str
    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.rule}: {self.message}"


@dataclass
class DRCReport:
    """Outcome of a design-rule check."""

    violations: List[DRCViolation] = field(default_factory=list)

    @property
    def errors(self) -> List[DRCViolation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> List[DRCViolation]:
        return [v for v in self.violations if v.severity == "warning"]

    @property
    def is_clean(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not self.errors

    def render(self) -> str:
        """Human-readable report."""
        if not self.violations:
            return "DRC clean: no violations"
        lines = [f"DRC: {len(self.errors)} error(s), {len(self.warnings)} warning(s)"]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)


#: Default minimal spacing between two wires, as a fraction of via diameter.
DEFAULT_WIRE_PITCH_FACTOR = 1.5


def check_design(
    design: PackageDesign,
    max_density: Optional[Dict] = None,
    wire_pitch: Optional[float] = None,
) -> DRCReport:
    """Run all design rules against *design*.

    Parameters
    ----------
    max_density:
        Optional ``{side: int}`` of per-quadrant maximum densities (from
        :func:`repro.routing.max_density`); when given, the wire-capacity
        rule checks that the congested gaps can physically hold that many
        wires.
    wire_pitch:
        Minimal wire centre-to-centre pitch in micrometres.  Defaults to
        ``DEFAULT_WIRE_PITCH_FACTOR * via_diameter``.
    """
    report = DRCReport()
    technology = design.technology
    if wire_pitch is None:
        wire_pitch = DEFAULT_WIRE_PITCH_FACTOR * technology.via_diameter

    # Rule 1: vias must fit between bump balls.
    clearance = technology.bump_ball_space - technology.via_diameter
    if clearance < 0:
        report.violations.append(
            DRCViolation(
                rule="via-fits-gap",
                severity="error",
                message=(
                    f"via diameter {technology.via_diameter} um exceeds the "
                    f"bump-ball space {technology.bump_ball_space} um"
                ),
            )
        )

    # Rule 2: bump balls must not overlap.
    if technology.bump_ball_space <= 0:
        report.violations.append(
            DRCViolation(
                rule="ball-overlap",
                severity="error",
                message="bump balls touch: non-positive ball space",
            )
        )

    # Rule 3: finger row must not be wider than the outermost bump row
    # plus a pitch of margin — otherwise bonding wires fan excessively.
    for side, quadrant in design:
        widest = max(
            quadrant.bumps.row_size(row) for row in range(1, quadrant.row_count + 1)
        )
        bump_extent = widest * technology.bump_pitch
        finger_extent = quadrant.fingers.extent
        if finger_extent > 2.0 * bump_extent:
            report.violations.append(
                DRCViolation(
                    rule="finger-overhang",
                    severity="warning",
                    message=(
                        f"{side.value}: finger row ({finger_extent:.2f} um) is "
                        f"more than twice the bump span ({bump_extent:.2f} um); "
                        "outer bonding wires will be long"
                    ),
                )
            )

    # Rule 4: bump rows must not grow towards the die (monotonic trapezoid).
    for side, quadrant in design:
        sizes = [
            quadrant.bumps.row_size(row) for row in range(1, quadrant.row_count + 1)
        ]
        if any(inner > outer for outer, inner in zip(sizes, sizes[1:])):
            report.violations.append(
                DRCViolation(
                    rule="trapezoid-shape",
                    severity="warning",
                    message=(
                        f"{side.value}: bump rows {sizes} widen towards the die; "
                        "the diagonal cut-lines of a BGA quadrant never do"
                    ),
                )
            )

    # Rule 5: wire capacity — the congested gap must hold its wires.
    if max_density:
        gap_width = technology.bump_pitch - technology.via_diameter
        capacity = int(gap_width // wire_pitch)
        for side, density in max_density.items():
            if density > capacity:
                report.violations.append(
                    DRCViolation(
                        rule="wire-capacity",
                        severity="error",
                        message=(
                            f"{getattr(side, 'value', side)}: max density "
                            f"{density} exceeds the {capacity} wires that fit "
                            f"in a {gap_width:.2f} um gap at {wire_pitch:.2f} um "
                            "pitch"
                        ),
                    )
                )

    return report
