"""Package model: nets, bump balls, fingers, quadrants, designs, stacking."""

from .bump import BumpArray, BumpBall
from .design import PackageDesign, PackageTechnology
from .finger import FingerRow
from .net import Net, NetList, NetType
from .quadrant import Quadrant, quadrant_from_rows
from .stacking import StackingConfig, assign_tiers_round_robin, bonding_wire_crossings
from .validate import DRCReport, DRCViolation, check_design

__all__ = [
    "BumpArray",
    "DRCReport",
    "DRCViolation",
    "check_design",
    "BumpBall",
    "FingerRow",
    "Net",
    "NetList",
    "NetType",
    "PackageDesign",
    "PackageTechnology",
    "Quadrant",
    "StackingConfig",
    "bonding_wire_crossings",
    "assign_tiers_round_robin",
    "quadrant_from_rows",
]
