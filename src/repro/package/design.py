"""Whole-package design: four quadrants plus physical/stack parameters.

A :class:`PackageDesign` is the top-level object a user builds (usually via
:mod:`repro.circuits`) and feeds to the co-design flow.  Each quadrant is an
independent sub-problem; the design also carries the Table-1 physical
parameters and the stacking configuration, and knows how to map finger slots
to positions on the chip boundary ring (needed by the IR-drop model, since
the paper assumes finger order == pad order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..errors import PackageModelError
from ..geometry import Side
from .net import Net
from .quadrant import Quadrant
from .stacking import StackingConfig


@dataclass(frozen=True)
class PackageTechnology:
    """Physical package parameters (the columns of Table 1)."""

    bump_ball_space: float = 1.2
    bump_ball_diameter: float = 0.2
    via_diameter: float = 0.1
    finger_width: float = 0.1
    finger_height: float = 0.2
    finger_space: float = 0.12

    def __post_init__(self) -> None:
        values = (
            self.bump_ball_space,
            self.bump_ball_diameter,
            self.via_diameter,
            self.finger_width,
            self.finger_height,
        )
        if any(value <= 0 for value in values):
            raise PackageModelError("package technology dimensions must be positive")
        if self.finger_space < 0:
            raise PackageModelError("finger space must be non-negative")

    @property
    def bump_pitch(self) -> float:
        """Centre-to-centre bump-ball distance."""
        return self.bump_ball_space + self.bump_ball_diameter

    @property
    def finger_pitch(self) -> float:
        """Centre-to-centre finger distance."""
        return self.finger_width + self.finger_space


class PackageDesign:
    """A complete finger/pad planning problem instance."""

    def __init__(
        self,
        quadrants: Dict[Side, Quadrant],
        technology: PackageTechnology = PackageTechnology(),
        stacking: StackingConfig = StackingConfig(),
        name: str = "design",
    ) -> None:
        if not quadrants:
            raise PackageModelError("a design needs at least one quadrant")
        self.quadrants = dict(quadrants)
        self.technology = technology
        self.stacking = stacking
        self.name = name
        self._validate_tiers()

    def _validate_tiers(self) -> None:
        psi = self.stacking.tier_count
        for quadrant in self.quadrants.values():
            for net in quadrant.netlist:
                if not (1 <= net.tier <= psi):
                    raise PackageModelError(
                        f"net {net.name} on tier {net.tier}, "
                        f"but the stack has {psi} tier(s)"
                    )

    # -- iteration helpers ---------------------------------------------------

    @property
    def sides(self) -> List[Side]:
        """Sides present in the design, in ring order (bottom, right, top, left)."""
        order = [Side.BOTTOM, Side.RIGHT, Side.TOP, Side.LEFT]
        return [side for side in order if side in self.quadrants]

    def __iter__(self) -> Iterator[Tuple[Side, Quadrant]]:
        for side in self.sides:
            yield side, self.quadrants[side]

    @property
    def total_net_count(self) -> int:
        """Total finger/pad count of the design (Table 1, column 2)."""
        return sum(quadrant.net_count for __, quadrant in self)

    def all_nets(self) -> List[Net]:
        """All nets in ring order: per side, netlist order."""
        return [net for __, quadrant in self for net in quadrant.netlist]

    # -- chip boundary ring ---------------------------------------------------

    def ring_slot_count(self) -> int:
        """Number of pad positions around the chip boundary ring."""
        return self.total_net_count

    def ring_position(self, side: Side, slot: int) -> float:
        """Position of a finger slot on the boundary ring, in ``[0, 1)``.

        The ring walks bottom -> right -> top -> left, so finger slot ``a`` of
        a side maps to a fraction of the full chip perimeter.  Because finger
        order equals pad order, this is also the chip pad position the
        IR-drop model uses.
        """
        if side not in self.quadrants:
            raise PackageModelError(f"design has no {side.value} quadrant")
        offset = 0
        for ring_side in self.sides:
            quadrant = self.quadrants[ring_side]
            if ring_side is side:
                if not (1 <= slot <= quadrant.net_count):
                    raise PackageModelError(
                        f"slot {slot} outside 1..{quadrant.net_count} "
                        f"on side {side.value}"
                    )
                return (offset + slot - 0.5) / self.ring_slot_count()
            offset += quadrant.net_count
        raise PackageModelError(f"design has no {side.value} quadrant")

    def describe(self) -> str:
        """Multi-line human-readable summary of the design."""
        lines = [
            f"PackageDesign '{self.name}': {self.total_net_count} finger/pads, "
            f"psi={self.stacking.tier_count}"
        ]
        for side, quadrant in self:
            lines.append(f"  {quadrant.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackageDesign(name={self.name!r}, nets={self.total_net_count}, "
            f"sides={[side.value for side in self.sides]})"
        )
