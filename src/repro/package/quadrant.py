"""The quadrant: the unit sub-problem of finger/pad planning.

The package area is partitioned into four triangular parts by its diagonals
(paper Fig. 2) "and solve the package problems individually (as used in
[10])".  A :class:`Quadrant` bundles everything one sub-problem needs: the
nets, their bump balls and the finger row.  All assignment algorithms
(random / IFA / DFA), the density estimator, the monotonic router and the
exchange step operate on quadrants.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import PackageModelError
from ..geometry import Side
from .bump import BumpArray
from .finger import FingerRow
from .net import Net, NetList


class Quadrant:
    """One side of the package: nets + bump balls + finger row."""

    def __init__(
        self,
        netlist: NetList,
        bumps: BumpArray,
        fingers: Optional[FingerRow] = None,
        side: Side = Side.BOTTOM,
    ) -> None:
        bumps.validate_against([net.id for net in netlist])
        if fingers is None:
            fingers = FingerRow(slot_count=len(netlist))
        if fingers.slot_count != len(netlist):
            raise PackageModelError(
                f"finger row has {fingers.slot_count} slots "
                f"but the quadrant holds {len(netlist)} nets"
            )
        self.netlist = netlist
        self.bumps = bumps
        self.fingers = fingers
        self.side = side

    # -- convenience accessors ----------------------------------------------

    @property
    def net_count(self) -> int:
        return len(self.netlist)

    @property
    def row_count(self) -> int:
        return self.bumps.row_count

    def net(self, net_id: int) -> Net:
        return self.netlist.by_id(net_id)

    def ball_row(self, net_id: int) -> int:
        """Bump-row index (1 = outermost) of the net's ball."""
        return self.bumps.ball_of(net_id).row

    def ball_col(self, net_id: int) -> int:
        """Bump-column index within its row of the net's ball."""
        return self.bumps.ball_of(net_id).col

    def row_nets(self, row: int) -> List[int]:
        return self.bumps.row_nets(row)

    def supply_net_ids(self) -> List[int]:
        """Power/ground nets of this quadrant."""
        return self.netlist.supply_ids()

    def highest_row_nets(self) -> List[int]:
        """Nets of the highest horizontal line (nearest the fingers).

        These are the section boundaries of the increased-density tracker
        (paper Eq. 2).
        """
        return self.bumps.row_nets(self.bumps.row_count)

    def describe(self) -> str:
        """One-line human-readable summary."""
        rows = ", ".join(
            str(self.bumps.row_size(row)) for row in range(1, self.row_count + 1)
        )
        return (
            f"Quadrant({self.side.value}: {self.net_count} nets, "
            f"{self.row_count} rows [{rows}])"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def quadrant_from_rows(
    rows: Sequence[Sequence[int]],
    supply_ids: Sequence[int] = (),
    tiers: Optional[dict] = None,
    pitch: float = 1.0,
    fingers: Optional[FingerRow] = None,
    side: Side = Side.BOTTOM,
) -> Quadrant:
    """Build a quadrant directly from bump-row net ids (handy for examples).

    Parameters
    ----------
    rows:
        ``rows[0]`` is the outermost bump row (left to right), the last entry
        is the row nearest the fingers — the same layout :class:`BumpArray`
        expects.
    supply_ids:
        Net ids to mark as POWER nets.
    tiers:
        Optional mapping ``net_id -> tier`` for stacking-IC designs.
    """
    from .net import NetType

    supply = set(supply_ids)
    tiers = tiers or {}
    nets = []
    for row in rows:
        for net_id in row:
            net_type = NetType.POWER if net_id in supply else NetType.SIGNAL
            nets.append(
                Net(
                    id=net_id,
                    name=f"N{net_id}",
                    net_type=net_type,
                    tier=tiers.get(net_id, 1),
                )
            )
    netlist = NetList(nets)
    bumps = BumpArray(rows, pitch=pitch)
    return Quadrant(netlist, bumps, fingers=fingers, side=side)
