"""Stacking-IC (SiP / 3-D IC) configuration and bonding-wire geometry.

The journal version of the paper extends the DATE 2009 method to stacking
ICs: several dies are stacked in a pyramid and each die tier exposes its own
pad ring.  Every finger still carries exactly one bonding wire, but the wire
now climbs to the tier holding its pad.  Planning fingers so that consecutive
fingers serve *different* tiers keeps the wires short and fan-like
(paper Fig. 4(B)); the ``omega`` metric of :mod:`repro.exchange.bonding`
scores exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import PackageModelError


@dataclass(frozen=True)
class StackingConfig:
    """Die-stack description.

    Attributes
    ----------
    tier_count:
        The paper's ``psi``.  ``1`` means an ordinary 2-D IC.
    tier_heights:
        Height of each tier's pad ring above the substrate, in micrometres,
        tier 1 first (the lowest / largest die).  Must be increasing.
    tier_setbacks:
        Horizontal setback of each tier's die edge from the finger row, in
        micrometres.  Upper dies are smaller, so their pads sit further from
        the fingers; must be increasing.
    """

    tier_count: int = 1
    tier_heights: Sequence[float] = field(default_factory=tuple)
    tier_setbacks: Sequence[float] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.tier_count < 1:
            raise PackageModelError(f"tier count must be >= 1, got {self.tier_count}")
        heights = tuple(self.tier_heights) or tuple(
            5.0 * d for d in range(1, self.tier_count + 1)
        )
        setbacks = tuple(self.tier_setbacks) or tuple(
            10.0 * d for d in range(1, self.tier_count + 1)
        )
        if len(heights) != self.tier_count or len(setbacks) != self.tier_count:
            raise PackageModelError(
                "tier_heights/tier_setbacks must have one entry per tier"
            )
        if any(h <= 0 for h in heights) or any(s <= 0 for s in setbacks):
            raise PackageModelError("tier heights and setbacks must be positive")
        if list(heights) != sorted(heights) or list(setbacks) != sorted(setbacks):
            raise PackageModelError(
                "upper tiers must be higher and set back further than lower tiers"
            )
        object.__setattr__(self, "tier_heights", heights)
        object.__setattr__(self, "tier_setbacks", setbacks)

    @property
    def is_stacked(self) -> bool:
        """True when this is a stacking IC (``psi >= 2``)."""
        return self.tier_count >= 2

    def tier_bitmask(self, tier: int) -> int:
        """Unique parameter ``UP_d`` of the paper: one bit per tier."""
        if not (1 <= tier <= self.tier_count):
            raise PackageModelError(
                f"tier {tier} outside 1..{self.tier_count}"
            )
        return 1 << (tier - 1)

    def full_mask(self) -> int:
        """Bitmask with every tier bit set (a "perfect" finger group)."""
        return (1 << self.tier_count) - 1

    def bonding_wire_length(self, tier: int, lateral_offset: float = 0.0) -> float:
        """Physical length of a bonding wire from a finger to a tier-d pad.

        The wire spans the tier's setback horizontally, its height
        vertically, plus any lateral offset between the finger and the pad
        along the die edge.  Modeled as the straight-line distance (real
        wire-bond loops add a roughly constant factor which cancels in the
        relative comparisons the paper reports).
        """
        if not (1 <= tier <= self.tier_count):
            raise PackageModelError(
                f"tier {tier} outside 1..{self.tier_count}"
            )
        setback = self.tier_setbacks[tier - 1]
        height = self.tier_heights[tier - 1]
        return math.sqrt(setback**2 + height**2 + float(lateral_offset) ** 2)

    def total_bonding_length(
        self, tiers_in_finger_order: Sequence[int], finger_pitch: float = 1.0
    ) -> float:
        """Total bonding-wire length for a finger order.

        Pads of each tier are assumed evenly spread along the tier's die
        edge in the same relative order as their fingers (the paper assumes
        finger order == pad order).  The lateral offset of a wire is the
        distance between its finger position and its pad position.
        """
        total = 0.0
        per_tier: dict = {}
        for slot, tier in enumerate(tiers_in_finger_order, start=1):
            per_tier.setdefault(tier, []).append(slot)
        span = (len(tiers_in_finger_order) - 1) * finger_pitch
        for tier, slots in per_tier.items():
            count = len(slots)
            for index, slot in enumerate(slots):
                finger_x = (slot - 1) * finger_pitch
                if count == 1:
                    pad_x = span / 2.0
                else:
                    pad_x = span * index / (count - 1)
                total += self.bonding_wire_length(tier, finger_x - pad_x)
        return total


def bonding_wire_crossings(
    tiers_in_finger_order: Sequence[int], pads_per_edge: bool = True
) -> int:
    """Count crossing bonding-wire pairs for a finger order.

    Each tier's pads sit evenly spaced along that tier's die edge, in the
    same relative order as their fingers (the paper's assumption).  Two
    wires cross when their finger order and their pad x-order disagree —
    an inversion count, computed in O(n log n) with a Fenwick tree.
    Interleaving tiers (low omega) also minimizes crossings; the two
    metrics agree, which ``tests/test_package_model.py`` checks.
    """
    del pads_per_edge  # single layout currently; parameter reserved
    n = len(tiers_in_finger_order)
    if n < 2:
        return 0
    # pad x position (as a rank) for every wire
    per_tier: dict = {}
    for slot, tier in enumerate(tiers_in_finger_order):
        per_tier.setdefault(tier, []).append(slot)
    span = float(n - 1)
    pad_x = [0.0] * n
    for tier, slots in per_tier.items():
        count = len(slots)
        for index, slot in enumerate(slots):
            if count == 1:
                pad_x[slot] = span / 2.0
            else:
                pad_x[slot] = span * index / (count - 1)
    # count inversions between finger order (index) and pad_x order
    order = sorted(range(n), key=lambda slot: (pad_x[slot], slot))
    ranks = [0] * n
    for rank, slot in enumerate(order):
        ranks[slot] = rank + 1  # 1-based for the Fenwick tree
    tree = [0] * (n + 1)

    def update(position: int) -> None:
        while position <= n:
            tree[position] += 1
            position += position & -position

    def query(position: int) -> int:
        total = 0
        while position > 0:
            total += tree[position]
            position -= position & -position
        return total

    inversions = 0
    for slot in range(n - 1, -1, -1):  # walk fingers right to left
        inversions += query(ranks[slot] - 1)
        update(ranks[slot])
    return inversions


def assign_tiers_round_robin(net_count: int, tier_count: int) -> List[int]:
    """Tier for each net (by index) with equal pads per tier, round-robin.

    This mirrors the paper's experimental setup where "the number of pads for
    each tier" is an input: we spread them as evenly as possible.
    """
    if net_count < 1:
        raise PackageModelError("net_count must be >= 1")
    if tier_count < 1:
        raise PackageModelError("tier_count must be >= 1")
    return [(index % tier_count) + 1 for index in range(net_count)]
