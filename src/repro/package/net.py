"""Nets: the signals/supplies that must be carried from pads to bump balls."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..errors import PackageModelError


class NetType(enum.Enum):
    """Electrical role of a net.

    The exchange step (paper Fig. 14) treats power pads specially: in a 2-D IC
    only power pads are moved, because only they influence core IR-drop.
    ``GROUND`` nets are supply pads as well; the IR-drop analyzer can be run on
    either the VDD or the VSS network.
    """

    SIGNAL = "signal"
    POWER = "power"
    GROUND = "ground"

    @property
    def is_supply(self) -> bool:
        """True for power/ground nets — the pads that matter for IR-drop."""
        return self is not NetType.SIGNAL


@dataclass(frozen=True)
class Net:
    """A net to be assigned to one finger/pad and one bump ball.

    Attributes
    ----------
    id:
        Dense integer identifier, unique within a design.
    name:
        Human-readable name (``"N42"``, ``"VDD3"``, ...).
    net_type:
        Signal / power / ground role.
    tier:
        Die tier carrying this net's pad, ``1..psi`` (paper section 3.2).
        A 2-D IC has every net on tier 1.
    """

    id: int
    name: str
    net_type: NetType = NetType.SIGNAL
    tier: int = 1

    def __post_init__(self) -> None:
        if self.id < 0:
            raise PackageModelError(f"net id must be non-negative, got {self.id}")
        if self.tier < 1:
            raise PackageModelError(f"net tier must be >= 1, got {self.tier}")
        if not self.name:
            raise PackageModelError("net name must be non-empty")

    def with_tier(self, tier: int) -> "Net":
        """Copy of this net placed on a different die tier."""
        return replace(self, tier=tier)

    def tier_bitmask(self, psi: int) -> int:
        """The unique tier parameter ``UP_d`` of the paper: one bit per tier.

        For ``psi = 3`` tiers, tier 1 -> ``0b001``, tier 2 -> ``0b010``,
        tier 3 -> ``0b100``.
        """
        if not (1 <= self.tier <= psi):
            raise PackageModelError(
                f"net {self.name} on tier {self.tier} outside 1..{psi}"
            )
        return 1 << (self.tier - 1)


@dataclass
class NetList:
    """An ordered collection of nets with unique ids and names."""

    nets: list = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = [net.id for net in self.nets]
        if len(set(ids)) != len(ids):
            raise PackageModelError("duplicate net ids in netlist")
        names = [net.name for net in self.nets]
        if len(set(names)) != len(names):
            raise PackageModelError("duplicate net names in netlist")
        self._by_id = {net.id: net for net in self.nets}

    def __len__(self) -> int:
        return len(self.nets)

    def __iter__(self):
        return iter(self.nets)

    def __contains__(self, net_id: int) -> bool:
        return net_id in self._by_id

    def by_id(self, net_id: int) -> Net:
        """Look up a net by id, raising :class:`PackageModelError` if absent."""
        try:
            return self._by_id[net_id]
        except KeyError:
            raise PackageModelError(f"unknown net id {net_id}") from None

    def add(self, net: Net) -> None:
        """Append a net, enforcing id/name uniqueness."""
        if net.id in self._by_id:
            raise PackageModelError(f"duplicate net id {net.id}")
        if any(existing.name == net.name for existing in self.nets):
            raise PackageModelError(f"duplicate net name {net.name}")
        self.nets.append(net)
        self._by_id[net.id] = net

    def supply_ids(self) -> list:
        """Ids of all power/ground nets, in netlist order."""
        return [net.id for net in self.nets if net.net_type.is_supply]

    def ids_of_type(self, net_type: NetType) -> list:
        """Ids of all nets of the given type, in netlist order."""
        return [net.id for net in self.nets if net.net_type is net_type]
