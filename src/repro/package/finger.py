"""Finger row geometry.

Fingers (called *landing pads* in some package literature) are the package
side of the bonding wires.  Within one quadrant they form a single row of
``slot_count`` regularly spaced slots directly above the bump-ball trapezoid
in the canonical frame.  The paper assumes the finger order and the chip pad
order are identical, so a finger slot also identifies a chip pad position.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PackageModelError
from ..geometry import Point, Rect


@dataclass(frozen=True)
class FingerRow:
    """A row of finger slots in the canonical quadrant frame.

    Attributes
    ----------
    slot_count:
        Number of finger slots (== number of nets in the quadrant).
    width / height:
        Physical finger dimensions (Table 1 columns).
    space:
        Gap between two adjacent fingers (Table 1's "finger space").
    y:
        Y coordinate of the finger row centreline; the bump rows extend
        downwards from it.
    """

    slot_count: int
    width: float = 0.1
    height: float = 0.2
    space: float = 0.1
    y: float = 0.0

    def __post_init__(self) -> None:
        if self.slot_count < 1:
            raise PackageModelError(
                f"finger row needs at least one slot, got {self.slot_count}"
            )
        if self.width <= 0 or self.height <= 0:
            raise PackageModelError(
                f"finger size must be positive, got {self.width}x{self.height}"
            )
        if self.space < 0:
            raise PackageModelError(f"finger space must be >= 0, got {self.space}")

    @property
    def pitch(self) -> float:
        """Centre-to-centre distance of adjacent fingers."""
        return self.width + self.space

    @property
    def extent(self) -> float:
        """Total width of the finger row."""
        return self.slot_count * self.width + (self.slot_count - 1) * self.space

    def slot_position(self, slot: int) -> Point:
        """Physical centre of finger slot *slot* (1-based, left to right).

        The row is centred on x = 0, matching the centred bump trapezoid.
        """
        self._check_slot(slot)
        x = (slot - (self.slot_count + 1) / 2.0) * self.pitch
        return Point(x, self.y)

    def slot_rect(self, slot: int) -> Rect:
        """Physical outline of finger slot *slot*."""
        return Rect.from_center(self.slot_position(slot), self.width, self.height)

    def nearest_slot(self, x: float) -> int:
        """The slot whose centre is nearest to coordinate *x* (clamped)."""
        raw = round(x / self.pitch + (self.slot_count + 1) / 2.0)
        return int(min(max(raw, 1), self.slot_count))

    def _check_slot(self, slot: int) -> None:
        if not (1 <= slot <= self.slot_count):
            raise PackageModelError(
                f"finger slot {slot} outside 1..{self.slot_count}"
            )
