"""Named parameter presets for the exchange step.

Three profiles cover the usual situations; all were validated against the
Table-3 benchmarks:

``fast``
    Unit tests and interactive exploration: a short schedule that still
    finds most of the IR gain on small designs.
``paper``
    The committed defaults used by every benchmark — the knee of the
    quality/runtime trade-off (see ``benchmarks/bench_ablation.py``).
``thorough``
    A longer, slightly hotter schedule with more polish for final runs on
    large designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exchange import CostWeights, SAParams


@dataclass(frozen=True)
class ExchangePreset:
    """A named (weights, schedule, polish) bundle."""

    name: str
    weights: CostWeights
    params: SAParams
    polish_passes: int

    def make_exchanger(self, design, **overrides):
        """Instantiate a :class:`FingerPadExchanger` from this preset."""
        from .exchange import FingerPadExchanger

        kwargs = {
            "weights": self.weights,
            "params": self.params,
            "polish_passes": self.polish_passes,
        }
        kwargs.update(overrides)
        return FingerPadExchanger(design, **kwargs)


FAST = ExchangePreset(
    name="fast",
    weights=CostWeights(ir=1.0, density=0.08, bonding=0.5),
    params=SAParams(
        initial_temp=0.03, final_temp=1e-3, cooling=0.9, moves_per_temp=60
    ),
    polish_passes=5,
)

PAPER = ExchangePreset(
    name="paper",
    weights=CostWeights(ir=1.0, density=0.08, bonding=0.5),
    params=SAParams(
        initial_temp=0.03, final_temp=1e-4, cooling=0.95, moves_per_temp=150
    ),
    polish_passes=20,
)

THOROUGH = ExchangePreset(
    name="thorough",
    weights=CostWeights(ir=1.0, density=0.08, bonding=0.5),
    params=SAParams(
        initial_temp=0.05, final_temp=5e-5, cooling=0.97, moves_per_temp=300
    ),
    polish_passes=50,
)

PRESETS = {preset.name: preset for preset in (FAST, PAPER, THOROUGH)}


def get_preset(name: str) -> ExchangePreset:
    """Look up a preset by name, with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None


#: Tuned per-size default schedules: the Pareto knees of
#: ``repro tune sweep --circuit {1,3,5} --seed 0`` (96 / 208 / 448 nets;
#: see results/tune_pareto_*.json and docs/tuning.md).  Buckets are
#: (max_net_count, schedule); ``None`` is the catch-all.  All three knees
#: land on the paper's T0=0.03 but on faster cooling than its hand-picked
#: alpha=0.95 — at equal quality the sweep buys back 30-60% wall-clock.
TUNED_SCHEDULES = (
    (128, SAParams(
        initial_temp=0.03, final_temp=1e-4, cooling=0.85, moves_per_temp=150
    )),
    (256, SAParams(
        initial_temp=0.03, final_temp=1e-4, cooling=0.9, moves_per_temp=40
    )),
    (None, SAParams(
        initial_temp=0.03, final_temp=1e-4, cooling=0.85, moves_per_temp=80
    )),
)


def tuned_schedule(net_count: int) -> SAParams:
    """The sweep-tuned schedule for a design of *net_count* total nets."""
    for bound, params in TUNED_SCHEDULES:
        if bound is None or net_count <= bound:
            return params
    return TUNED_SCHEDULES[-1][1]  # pragma: no cover - catch-all above


def resolve_sa_params(params, design=None):
    """Resolve an annealing-schedule spec into :class:`SAParams`.

    ``None`` and :class:`SAParams` instances pass through.  A string names
    either the size-bucketed tuned default (``"tuned"``, needs *design*)
    or a preset's schedule (``"fast"``/``"paper"``/``"thorough"``).  This
    is the ``AnnealingSchedule`` resolution hook
    :class:`~repro.exchange.FingerPadExchanger` applies, so CLI and job
    params can carry schedule names instead of four floats.
    """
    if params is None or isinstance(params, SAParams):
        return params
    if isinstance(params, str):
        if params == "tuned":
            if design is None:
                raise ValueError(
                    "schedule 'tuned' is size-bucketed and needs a design"
                )
            return tuned_schedule(design.total_net_count)
        return get_preset(params).params
    raise TypeError(
        f"sa_params must be SAParams, a schedule name, or None; "
        f"got {type(params).__name__}"
    )
