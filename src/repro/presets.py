"""Named parameter presets for the exchange step.

Three profiles cover the usual situations; all were validated against the
Table-3 benchmarks:

``fast``
    Unit tests and interactive exploration: a short schedule that still
    finds most of the IR gain on small designs.
``paper``
    The committed defaults used by every benchmark — the knee of the
    quality/runtime trade-off (see ``benchmarks/bench_ablation.py``).
``thorough``
    A longer, slightly hotter schedule with more polish for final runs on
    large designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exchange import CostWeights, SAParams


@dataclass(frozen=True)
class ExchangePreset:
    """A named (weights, schedule, polish) bundle."""

    name: str
    weights: CostWeights
    params: SAParams
    polish_passes: int

    def make_exchanger(self, design, **overrides):
        """Instantiate a :class:`FingerPadExchanger` from this preset."""
        from .exchange import FingerPadExchanger

        kwargs = {
            "weights": self.weights,
            "params": self.params,
            "polish_passes": self.polish_passes,
        }
        kwargs.update(overrides)
        return FingerPadExchanger(design, **kwargs)


FAST = ExchangePreset(
    name="fast",
    weights=CostWeights(ir=1.0, density=0.08, bonding=0.5),
    params=SAParams(
        initial_temp=0.03, final_temp=1e-3, cooling=0.9, moves_per_temp=60
    ),
    polish_passes=5,
)

PAPER = ExchangePreset(
    name="paper",
    weights=CostWeights(ir=1.0, density=0.08, bonding=0.5),
    params=SAParams(
        initial_temp=0.03, final_temp=1e-4, cooling=0.95, moves_per_temp=150
    ),
    polish_passes=20,
)

THOROUGH = ExchangePreset(
    name="thorough",
    weights=CostWeights(ir=1.0, density=0.08, bonding=0.5),
    params=SAParams(
        initial_temp=0.05, final_temp=5e-5, cooling=0.97, moves_per_temp=300
    ),
    polish_passes=50,
)

PRESETS = {preset.name: preset for preset in (FAST, PAPER, THOROUGH)}


def get_preset(name: str) -> ExchangePreset:
    """Look up a preset by name, with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
