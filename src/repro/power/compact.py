"""Compact (fast) IR-drop estimation used inside the exchange loop.

"If we directly use Eq. (1) to calculate IR-drop, the analysis time for the
chip is very long ... In this paper, we compute the variation of dx and dy to
be the IR-drop improvement when the location of the power pad is exchanged"
(paper section 3.2).

Eq. (1) says IR-drop at a point grows with the resistive distance (dx, dy)
to the supplying pads; minimizing the worst pad-to-point distance means
spreading the power pads evenly along the boundary ring.  The proxy used
here is the sum of squared gaps between circularly consecutive power pads on
the perimeter:

    delta_IR  =  sum_i gap_i^2        (gaps as perimeter fractions)

It is minimized exactly when all gaps are equal (Cauchy-Schwarz), it
decreases whenever a swap moves a power pad towards the middle of its gap,
and it is O(k) to evaluate for k power pads — cheap enough for every SA
move.  ``tests/test_power_compact.py`` verifies its rank correlation with
the full finite-difference solve.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import PowerModelError


def pad_gaps(fractions: Sequence[float]) -> List[float]:
    """Circular gaps between consecutive pad positions on the ring.

    ``fractions`` are perimeter positions in ``[0, 1)``; the result sums
    to 1.
    """
    if not fractions:
        raise PowerModelError("at least one power pad is required")
    ordered = sorted(fraction % 1.0 for fraction in fractions)
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    gaps.append(1.0 - ordered[-1] + ordered[0])
    return gaps


def compact_ir_cost(fractions: Sequence[float]) -> float:
    """The delta_IR proxy: sum of squared circular pad gaps.

    Lower is better; the minimum ``1/k`` is reached by ``k`` equidistant
    pads.
    """
    return sum(gap * gap for gap in pad_gaps(fractions))


def worst_gap(fractions: Sequence[float]) -> float:
    """Largest circular gap — the region furthest from any supply."""
    return max(pad_gaps(fractions))


def weighted_compact_cost(fractions: Sequence[float], demand) -> float:
    """Demand-weighted delta_IR proxy for chips with non-uniform power.

    ``demand`` is a callable mapping a perimeter fraction in ``[0, 1)`` to
    the relative current demand of the core region behind that stretch of
    boundary.  Each circular gap is weighted by the demand at its midpoint,
    so supply-starved hot regions pull pads towards themselves.  With a
    constant demand this reduces to :func:`compact_ir_cost` (up to the
    constant factor).
    """
    ordered = sorted(fraction % 1.0 for fraction in fractions)
    if not ordered:
        raise PowerModelError("at least one power pad is required")
    total = 0.0
    for a, b in zip(ordered, ordered[1:]):
        gap = b - a
        total += gap * gap * demand((a + b) / 2.0)
    wrap_gap = 1.0 - ordered[-1] + ordered[0]
    wrap_mid = (ordered[-1] + wrap_gap / 2.0) % 1.0
    total += wrap_gap * wrap_gap * demand(wrap_mid)
    return total


def normalized_compact_cost(fractions: Sequence[float]) -> float:
    """Compact cost scaled to ``[1, k]``: 1.0 means perfectly equidistant.

    Dividing by the ideal value ``1/k`` makes values comparable across
    designs with different power-pad counts.
    """
    k = len(list(fractions))
    if k == 0:
        raise PowerModelError("at least one power pad is required")
    return compact_ir_cost(fractions) * k
