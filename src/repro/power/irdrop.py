"""High-level IR-drop analysis tying the design, pads and solvers together."""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from ..package import NetType, PackageDesign
from .compact import compact_ir_cost
from .fdsolver import FDSolver, IRDropResult
from .grid import PowerGridConfig
from .pads import pad_nodes_for_grid, supply_pad_fractions


class IRDropAnalyzer:
    """Analyze core IR-drop for a design under a finger/pad assignment.

    Provides both the accurate finite-difference solve (used for the
    before/after numbers of Table 3 and the Fig.-6 experiment) and the
    compact proxy the SA exchange loop minimizes.
    """

    def __init__(
        self,
        design: PackageDesign,
        grid_config: Optional[PowerGridConfig] = None,
        net_type: Optional[NetType] = NetType.POWER,
    ) -> None:
        self.design = design
        self.grid_config = grid_config or PowerGridConfig()
        self.net_type = net_type
        self._solver = FDSolver(self.grid_config)

    def pad_fractions(self, assignments: Dict) -> list:
        """Perimeter fractions of the analyzed supply pads."""
        return supply_pad_fractions(
            self.design, assignments, net_type=self.net_type
        )

    def factorize(self, assignments: Dict):
        """Prefactorized grid for this assignment's supply pads.

        The returned :class:`~repro.kernels.irsolve.GridFactorization`
        re-solves injection vectors without refactoring; factorizations
        are cached on the underlying solver keyed by the pad set, so SA
        evaluations that revisit a pad configuration pay backsolves only.
        """
        nodes = pad_nodes_for_grid(
            self.design, assignments, self.grid_config, net_type=self.net_type
        )
        return self._solver.factorize(nodes)

    def solve(self, assignments: Dict) -> IRDropResult:
        """Deprecated: use ``factorize(assignments).solve()`` instead."""
        warnings.warn(
            "IRDropAnalyzer.solve() is deprecated; use "
            "IRDropAnalyzer.factorize(assignments).solve() for the "
            "factor-once path",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.factorize(assignments).solve()

    def max_drop(self, assignments: Dict) -> float:
        """Maximum core IR-drop in volts for the given assignment."""
        return self.factorize(assignments).solve().max_drop

    def compact_cost(self, assignments: Dict) -> float:
        """The fast delta_IR proxy the exchange method optimizes."""
        return compact_ir_cost(self.pad_fractions(assignments))

    def improvement(self, before: Dict, after: Dict) -> float:
        """Relative IR-drop improvement, as reported in Table 3.

        The paper computes ``(1 - IR_after / IR_before)``; returns a ratio
        (0.1061 means 10.61% better).
        """
        drop_before = self.max_drop(before)
        drop_after = self.max_drop(after)
        if drop_before <= 0:
            return 0.0
        return 1.0 - drop_after / drop_before
