"""Finite-difference IR-drop solver for Eq. (1) of the paper.

Eq. (1) is the nodal current balance of the uniform power grid of [17]:

    sum over 4 neighbours of (V(x,y) - V(neighbour)) / R  =  -J0 * dx * dy

with power-pad nodes held at ``Vdd``.  This module assembles the sparse
linear system over the non-pad nodes and solves it directly with scipy's
sparse LU.  The result is the full IR-drop map, whose maximum is the
paper's reported metric ("we use [17] method to calculate the maximum value
of IR-drop").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import spsolve

from ..errors import PowerModelError
from .grid import PowerGridConfig


@dataclass
class IRDropResult:
    """Solved IR-drop map of the core."""

    config: PowerGridConfig
    voltage: np.ndarray  # shape (G, G), volts; indexed [x, y]
    pad_nodes: List[Tuple[int, int]]

    @property
    def drop_map(self) -> np.ndarray:
        """IR-drop (Vdd - V) at every node, in volts."""
        return self.config.vdd - self.voltage

    @property
    def max_drop(self) -> float:
        """Maximum IR-drop in volts — the paper's headline metric."""
        return float(self.drop_map.max())

    @property
    def mean_drop(self) -> float:
        """Average IR-drop over the core, in volts."""
        return float(self.drop_map.mean())

    def worst_node(self) -> Tuple[int, int]:
        """Grid node suffering the maximum IR-drop."""
        flat_index = int(np.argmax(self.drop_map))
        return np.unravel_index(flat_index, self.voltage.shape)


class FDSolver:
    """Sparse direct solver for the power-grid equation.

    ``current_map`` (optional, shape ``(G, G)``) overrides the uniform
    per-node current draw of the compact model — real chips have hot blocks,
    and the Fig.-6 experiment exercises exactly that.
    """

    #: Factorizations kept per solver under ``factorize()`` (FIFO).
    FACTOR_CACHE_SIZE = 8

    def __init__(self, config: PowerGridConfig, current_map=None) -> None:
        self.config = config
        if current_map is not None:
            current_map = np.asarray(current_map, dtype=float)
            expected = (config.size, config.size)
            if current_map.shape != expected:
                raise PowerModelError(
                    f"current map shape {current_map.shape} != grid {expected}"
                )
            if (current_map < 0).any():
                raise PowerModelError("current map entries must be >= 0")
        self.current_map = current_map
        self._factorizations: dict = {}

    def factorize(self, pad_nodes: Iterable[Tuple[int, int]]):
        """Factor the grid once for *pad_nodes*; re-solve injections cheaply.

        Returns a :class:`repro.kernels.irsolve.GridFactorization` whose
        ``solve(current_map=None)`` defaults to this solver's current map.
        The factorization only depends on the pad set, so it is cached
        (FIFO, :attr:`FACTOR_CACHE_SIZE` entries) and reused across SA
        candidate evaluations that revisit the same pads.
        """
        from ..kernels.irsolve import GridFactorization

        key = tuple(sorted(set((int(x), int(y)) for x, y in pad_nodes)))
        cached = self._factorizations.get(key)
        if cached is None:
            cached = GridFactorization(self.config, key)
            cached.default_current_map = self.current_map
            if len(self._factorizations) >= self.FACTOR_CACHE_SIZE:
                self._factorizations.pop(next(iter(self._factorizations)))
            self._factorizations[key] = cached
        return cached

    def solve(self, pad_nodes: Iterable[Tuple[int, int]]) -> IRDropResult:
        """Deprecated: one-shot assemble + solve of the full system.

        Use ``factorize(pad_nodes).solve()`` — the factor-once path — which
        matches this solver within 1e-9 and re-solves new injection vectors
        without refactoring.  This legacy path stays as the independent
        reference implementation the differential oracles compare against.
        """
        warnings.warn(
            "FDSolver.solve() is deprecated; use "
            "FDSolver.factorize(pad_nodes).solve() for the factor-once path",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._solve_object(pad_nodes)

    def _solve_object(self, pad_nodes: Iterable[Tuple[int, int]]) -> IRDropResult:
        """Reference object-path solve (Python-loop assembly + spsolve)."""
        config = self.config
        g = config.size
        pads = sorted(set(tuple(node) for node in pad_nodes))
        if not pads:
            raise PowerModelError("at least one power pad node is required")
        for x, y in pads:
            if not (0 <= x < g and 0 <= y < g):
                raise PowerModelError(f"pad node ({x},{y}) outside {g}x{g} grid")

        pad_set = set(pads)
        unknown_index = {}
        for x in range(g):
            for y in range(g):
                if (x, y) not in pad_set:
                    unknown_index[(x, y)] = len(unknown_index)

        if not unknown_index:
            voltage = np.full((g, g), config.vdd)
            return IRDropResult(config=config, voltage=voltage, pad_nodes=pads)

        gx = 1.0 / config.r_sx
        gy = 1.0 / config.r_sy
        n = len(unknown_index)
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        if self.current_map is None:
            rhs = np.full(n, -config.j0)
        else:
            rhs = np.array(
                [-self.current_map[x, y] for (x, y) in unknown_index],
                dtype=float,
            )

        for (x, y), row_index in unknown_index.items():
            diagonal = 0.0
            for dx, dy, conductance in (
                (1, 0, gx),
                (-1, 0, gx),
                (0, 1, gy),
                (0, -1, gy),
            ):
                nx, ny = x + dx, y + dy
                if not (0 <= nx < g and 0 <= ny < g):
                    continue  # chip edge: no current leaves the die
                diagonal += conductance
                if (nx, ny) in pad_set:
                    rhs[row_index] += conductance * config.vdd
                else:
                    rows.append(row_index)
                    cols.append(unknown_index[(nx, ny)])
                    data.append(-conductance)
            rows.append(row_index)
            cols.append(row_index)
            data.append(diagonal)

        matrix = csr_matrix((data, (rows, cols)), shape=(n, n))
        solution = spsolve(matrix, rhs)

        voltage = np.full((g, g), config.vdd, dtype=float)
        for (x, y), row_index in unknown_index.items():
            voltage[x, y] = solution[row_index]
        return IRDropResult(config=config, voltage=voltage, pad_nodes=pads)

    def solve_fractions(self, fractions: Sequence[float]) -> IRDropResult:
        """Solve with pads given as perimeter fractions in ``[0, 1)``."""
        nodes = [self.config.ring_node(fraction) for fraction in fractions]
        return self.factorize(nodes).solve()
