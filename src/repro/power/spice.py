"""SPICE-deck export and dense cross-validation of the power grid.

The compact model's authors validate against SPICE ("the results are shown
to be close to the results from SPICE simulation", paper section 2.4).
This module supports the same workflow for our grid:

* :func:`export_spice` writes the FD grid as a plain resistor/current-source
  netlist any SPICE engine can run — external validation without trusting
  our solver;
* :class:`DenseSolver` re-solves the identical system with a dense
  numpy ``linalg.solve`` — an in-repo second opinion that
  ``tests/test_spice.py`` checks agrees with the sparse solver to 1e-10.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import PowerModelError
from .fdsolver import IRDropResult
from .grid import PowerGridConfig


def _node_name(x: int, y: int) -> str:
    return f"n_{x}_{y}"


def export_spice(
    config: PowerGridConfig,
    pad_nodes: Iterable[Tuple[int, int]],
    path: Union[str, Path, None] = None,
    current_map: Optional[np.ndarray] = None,
    title: str = "repro power grid",
) -> str:
    """Render the power grid as a SPICE netlist; optionally write it.

    Pads become ideal voltage sources to ground; every grid cell sinks its
    current through a DC current source.  The deck ends with an ``.op``
    card so any engine prints the node voltages.
    """
    g = config.size
    pads = sorted(set(tuple(node) for node in pad_nodes))
    if not pads:
        raise PowerModelError("at least one pad node is required")
    for x, y in pads:
        if not (0 <= x < g and 0 <= y < g):
            raise PowerModelError(f"pad node ({x},{y}) outside {g}x{g} grid")
    if current_map is not None:
        current_map = np.asarray(current_map, dtype=float)
        if current_map.shape != (g, g):
            raise PowerModelError("current map shape mismatch")

    lines: List[str] = [f"* {title}", f"* {g}x{g} grid, {len(pads)} pad(s)"]
    resistor_index = 1
    for x in range(g):
        for y in range(g):
            if x + 1 < g:
                lines.append(
                    f"R{resistor_index} {_node_name(x, y)} "
                    f"{_node_name(x + 1, y)} {config.r_sx:g}"
                )
                resistor_index += 1
            if y + 1 < g:
                lines.append(
                    f"R{resistor_index} {_node_name(x, y)} "
                    f"{_node_name(x, y + 1)} {config.r_sy:g}"
                )
                resistor_index += 1
    for index, (x, y) in enumerate(pads, start=1):
        lines.append(f"V{index} {_node_name(x, y)} 0 DC {config.vdd:g}")
    source_index = 1
    for x in range(g):
        for y in range(g):
            draw = config.j0 if current_map is None else current_map[x, y]
            if draw > 0:
                lines.append(
                    f"I{source_index} {_node_name(x, y)} 0 DC {draw:g}"
                )
                source_index += 1
    lines.append(".op")
    lines.append(".end")
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


class DenseSolver:
    """Dense (numpy) reference solver for small grids.

    Builds the same nodal system as :class:`repro.power.FDSolver` but
    solves it with ``numpy.linalg.solve`` — O(n^3), so keep ``size`` small
    (<= 24 is instant).  Exists purely to cross-validate the sparse path.
    """

    def __init__(self, config: PowerGridConfig, current_map=None) -> None:
        if config.size > 40:
            raise PowerModelError(
                "DenseSolver is a validation tool; use FDSolver beyond 40x40"
            )
        self.config = config
        if current_map is not None:
            current_map = np.asarray(current_map, dtype=float)
            if current_map.shape != (config.size, config.size):
                raise PowerModelError("current map shape mismatch")
        self.current_map = current_map

    def solve(self, pad_nodes: Iterable[Tuple[int, int]]) -> IRDropResult:
        config = self.config
        g = config.size
        pads = sorted(set(tuple(node) for node in pad_nodes))
        if not pads:
            raise PowerModelError("at least one pad node is required")
        pad_set = set(pads)
        unknown = [
            (x, y) for x in range(g) for y in range(g) if (x, y) not in pad_set
        ]
        index = {node: i for i, node in enumerate(unknown)}
        n = len(unknown)
        gx, gy = 1.0 / config.r_sx, 1.0 / config.r_sy
        matrix = np.zeros((n, n))
        rhs = np.empty(n)
        for (x, y), i in index.items():
            draw = (
                config.j0 if self.current_map is None else self.current_map[x, y]
            )
            rhs[i] = -draw
            for dx, dy, conductance in (
                (1, 0, gx),
                (-1, 0, gx),
                (0, 1, gy),
                (0, -1, gy),
            ):
                nx, ny = x + dx, y + dy
                if not (0 <= nx < g and 0 <= ny < g):
                    continue
                matrix[i, i] += conductance
                if (nx, ny) in pad_set:
                    rhs[i] += conductance * config.vdd
                else:
                    matrix[i, index[(nx, ny)]] -= conductance
        voltage = np.full((g, g), config.vdd)
        if n:
            solution = np.linalg.solve(matrix, rhs)
            for (x, y), i in index.items():
                voltage[x, y] = solution[i]
        return IRDropResult(config=config, voltage=voltage, pad_nodes=pads)
