"""Floorplan-driven current maps.

The paper's conclusion points at concurrent floorplan/package planning
([13]) as the next step, and its Fig.-6 experiment implicitly relies on the
core's *non-uniform* power consumption.  This module provides the bridge: a
minimal floorplan model (placed rectangular modules with power budgets) that
compiles into the per-node current map the finite-difference solver
consumes, plus the boundary-demand profile that the demand-weighted compact
proxy uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import PowerModelError
from .grid import PowerGridConfig


@dataclass(frozen=True)
class Module:
    """One floorplan block.

    Coordinates are fractions of the die edge in ``[0, 1]``; ``power`` is
    the block's total current draw in amperes, spread uniformly over its
    area.
    """

    name: str
    llx: float
    lly: float
    width: float
    height: float
    power: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.llx <= 1.0 and 0.0 <= self.lly <= 1.0):
            raise PowerModelError(f"module {self.name}: origin outside the die")
        if self.width <= 0 or self.height <= 0:
            raise PowerModelError(f"module {self.name}: non-positive size")
        if self.llx + self.width > 1.0 + 1e-9 or self.lly + self.height > 1.0 + 1e-9:
            raise PowerModelError(f"module {self.name}: extends beyond the die")
        if self.power < 0:
            raise PowerModelError(f"module {self.name}: negative power")

    @property
    def area(self) -> float:
        return self.width * self.height


class Floorplan:
    """A set of placed modules plus background (standard-cell) current."""

    def __init__(
        self, modules: Sequence[Module], background_current: float = 0.0
    ) -> None:
        if background_current < 0:
            raise PowerModelError("background current must be >= 0")
        names = [module.name for module in modules]
        if len(set(names)) != len(names):
            raise PowerModelError("duplicate module names in floorplan")
        self.modules: List[Module] = list(modules)
        self.background_current = background_current

    @property
    def total_power(self) -> float:
        """Total module current (excluding background), in amperes."""
        return sum(module.power for module in self.modules)

    def current_map(self, config: PowerGridConfig) -> np.ndarray:
        """Compile the floorplan into a per-node current map for *config*.

        Each module's power is spread uniformly over the grid nodes whose
        cell centre falls inside it; the background current is added to
        every node.
        """
        g = config.size
        current = np.full((g, g), self.background_current, dtype=float)
        centers = (np.arange(g) + 0.5) / g
        for module in self.modules:
            in_x = (centers >= module.llx) & (centers < module.llx + module.width)
            in_y = (centers >= module.lly) & (centers < module.lly + module.height)
            mask = np.outer(in_x, in_y)
            count = int(mask.sum())
            if count == 0:
                # module smaller than one cell: dump it on the nearest node
                x = min(int((module.llx + module.width / 2) * g), g - 1)
                y = min(int((module.lly + module.height / 2) * g), g - 1)
                current[x, y] += module.power
            else:
                current[mask] += module.power / count
        return current

    def boundary_demand(self, config: PowerGridConfig, floor: float = 0.25):
        """Demand profile over the boundary ring for the weighted IR proxy.

        The demand at a ring point is the current drawn by the grid column/
        row stripe behind it (a cheap stand-in for the resistive coupling of
        Eq. 1), normalized to mean 1 and floored at *floor*.
        """
        current = self.current_map(config)
        ring = config.boundary_ring()
        raw = []
        for x, y in ring:
            if y == 0:
                stripe = current[x, :]
            elif y == config.size - 1:
                stripe = current[x, ::-1]
            elif x == 0:
                stripe = current[:, y]
            else:
                stripe = current[::-1, y]
            raw.append(float(np.mean(stripe)))
        raw = np.array(raw)
        mean = raw.mean() or 1.0
        weights = np.maximum(raw / mean, floor)

        def demand(fraction: float) -> float:
            index = min(int(fraction % 1.0 * len(ring)), len(ring) - 1)
            return float(weights[index])

        return demand


def example_soc_floorplan(total_current: float = 0.1) -> Floorplan:
    """A representative SoC floorplan: CPU cluster, cache, IO, accelerators.

    ``total_current`` is split 40% CPU, 20% accelerator, 15% cache, 10% IO,
    15% background sea-of-gates — typical ratios for a mobile SoC.
    """
    return Floorplan(
        modules=[
            Module("cpu", 0.55, 0.55, 0.40, 0.40, power=0.40 * total_current),
            Module("npu", 0.05, 0.60, 0.30, 0.30, power=0.20 * total_current),
            Module("l2cache", 0.55, 0.10, 0.35, 0.30, power=0.15 * total_current),
            Module("io", 0.05, 0.05, 0.35, 0.25, power=0.10 * total_current),
        ],
        background_current=0.15 * total_current / 1024,
    )
