"""Core power-integrity models: FD IR-drop solver and compact proxy."""

from .compact import (
    compact_ir_cost,
    normalized_compact_cost,
    pad_gaps,
    weighted_compact_cost,
    worst_gap,
)
from .fdsolver import FDSolver, IRDropResult
from .flipchip import PackagingComparison, area_pad_nodes, compare_packaging
from .floorplan import Floorplan, Module, example_soc_floorplan
from .grid import PowerGridConfig
from .irdrop import IRDropAnalyzer
from .pads import pad_nodes_for_grid, supply_pad_fractions
from .spice import DenseSolver, export_spice

__all__ = [
    "FDSolver",
    "Floorplan",
    "Module",
    "DenseSolver",
    "PackagingComparison",
    "area_pad_nodes",
    "compare_packaging",
    "example_soc_floorplan",
    "export_spice",
    "IRDropAnalyzer",
    "IRDropResult",
    "PowerGridConfig",
    "compact_ir_cost",
    "normalized_compact_cost",
    "pad_gaps",
    "pad_nodes_for_grid",
    "supply_pad_fractions",
    "weighted_compact_cost",
    "worst_gap",
]
