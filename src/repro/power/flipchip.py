"""Flip-chip (area-array) power delivery, for comparison with wire-bond.

Paper section 2.4: "Compared wire-bond packaging with flip-chip packaging,
the IR-drop problem of a wire-bond package is worse than a flip-chip
package.  The main reason is that the distance from the power pad to the
module in a flip-chip package is shorter" — wire-bond confines supply pads
to the die boundary, flip-chip drops C4 bumps across the whole area.  The
paper adopts wire-bond "due to the design cost"; this module implements the
flip-chip alternative so the trade-off is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import PowerModelError
from .fdsolver import FDSolver, IRDropResult
from .grid import PowerGridConfig


def area_pad_nodes(
    config: PowerGridConfig, pads_per_side: int, margin: float = 0.1
) -> List[Tuple[int, int]]:
    """C4 supply-bump locations: a uniform ``k x k`` array over the die.

    ``margin`` keeps the outermost bumps away from the die edge (fraction
    of the edge length), as real C4 arrays do.
    """
    if pads_per_side < 1:
        raise PowerModelError("need at least one pad per side")
    if not (0.0 <= margin < 0.5):
        raise PowerModelError("margin must be in [0, 0.5)")
    g = config.size
    span = 1.0 - 2.0 * margin
    nodes = []
    for i in range(pads_per_side):
        for j in range(pads_per_side):
            if pads_per_side == 1:
                fx = fy = 0.5
            else:
                fx = margin + span * i / (pads_per_side - 1)
                fy = margin + span * j / (pads_per_side - 1)
            nodes.append(
                (min(int(fx * g), g - 1), min(int(fy * g), g - 1))
            )
    return sorted(set(nodes))


@dataclass
class PackagingComparison:
    """Wire-bond vs flip-chip IR-drop with the same pad budget."""

    wirebond: IRDropResult
    flipchip: IRDropResult

    @property
    def wirebond_max_drop(self) -> float:
        return self.wirebond.max_drop

    @property
    def flipchip_max_drop(self) -> float:
        return self.flipchip.max_drop

    @property
    def flipchip_advantage(self) -> float:
        """Relative IR-drop reduction of flip-chip over wire-bond."""
        if self.wirebond.max_drop <= 0:
            return 0.0
        return 1.0 - self.flipchip.max_drop / self.wirebond.max_drop


def compare_packaging(
    config: PowerGridConfig,
    pad_count: int,
    current_map: Optional[np.ndarray] = None,
) -> PackagingComparison:
    """Solve the same core with boundary pads vs an area array.

    ``pad_count`` is the supply-pad budget; wire-bond spreads it evenly
    around the boundary ring, flip-chip uses the nearest ``k x k`` array
    with ``k = round(sqrt(pad_count))``.
    """
    if pad_count < 1:
        raise PowerModelError("pad_count must be >= 1")
    solver = FDSolver(config, current_map=current_map)

    boundary_fractions = [(i + 0.5) / pad_count for i in range(pad_count)]
    wirebond = solver.solve_fractions(boundary_fractions)

    k = max(1, round(pad_count ** 0.5))
    flipchip = solver.factorize(area_pad_nodes(config, k)).solve()

    return PackagingComparison(wirebond=wirebond, flipchip=flipchip)
