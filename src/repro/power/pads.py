"""Mapping finger/pad assignments onto the chip boundary ring.

The paper assumes the finger order and the chip pad order are identical
(section 2.1), so a net's finger slot directly determines where its chip pad
sits on the die periphery.  This module extracts the perimeter positions of
the supply pads from a design plus its per-quadrant assignments — the input
both IR-drop models consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PowerModelError
from ..package import NetType, PackageDesign


def supply_pad_fractions(
    design: PackageDesign,
    assignments: Dict,
    net_type: Optional[NetType] = NetType.POWER,
) -> List[float]:
    """Perimeter fractions (in ``[0, 1)``) of the supply pads.

    Parameters
    ----------
    design:
        The package design (provides the ring geometry).
    assignments:
        ``{side: Assignment}`` as produced by an assigner.
    net_type:
        Which supply network to collect: ``NetType.POWER`` (default, the VDD
        grid the paper analyzes), ``NetType.GROUND`` for the VSS grid, or
        ``None`` for both networks together.
    """
    fractions: List[float] = []
    for side, quadrant in design:
        if side not in assignments:
            raise PowerModelError(f"no assignment supplied for side {side.value}")
        assignment = assignments[side]
        for net in quadrant.netlist:
            if net_type is None:
                wanted = net.net_type.is_supply
            else:
                wanted = net.net_type is net_type
            if wanted:
                slot = assignment.slot_of(net.id)
                fractions.append(design.ring_position(side, slot))
    if not fractions:
        raise PowerModelError(
            "design has no supply pads of the requested type; "
            "mark some nets as POWER/GROUND"
        )
    return fractions


def pad_nodes_for_grid(
    design: PackageDesign,
    assignments: Dict,
    grid_config,
    net_type: Optional[NetType] = NetType.POWER,
) -> List[tuple]:
    """Grid boundary nodes of the supply pads for the FD solver."""
    fractions = supply_pad_fractions(design, assignments, net_type=net_type)
    return [grid_config.ring_node(fraction) for fraction in fractions]
