"""Power-grid model of the chip core (paper Fig. 7, ref [17]).

The compact physical IR-drop model of Shakeri-Meindl assumes the core's
power distribution network is a uniform G x G grid with sheet resistances
``Rsx`` / ``Rsy`` and a uniform current density ``J0`` drawn by every grid
cell; the power pads sit on the chip boundary and pin their nodes to
``Vdd``.  Eq. (1) of the paper is the finite-difference Kirchhoff balance of
one interior node of this grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import PowerModelError


@dataclass(frozen=True)
class PowerGridConfig:
    """Physical parameters of the core power grid.

    Attributes
    ----------
    size:
        Nodes per side of the square grid (G); the grid has ``G*G`` nodes.
    vdd:
        Supply voltage in volts.
    r_sx / r_sy:
        Per-edge resistance in ohms along x and y (``Rsx * dx/dy`` of Eq. 1;
        the grid is uniform so ``dx = dy``).
    j0:
        Current drawn by each grid cell in amperes (``J0 * dx * dy``).
    """

    size: int = 32
    vdd: float = 1.0
    r_sx: float = 1.0
    r_sy: float = 1.0
    j0: float = 1e-4

    def __post_init__(self) -> None:
        if self.size < 2:
            raise PowerModelError(f"power grid needs size >= 2, got {self.size}")
        if self.vdd <= 0:
            raise PowerModelError(f"vdd must be positive, got {self.vdd}")
        if self.r_sx <= 0 or self.r_sy <= 0:
            raise PowerModelError("sheet resistances must be positive")
        if self.j0 < 0:
            raise PowerModelError(f"current density must be >= 0, got {self.j0}")

    @property
    def node_count(self) -> int:
        return self.size * self.size

    def boundary_ring(self) -> List[Tuple[int, int]]:
        """Boundary nodes in ring order starting at the bottom-left corner.

        The walk is bottom edge left-to-right, right edge bottom-to-top, top
        edge right-to-left, left edge top-to-bottom — matching the package
        ring order of :meth:`repro.package.PackageDesign.ring_position`
        (bottom, right, top, left).
        """
        g = self.size
        ring: List[Tuple[int, int]] = []
        ring.extend((x, 0) for x in range(0, g - 1))
        ring.extend((g - 1, y) for y in range(0, g - 1))
        ring.extend((x, g - 1) for x in range(g - 1, 0, -1))
        ring.extend((0, y) for y in range(g - 1, 0, -1))
        return ring

    def ring_node(self, fraction: float) -> Tuple[int, int]:
        """Boundary node at perimeter *fraction* in ``[0, 1)``."""
        if not (0.0 <= fraction < 1.0 + 1e-12):
            raise PowerModelError(f"ring fraction {fraction} outside [0, 1)")
        ring = self.boundary_ring()
        index = int(fraction % 1.0 * len(ring))
        return ring[min(index, len(ring) - 1)]
