"""Built-in job types: the paper's experiments as engine-runnable units.

Each runner is a pure function ``(params, seed) -> JSON value`` so that a
job can execute in a worker process and its result can live in the disk
cache.  Runners call exactly the same underlying primitives as the legacy
serial paths (``flow.compare_assigners``, ``CoDesignFlow.run``,
``circuits.run_fig6``), so engine results are bit-identical to a serial
run with the same seeds.

This module imports the flow/circuits layers and is loaded lazily by the
job-type registry (``spec.resolve_job_type``).
"""

from __future__ import annotations

from typing import Optional

from .spec import register_job_type


def _make_assigner(name: str):
    from ..assign import BestOfRandomAssigner, DFAAssigner, IFAAssigner

    # "Random" is the paper's randomly *optimized* baseline, matching
    # flow.compare_assigners.
    factories = {
        "Random": lambda: BestOfRandomAssigner(trials=3),
        "IFA": IFAAssigner,
        "DFA": DFAAssigner,
    }
    return factories[name]()


def _build_circuit_design(params: dict):
    from ..circuits import build_design, table1_circuit

    return build_design(
        table1_circuit(int(params["circuit"]), tier_count=int(params.get("tiers", 1))),
        seed=int(params.get("design_seed", 0)),
    )


def _sa_params(params: dict):
    from ..exchange import SAParams

    overrides = {
        key: params[key]
        for key in ("initial_temp", "final_temp", "cooling", "moves_per_temp")
        if key in params
    }
    return SAParams(**overrides) if overrides else None


@register_job_type("table2_cell")
def run_table2_cell(params: dict, seed: Optional[int]):
    """One Table-2 cell: one assigner on one Table-1 circuit."""
    from ..obs.spans import span
    from ..routing import (
        max_density_of_design,
        route_design,
        total_flyline_length_of_design,
    )

    design = _build_circuit_design(params)
    assigner = _make_assigner(params["assigner"])
    with span("flow.assign", assigner=assigner.name, design=design.name):
        assignments = assigner.assign_design(design, seed=seed)
    with span("flow.route", design=design.name):
        routed = route_design(assignments)
    return {
        "circuit": design.name,
        "assigner": assigner.name,
        "max_density": max_density_of_design(assignments),
        "wirelength": sum(
            result.total_routed_length for result in routed.values()
        ),
        "flyline_length": total_flyline_length_of_design(assignments),
    }


@register_job_type("codesign")
def run_codesign(params: dict, seed: Optional[int]):
    """One Table-3 cell: the two-step flow (DFA + exchange) on one circuit."""
    from ..flow import CoDesignFlow
    from ..power import PowerGridConfig

    design = _build_circuit_design(params)
    flow = CoDesignFlow(
        sa_params=_sa_params(params),
        grid_config=PowerGridConfig(size=int(params.get("grid", 32))),
        # "backend" enters params only when non-default so that existing
        # cached spec digests stay valid (both backends are move-for-move
        # identical, so the value is the same either way).
        backend=str(params.get("backend", "auto")),
    )
    result = flow.run(design, seed=seed)
    stats = result.exchange.stats
    return {
        "circuit": design.name,
        "tiers": int(params.get("tiers", 1)),
        "density_after_assignment": result.density_after_assignment,
        "density_after_exchange": result.density_after_exchange,
        "ir_improvement": result.ir_improvement,
        "bonding_improvement": result.bonding_improvement,
        "max_ir_drop_initial": result.metrics_initial.max_ir_drop,
        "max_ir_drop_final": result.metrics_final.max_ir_drop,
        "sa": {
            "proposed": stats.proposed,
            "accepted": stats.accepted,
            "acceptance_ratio": stats.acceptance_ratio,
            "initial_cost": stats.initial_cost,
            "best_cost": stats.best_cost,
        },
    }


@register_job_type("fig6")
def run_fig6_job(params: dict, seed: Optional[int]):
    """The Fig.-6 real-chip IR-drop comparison (three pad plans)."""
    from ..circuits import run_fig6
    from ..obs.spans import span

    with span("flow.fig6"):
        result = run_fig6(seed=seed, grid_size=int(params.get("grid", 40)))
    return {
        "random_mv": result.random_mv,
        "regular_mv": result.regular_mv,
        "optimized_mv": result.optimized_mv,
    }
