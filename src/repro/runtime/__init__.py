"""repro.runtime — parallel, cached, observable experiment execution.

Every evaluation target of the paper (Tables 1-3, Figs. 5-15) is a fan-out
of independent ``(circuit, assigner, seed)`` jobs.  This subsystem gives
them a shared execution engine:

``spec``
    Declarative :class:`JobSpec` (kind + params + seed), content-hash
    digests and the job-type registry.
``cache``
    Digest-keyed on-disk result cache, so re-running a table is a
    near-instant cache hit.
``engine``
    :class:`JobEngine`: process-pool fan-out with per-job timeout,
    bounded retry with backoff and graceful degradation to serial
    execution when workers die.
``journal``
    Append-only, fsync'd write-ahead log of job lifecycles: settled
    digests answer across restarts, in-flight digests recover exactly
    once after a crash.
``telemetry``
    Counters, timers and a JSONL event sink, threaded through the SA
    annealer and the experiment flow.
``jobs``
    Built-in job types (``table2_cell``, ``codesign``, ``fig6``).
``workloads``
    Paper-level workloads (table2 / table3 / fig6 / smoke) built from
    job specs plus renderers back to the paper-style tables.

``jobs`` and ``workloads`` import the heavier flow/circuits layers and are
therefore loaded lazily (the registry resolves them on first use).
"""

from .atomic import atomic_write_text
from .cache import MISS, ResultCache, default_cache_dir, default_max_bytes
from .engine import JobEngine, JobOutcome
from .journal import JOURNAL_VERSION, JobJournal
from .spec import (
    CACHE_SCHEMA_VERSION,
    JobSpec,
    job_types,
    register_job_type,
    resolve_job_type,
)
from .telemetry import (
    JsonlSink,
    Telemetry,
    get_telemetry,
    set_telemetry,
    using_telemetry,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "JOURNAL_VERSION",
    "JobEngine",
    "JobJournal",
    "JobOutcome",
    "JobSpec",
    "JsonlSink",
    "MISS",
    "ResultCache",
    "Telemetry",
    "atomic_write_text",
    "default_cache_dir",
    "default_max_bytes",
    "get_telemetry",
    "job_types",
    "register_job_type",
    "resolve_job_type",
    "set_telemetry",
    "using_telemetry",
]
