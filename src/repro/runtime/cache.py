"""Digest-keyed on-disk result cache.

Layout: ``<root>/<kind>/<digest[:2]>/<digest>.json``, each file a small
JSON document holding the canonical spec (for auditability) and the job
value.  Values are JSON, not pickle: entries stay inspectable with any
text tool and survive library refactors; anything a job returns must
therefore be plain scalars/lists/dicts, which is also what makes results
portable across processes.

The root resolves, in order: explicit argument, ``$REPRO_CACHE_DIR``,
``~/.cache/repro``.  Writes are atomic (temp file + rename) so a killed
run never leaves a truncated entry.  Loads are validated: the JSON must
parse, carry the current schema version and a payload digest equal to the
requesting spec's digest — a truncated, garbled, swapped or stale entry
reads as a miss (re-run), is deleted, and emits a ``cache.invalid``
telemetry event naming the reason.

The cache can be bounded: ``ResultCache(max_bytes=...)`` (or
``$REPRO_CACHE_MAX_BYTES``) caps the total on-disk size.  Every put that
pushes the tree over the cap evicts least-recently-used entries (mtime
order; hits touch the entry, so reads refresh recency) until it fits
again, never evicting the entry just written.  Evictions emit
``cache.evict`` telemetry and the ``evicted`` stat counts them — the
invariant a long-running daemon needs to not fill its disk.  Eviction is
safe against concurrent readers: a reader that loses the race observes an
ordinary miss (``FileNotFoundError``), never a torn file, because writes
only ever ``os.replace`` complete documents.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .spec import CACHE_SCHEMA_VERSION, JobSpec
from .telemetry import get_telemetry


class _Miss:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<cache MISS>"

    def __bool__(self) -> bool:
        return False


#: Sentinel returned by :meth:`ResultCache.get` so cached falsy values
#: (0, {}, None) are distinguishable from an absent entry.
MISS = _Miss()


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_max_bytes() -> Optional[int]:
    """The ``$REPRO_CACHE_MAX_BYTES`` cap, or ``None`` (unbounded)."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"$REPRO_CACHE_MAX_BYTES must be an integer byte count, got {env!r}"
        ) from None
    return value if value > 0 else None


class ResultCache:
    """Get/put job values by spec digest, with hit/miss/write counters.

    ``max_bytes`` bounds the total on-disk size (LRU eviction on put);
    ``None`` falls back to ``$REPRO_CACHE_MAX_BYTES``, and an unset
    environment means unbounded (the historical behaviour).
    """

    def __init__(self, root=None, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None else default_max_bytes()
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {self.max_bytes}")
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0
        self.evicted = 0
        #: Running size estimate maintained by this process's puts; the
        #: authoritative number is re-scanned whenever eviction triggers,
        #: so concurrent writers in other processes are eventually seen.
        self._approx_bytes: Optional[int] = None

    def path_for(self, spec: JobSpec) -> Path:
        digest = spec.digest()
        return self.root / spec.kind / digest[:2] / f"{digest}.json"

    def get(self, spec: JobSpec):
        """The validated cached value for *spec*, or :data:`MISS`."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (ValueError, OSError):
            return self._reject(spec, path, "unreadable")
        if not isinstance(payload, dict) or "value" not in payload:
            return self._reject(spec, path, "malformed")
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return self._reject(spec, path, "stale-schema")
        if payload.get("digest") != spec.digest():
            return self._reject(spec, path, "digest-mismatch")
        self.hits += 1
        try:
            # Touch the entry so LRU eviction sees reads, not just writes.
            os.utime(path)
        except OSError:  # pragma: no cover - racing eviction/deletion
            pass
        return payload["value"]

    def _reject(self, spec: JobSpec, path: Path, reason: str):
        """Drop an invalid entry, record it, and report a miss."""
        try:
            path.unlink()
        except OSError:
            pass
        self.invalid += 1
        self.misses += 1
        get_telemetry().emit(
            "cache.invalid", job=spec.label(), kind=spec.kind, reason=reason
        )
        get_telemetry().count("cache.invalid")
        return MISS

    def invalidate(self, spec: JobSpec) -> None:
        """Drop the entry of *spec* (used when its *value* failed checks).

        The read already counted as a hit; rebook it as an invalid miss so
        the stats describe what actually happened.
        """
        self.hits = max(0, self.hits - 1)
        self._reject(spec, self.path_for(spec), "invalid-value")

    def put(self, spec: JobSpec, value) -> Path:
        """Store *value* for *spec* atomically; returns the entry path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "digest": spec.digest(),
            "spec": spec.canonical(),
            "value": value,
        }
        handle = tempfile.NamedTemporaryFile(
            "w",
            dir=path.parent,
            prefix=path.stem,
            suffix=".tmp",
            delete=False,
            encoding="utf-8",
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.writes += 1
        try:
            size = path.stat().st_size
        except OSError:  # pragma: no cover - racing deletion
            size = 0
        get_telemetry().emit(
            "cache.put", job=spec.label(), kind=spec.kind, bytes=int(size)
        )
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self._scan_bytes()
            else:
                self._approx_bytes += int(size)
            if self._approx_bytes > self.max_bytes:
                self._evict(keep=path)
        return path

    # -- eviction ----------------------------------------------------------

    def _scan_bytes(self) -> int:
        total = 0
        if self.root.is_dir():
            for entry in self.root.rglob("*.json"):
                try:
                    total += entry.stat().st_size
                except OSError:
                    pass
        return total

    def _evict(self, keep: Optional[Path] = None) -> int:
        """Drop least-recently-used entries until the tree fits ``max_bytes``.

        *keep* (the entry just written) is never a victim — evicting what
        the caller is about to return would make every bounded put a
        self-defeating miss.  Returns the number of entries removed.
        Rescans the tree first so entries written by other processes
        sharing the directory are accounted and evictable too.
        """
        entries = []
        total = 0
        for entry in self.root.rglob("*.json"):
            try:
                stat = entry.stat()
            except OSError:
                continue
            total += stat.st_size
            entries.append((stat.st_mtime, stat.st_size, entry))
        removed = 0
        if total > self.max_bytes:
            entries.sort(key=lambda item: item[0])
            for _mtime, size, entry in entries:
                if total <= self.max_bytes:
                    break
                if keep is not None and entry == keep:
                    continue
                try:
                    entry.unlink()
                except OSError:
                    # Another process beat us to it; its bytes are gone
                    # either way.
                    total -= size
                    continue
                total -= size
                removed += 1
                self.evicted += 1
                get_telemetry().emit(
                    "cache.evict", kind=entry.parent.parent.name, bytes=int(size)
                )
                get_telemetry().count("cache.evicted")
        self._approx_bytes = total
        return removed

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete entries (all, or one kind); returns the number removed."""
        base = self.root / kind if kind else self.root
        removed = 0
        if base.is_dir():
            for entry in base.rglob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        self._approx_bytes = None
        return removed

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
            "evicted": self.evicted,
        }
