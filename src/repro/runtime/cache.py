"""Digest-keyed on-disk result cache.

Layout: ``<root>/<kind>/<digest[:2]>/<digest>.json``, each file a small
JSON document holding the canonical spec (for auditability) and the job
value.  Values are JSON, not pickle: entries stay inspectable with any
text tool and survive library refactors; anything a job returns must
therefore be plain scalars/lists/dicts, which is also what makes results
portable across processes.

The root resolves, in order: explicit argument, ``$REPRO_CACHE_DIR``,
``~/.cache/repro``.  Writes are atomic (temp file + rename) so a killed
run never leaves a truncated entry.  Loads are validated: the JSON must
parse, carry the current schema version and a payload digest equal to the
requesting spec's digest — a truncated, garbled, swapped or stale entry
reads as a miss (re-run), is deleted, and emits a ``cache.invalid``
telemetry event naming the reason.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .spec import CACHE_SCHEMA_VERSION, JobSpec
from .telemetry import get_telemetry


class _Miss:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<cache MISS>"

    def __bool__(self) -> bool:
        return False


#: Sentinel returned by :meth:`ResultCache.get` so cached falsy values
#: (0, {}, None) are distinguishable from an absent entry.
MISS = _Miss()


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Get/put job values by spec digest, with hit/miss/write counters."""

    def __init__(self, root=None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0

    def path_for(self, spec: JobSpec) -> Path:
        digest = spec.digest()
        return self.root / spec.kind / digest[:2] / f"{digest}.json"

    def get(self, spec: JobSpec):
        """The validated cached value for *spec*, or :data:`MISS`."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (ValueError, OSError):
            return self._reject(spec, path, "unreadable")
        if not isinstance(payload, dict) or "value" not in payload:
            return self._reject(spec, path, "malformed")
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return self._reject(spec, path, "stale-schema")
        if payload.get("digest") != spec.digest():
            return self._reject(spec, path, "digest-mismatch")
        self.hits += 1
        return payload["value"]

    def _reject(self, spec: JobSpec, path: Path, reason: str):
        """Drop an invalid entry, record it, and report a miss."""
        try:
            path.unlink()
        except OSError:
            pass
        self.invalid += 1
        self.misses += 1
        get_telemetry().emit(
            "cache.invalid", job=spec.label(), kind=spec.kind, reason=reason
        )
        get_telemetry().count("cache.invalid")
        return MISS

    def invalidate(self, spec: JobSpec) -> None:
        """Drop the entry of *spec* (used when its *value* failed checks).

        The read already counted as a hit; rebook it as an invalid miss so
        the stats describe what actually happened.
        """
        self.hits = max(0, self.hits - 1)
        self._reject(spec, self.path_for(spec), "invalid-value")

    def put(self, spec: JobSpec, value) -> Path:
        """Store *value* for *spec* atomically; returns the entry path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "digest": spec.digest(),
            "spec": spec.canonical(),
            "value": value,
        }
        handle = tempfile.NamedTemporaryFile(
            "w",
            dir=path.parent,
            prefix=path.stem,
            suffix=".tmp",
            delete=False,
            encoding="utf-8",
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.writes += 1
        try:
            size = path.stat().st_size
        except OSError:  # pragma: no cover - racing deletion
            size = 0
        get_telemetry().emit(
            "cache.put", job=spec.label(), kind=spec.kind, bytes=int(size)
        )
        return path

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete entries (all, or one kind); returns the number removed."""
        base = self.root / kind if kind else self.root
        removed = 0
        if base.is_dir():
            for entry in base.rglob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
        }
