"""Job specifications, content digests and the job-type registry.

A :class:`JobSpec` is the declarative unit of work the engine executes:
a registered *kind* (the runner function), a JSON-serializable *params*
mapping and an optional *seed*.  Its SHA-256 digest over the canonical
JSON form is the cache key — two specs with the same digest are the same
experiment, regardless of dict ordering or int/float spelling of equal
values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

#: Bump to invalidate every existing cache entry (cost model changes, new
#: metric definitions, payload layout changes, ...).  Part of every digest.
#: v2: entries carry their own ``digest`` field, validated on load.
CACHE_SCHEMA_VERSION = 2


def _canonical(value):
    """Normalize *value* into a deterministic JSON-serializable form."""
    if isinstance(value, Mapping):
        return {str(key): _canonical(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, (int, float, str)):
        return value
    raise TypeError(
        f"job params must be JSON-serializable scalars/lists/dicts, "
        f"got {type(value).__name__}: {value!r}"
    )


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: ``runner(params, seed)`` for a registered kind."""

    kind: str
    params: Mapping = field(default_factory=dict)
    seed: Optional[int] = None

    def canonical(self) -> dict:
        """Deterministic dict form, the payload the digest is taken over."""
        return {
            "kind": self.kind,
            "params": _canonical(self.params),
            "seed": self.seed,
            "version": CACHE_SCHEMA_VERSION,
        }

    def digest(self) -> str:
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def derived_seed(self, base_seed: int = 0) -> int:
        """Deterministic per-job seed when the spec carries none.

        Mixes the content digest with *base_seed* so distinct jobs draw
        distinct-but-reproducible random streams.
        """
        if self.seed is not None:
            return self.seed
        mix = hashlib.sha256(f"{self.digest()}:{base_seed}".encode()).digest()
        return int.from_bytes(mix[:4], "big")

    def label(self) -> str:
        """Short human-readable identity for logs and telemetry."""
        return f"{self.kind}[{self.digest()[:12]}]"


# -- job-type registry ----------------------------------------------------

_REGISTRY: Dict[str, Callable] = {}


def register_job_type(name: str) -> Callable:
    """Decorator: register ``fn(params: dict, seed) -> json-value`` as *name*."""

    def wrap(fn: Callable) -> Callable:
        _REGISTRY[name] = fn
        return fn

    return wrap


def resolve_job_type(name: str) -> Callable:
    """Look a runner up by kind, loading the built-in job types on demand."""
    if name not in _REGISTRY:
        from . import jobs  # noqa: F401 - imports register the built-ins
    if name not in _REGISTRY and name.startswith("chaos_"):
        # Fault-injection jobs live with the verify subsystem; importing it
        # here lets chaos specs resolve inside fresh pool workers too.
        from ..verify import chaos  # noqa: F401
    if name not in _REGISTRY and name.startswith("fuzz_"):
        # Same pattern for the differential fuzzer's probe jobs.
        from ..fuzz import jobs as _fuzz_jobs  # noqa: F401

    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown job type {name!r}; registered: {job_types()}"
        ) from None


def job_types() -> List[str]:
    return sorted(_REGISTRY)
