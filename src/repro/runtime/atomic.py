"""Atomic, optionally durable file writes.

One discipline, shared by the journal compactor and the SA checkpointer
(and matching what :class:`~repro.runtime.cache.ResultCache` already
does): write the full document to a temp file *in the destination
directory*, then ``os.replace`` it over the target.  A reader therefore
only ever sees the old complete document or the new complete document —
never a torn one — even against concurrent foreign writers, because
rename is atomic within a filesystem.

``durable=True`` additionally fsyncs the temp file before the rename and
the directory after it, which is what turns "atomic" into "crash-safe":
without the directory fsync a power loss can forget the rename itself.
The cache skips durability (a lost cache entry is just a miss); a
journal compaction or checkpoint must not.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Best-effort: some filesystems (and all of Windows) refuse to open
    directories — there the rename is as durable as the platform allows.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path], data: str, durable: bool = True
) -> Path:
    """Atomically replace *path* with *data*; returns the path.

    The temp file lives next to the target (same filesystem, so the
    rename cannot degrade to copy+delete) and is cleaned up on any
    failure.  With ``durable`` the data is fsynced before the rename and
    the directory after it.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=path.name,
        suffix=".tmp",
        delete=False,
        encoding="utf-8",
    )
    try:
        with handle:
            handle.write(data)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(path.parent)
    return path
