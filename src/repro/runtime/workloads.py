"""Paper-level workloads: spec builders + renderers for the engine.

A workload turns CLI-level intent ("run Table 2") into the flat job list
the engine executes, and turns the outcome list back into the paper-style
rendering the serial commands print.  Because the spec builders iterate in
the same circuit-major order as the legacy serial loops, the rendered
tables are identical whether the jobs ran serially, in parallel, or came
out of the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from .engine import JobOutcome
from .spec import JobSpec

TABLE2_ASSIGNERS = ("Random", "IFA", "DFA")
CIRCUIT_INDEXES = (1, 2, 3, 4, 5)


def _values(outcomes: Sequence[JobOutcome]) -> List[dict]:
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        details = "; ".join(
            f"{outcome.spec.label()}: {outcome.error}" for outcome in failed
        )
        raise RuntimeError(f"{len(failed)} job(s) failed: {details}")
    return [outcome.value for outcome in outcomes]


# -- Table 2 ---------------------------------------------------------------


def table2_specs(seed: int = 42, grid: int = 32) -> List[JobSpec]:
    """Random/IFA/DFA on the five Table-1 circuits (grid unused)."""
    return [
        JobSpec("table2_cell", {"circuit": index, "assigner": assigner}, seed=seed)
        for index in CIRCUIT_INDEXES
        for assigner in TABLE2_ASSIGNERS
    ]


def table2_table(outcomes: Sequence[JobOutcome]):
    """Rebuild the :class:`ComparisonTable` the serial path produces."""
    from ..flow import AssignerRun, ComparisonTable

    table = ComparisonTable(baseline="Random")
    for value in _values(outcomes):
        table.runs.append(
            AssignerRun(
                circuit=value["circuit"],
                assigner=value["assigner"],
                max_density=value["max_density"],
                wirelength=value["wirelength"],
                flyline_length=value["flyline_length"],
            )
        )
    return table


def _render_table2(outcomes: Sequence[JobOutcome]) -> str:
    from ..flow import render_table2

    return render_table2(table2_table(outcomes))


# -- Table 3 ---------------------------------------------------------------


@dataclass(frozen=True)
class CodesignView:
    """Duck-types the CoDesignResult fields the Table-3 renderer reads."""

    circuit: str
    density_after_assignment: int
    density_after_exchange: int
    ir_improvement: float
    bonding_improvement: float


def table3_specs(seed: int = 7, grid: int = 32, backend: str = "auto") -> List[JobSpec]:
    """The exchange experiment: five circuits at psi=1 and psi=4.

    ``backend`` is recorded in the spec params only when it deviates from
    the default, keeping established cache digests stable.
    """
    extra = {} if backend == "auto" else {"backend": backend}
    return [
        JobSpec(
            "codesign",
            dict({"circuit": index, "tiers": tiers, "grid": grid}, **extra),
            seed=seed,
        )
        for tiers in (1, 4)
        for index in CIRCUIT_INDEXES
    ]


def table3_results(outcomes: Sequence[JobOutcome]):
    """Split outcomes into the (2-D, stacked) dicts render_table3 wants."""
    results: Dict[int, Dict[str, CodesignView]] = {1: {}, 4: {}}
    for value in _values(outcomes):
        results[value["tiers"]][value["circuit"]] = CodesignView(
            circuit=value["circuit"],
            density_after_assignment=value["density_after_assignment"],
            density_after_exchange=value["density_after_exchange"],
            ir_improvement=value["ir_improvement"],
            bonding_improvement=value["bonding_improvement"],
        )
    return results[1], results[4]


def _render_table3(outcomes: Sequence[JobOutcome]) -> str:
    from ..flow import render_table3

    results_2d, results_stacked = table3_results(outcomes)
    return render_table3(results_2d, results_stacked)


# -- Fig. 6 ----------------------------------------------------------------


def fig6_specs(seed: int = 2009, grid: int = 40) -> List[JobSpec]:
    return [JobSpec("fig6", {"grid": grid}, seed=seed)]


def fig6_result(outcomes: Sequence[JobOutcome]):
    from ..circuits import Fig6Result

    (value,) = _values(outcomes)
    return Fig6Result(
        random_mv=value["random_mv"],
        regular_mv=value["regular_mv"],
        optimized_mv=value["optimized_mv"],
    )


def _render_fig6(outcomes: Sequence[JobOutcome]) -> str:
    from ..flow import render_fig6

    return render_fig6(fig6_result(outcomes))


# -- smoke -----------------------------------------------------------------


def smoke_specs(seed: int = 0, grid: int = 16) -> List[JobSpec]:
    """A tiny engine shakedown: circuit 1 with a short SA schedule."""
    return [
        JobSpec(
            "codesign",
            {
                "circuit": 1,
                "tiers": tiers,
                "grid": grid,
                "moves_per_temp": 20,
                "cooling": 0.8,
            },
            seed=seed,
        )
        for tiers in (1, 4)
    ]


def _render_smoke(outcomes: Sequence[JobOutcome]) -> str:
    lines = []
    for value in _values(outcomes):
        sa = value["sa"]
        lines.append(
            f"{value['circuit']} (psi={value['tiers']}): "
            f"density {value['density_after_assignment']} -> "
            f"{value['density_after_exchange']}, "
            f"IR improvement {value['ir_improvement'] * 100:.2f}%, "
            f"SA acceptance {sa['acceptance_ratio']:.3f}"
        )
    return "\n".join(lines)


# -- registry --------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """One runnable evaluation target for ``python -m repro run``."""

    name: str
    help: str
    default_seed: int
    default_grid: int
    build: Callable[[int, int], List[JobSpec]]
    render: Callable[[Sequence[JobOutcome]], str]


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in (
        Workload(
            "table2", "Random/IFA/DFA comparison (Table 2)",
            42, 32, table2_specs, _render_table2,
        ),
        Workload(
            "table3", "finger/pad exchange experiment (Table 3)",
            7, 32, table3_specs, _render_table3,
        ),
        Workload(
            "fig6", "real-chip IR-drop comparison (Fig. 6)",
            2009, 40, fig6_specs, _render_fig6,
        ),
        Workload(
            "smoke", "tiny engine shakedown (<30 s)",
            0, 16, smoke_specs, _render_smoke,
        ),
    )
}
