"""The job journal: an append-only write-ahead log of job lifecycles.

The cache answers "what did this job compute?"; the journal answers
"what was this process *doing* when it died?".  Every lifecycle
transition — ``submitted``, ``started``, ``retried``, ``settled``,
``failed`` — is appended as one JSONL record and (by default) fsync'd
before the transition is acted on, so a ``kill -9`` at any instant
leaves a prefix of the truth on disk:

- a digest whose last record is ``settled`` is done; its value is in the
  record and is served without re-execution;
- a digest whose last record is ``submitted``/``started``/``retried``
  was in flight; replay reports it exactly once for re-enqueueing;
- a digest whose last record is ``failed`` stays failed (terminal) until
  a later ``submitted`` supersedes it.

Record format (one JSON object per line, key order canonical)::

    {"v": 1, "seq": 17, "ts": 1754650000.1, "rec": "settled",
     "digest": "ab12...", "spec": {"kind": ..., "params": ..., "seed": ...},
     "value": ..., "attempts": 1, "seconds": 0.8, "cached": false}

``submitted`` and ``settled`` records embed the spec, so the journal is
self-contained: replay can rebuild a runnable :class:`JobSpec` for every
in-flight digest and answer every settled digest without consulting the
cache.  ``seq`` is a monotonic per-file sequence; on conflicting records
for one digest the *latest in file order* wins, which is what makes a
duplicate ``settled`` (two engines racing on a shared journal) harmless.

Crash tolerance on replay: a torn *final* line is the expected signature
of dying mid-append — it is dropped and counted in ``diagnostics``.
Garbage *before* the final line means something other than a crash
damaged the file, and replay raises
:class:`~repro.errors.JournalCorruptionError` rather than guess which
half of the history to trust.

The file is bounded: once it outgrows ``compact_bytes``, the history is
rewritten in place (atomically, via :func:`atomic_write_text`) keeping
one record per live digest — latest ``settled`` per settled digest, the
``submitted`` record per in-flight digest, the ``failed`` record per
failed digest — so a long-running daemon's journal grows with its *state*,
not its *traffic*.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import JournalCorruptionError, JournalError
from .atomic import atomic_write_text
from .spec import JobSpec
from .telemetry import get_telemetry

#: Bump when the record layout changes incompatibly.
JOURNAL_VERSION = 1

#: Lifecycle transitions a journal records, in the order they can occur.
RECORD_TYPES = ("submitted", "started", "retried", "settled", "failed")

#: Default compaction trigger: rewrite once the file exceeds this size.
DEFAULT_COMPACT_BYTES = 4 * 1024 * 1024


def _spec_payload(spec: JobSpec) -> dict:
    """The embedded spec form: enough to rebuild a runnable JobSpec."""
    canonical = spec.canonical()
    return {
        "kind": canonical["kind"],
        "params": canonical["params"],
        "seed": canonical["seed"],
    }


def _spec_from_payload(payload: dict) -> JobSpec:
    return JobSpec(
        kind=payload["kind"],
        params=dict(payload.get("params") or {}),
        seed=payload.get("seed"),
    )


def spec_from_record(record: dict) -> Optional[JobSpec]:
    """Rebuild the :class:`JobSpec` a journal record embeds, or ``None``.

    Used by replay consumers (the serve daemon's restart recovery) that
    hold raw ``settled``/``failed`` records rather than digests.
    """
    payload = record.get("spec")
    if not isinstance(payload, dict):
        return None
    try:
        return _spec_from_payload(payload)
    except (KeyError, TypeError):
        return None


class JobJournal:
    """Append-only JSONL job-lifecycle log with crash-tolerant replay.

    Thread-safe (the serve daemon records from its dispatcher thread while
    the engine records from request handlers); single-writer per *process*
    is assumed for the append path, but replay and compaction tolerate a
    foreign writer having appended or compacted the same file — renames
    are atomic, and replay resolves conflicting records last-wins.

    ``fsync=False`` trades durability of the last few records for append
    throughput (the file is still written append-only and torn-tail
    tolerant); the default is durable.
    """

    def __init__(
        self,
        path,
        fsync: bool = True,
        compact_bytes: Optional[int] = DEFAULT_COMPACT_BYTES,
    ) -> None:
        self.path = Path(path).expanduser()
        self.fsync = bool(fsync)
        if compact_bytes is not None and compact_bytes <= 0:
            raise ValueError(f"compact_bytes must be positive, got {compact_bytes}")
        self.compact_bytes = compact_bytes
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOWrapper] = None
        self._seq = 0
        self._bytes = 0
        self._settled: Dict[str, dict] = {}
        self._inflight: Dict[str, dict] = {}
        self._failed: Dict[str, dict] = {}
        #: Record counts by type, accumulated across replay and appends.
        self.counts: Dict[str, int] = {name: 0 for name in RECORD_TYPES}
        #: Replay/append anomalies: ``torn_tail`` (dropped final lines),
        #: ``duplicate_settled`` (last-wins races), ``unknown`` (record
        #: types from a newer writer), ``compactions``.
        self.diagnostics: Dict[str, int] = {
            "torn_tail": 0,
            "duplicate_settled": 0,
            "unknown": 0,
            "compactions": 0,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._replay()
        #: In-flight digests as of open: the crash-recovery work list.
        self._recovered: List[dict] = list(self._inflight.values())

    # -- replay ------------------------------------------------------------

    def _replay(self) -> None:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError as exc:
            raise JournalError(f"cannot read journal {self.path}: {exc}") from exc
        self._bytes = len(raw.encode("utf-8"))
        lines = raw.splitlines()
        while lines and not lines[-1].strip():
            lines.pop()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "rec" not in record:
                    raise ValueError("not a journal record object")
            except ValueError as exc:
                if index == len(lines) - 1:
                    # Torn tail: the crash interrupted the final append.
                    self.diagnostics["torn_tail"] += 1
                    self._bytes -= len(line.encode("utf-8")) + 1
                    get_telemetry().count("journal.torn_tail")
                    break
                raise JournalCorruptionError(
                    f"journal {self.path} line {index + 1} is corrupt "
                    f"(not the final line, so not a torn tail): {exc}"
                ) from exc
            self._seq = max(self._seq, int(record.get("seq", 0)))
            self._apply(record)

    def _apply(self, record: dict) -> None:
        """Fold one record into the replay state (last record wins)."""
        rec = record.get("rec")
        digest = record.get("digest")
        if rec in self.counts:
            self.counts[rec] += 1
        if rec == "submitted":
            if digest not in self._settled:
                self._failed.pop(digest, None)
                self._inflight[digest] = record
        elif rec == "started":
            entry = self._inflight.get(digest)
            if entry is not None:
                entry["started"] = True
        elif rec == "retried":
            entry = self._inflight.get(digest)
            if entry is not None:
                entry["retries"] = entry.get("retries", 0) + 1
        elif rec == "settled":
            if digest in self._settled:
                self.diagnostics["duplicate_settled"] += 1
            self._inflight.pop(digest, None)
            self._failed.pop(digest, None)
            self._settled[digest] = record
        elif rec == "failed":
            prior = self._inflight.pop(digest, None)
            self._settled.pop(digest, None)
            if "spec" not in record and prior is not None and "spec" in prior:
                record["spec"] = prior["spec"]
            self._failed[digest] = record
        else:
            self.diagnostics["unknown"] += 1

    # -- append ------------------------------------------------------------

    def _ensure_handle(self) -> io.TextIOWrapper:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _append(self, record: dict) -> None:
        """Stamp, apply, and durably write one record (lock held)."""
        self._seq += 1
        record["v"] = JOURNAL_VERSION
        record["seq"] = self._seq
        record["ts"] = round(time.time(), 3)
        self._apply(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        handle = self._ensure_handle()
        handle.write(line + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._bytes += len(line.encode("utf-8")) + 1
        if self.compact_bytes is not None and self._bytes > self.compact_bytes:
            self._compact_locked()

    # -- recording ---------------------------------------------------------

    def record_submitted(self, spec: JobSpec) -> bool:
        """Log admission of *spec*; returns False (and writes nothing) when
        the digest is already in flight or settled — the exactly-once
        guard recovery relies on."""
        digest = spec.digest()
        with self._lock:
            if digest in self._inflight or digest in self._settled:
                return False
            self._append(
                {"rec": "submitted", "digest": digest, "spec": _spec_payload(spec)}
            )
            return True

    def record_started(self, digest: str) -> bool:
        """Log that an in-flight digest began executing."""
        with self._lock:
            if digest not in self._inflight:
                return False
            self._append({"rec": "started", "digest": digest})
            return True

    def record_retried(self, digest: str, attempt: Optional[int] = None) -> bool:
        """Log one retry round for an in-flight digest."""
        with self._lock:
            if digest not in self._inflight:
                return False
            record = {"rec": "retried", "digest": digest}
            if attempt is not None:
                record["attempt"] = int(attempt)
            self._append(record)
            return True

    def record_settled(
        self,
        spec: JobSpec,
        value,
        attempts: int = 1,
        seconds: float = 0.0,
        cached: bool = False,
    ) -> bool:
        """Log the final value for *spec*; idempotent per digest.

        An already-settled digest is skipped without touching the disk —
        repeat submissions of a hot digest therefore cost one dict lookup,
        not one fsync.
        """
        digest = spec.digest()
        with self._lock:
            if digest in self._settled:
                return False
            self._append(
                {
                    "rec": "settled",
                    "digest": digest,
                    "spec": _spec_payload(spec),
                    "value": value,
                    "attempts": int(attempts),
                    "seconds": round(float(seconds), 6),
                    "cached": bool(cached),
                }
            )
            return True

    def record_failed(
        self, digest: str, error: str, error_class: Optional[str] = None
    ) -> bool:
        """Log a terminal failure (also supersedes a bad settled value)."""
        with self._lock:
            record = {"rec": "failed", "digest": digest, "error": str(error)}
            if error_class is not None:
                record["error_class"] = error_class
            self._append(record)
            return True

    # -- queries -----------------------------------------------------------

    def settled_record(self, digest: str) -> Optional[dict]:
        """The ``settled`` record for *digest*, or ``None``."""
        with self._lock:
            return self._settled.get(digest)

    def settled_records(self) -> Dict[str, dict]:
        with self._lock:
            return dict(self._settled)

    def failed_records(self) -> Dict[str, dict]:
        with self._lock:
            return dict(self._failed)

    def inflight_digests(self) -> List[str]:
        with self._lock:
            return list(self._inflight)

    def take_recovered(self) -> List[JobSpec]:
        """Specs that were in flight when this journal was opened.

        Consumes the recovery snapshot: the first caller gets the full
        work list, every later call gets ``[]`` — re-enqueue is exactly
        once even if two recovery paths race.  Records whose embedded
        spec is missing or unbuildable are skipped (they can still be
        inspected via :meth:`inflight_digests`).
        """
        with self._lock:
            recovered, self._recovered = self._recovered, []
        specs: List[JobSpec] = []
        for record in recovered:
            payload = record.get("spec")
            if not isinstance(payload, dict):
                continue
            try:
                specs.append(_spec_from_payload(payload))
            except (KeyError, TypeError):
                continue
        return specs

    # -- compaction --------------------------------------------------------

    def _live_records(self) -> List[dict]:
        records = list(self._settled.values())
        records += list(self._failed.values())
        records += list(self._inflight.values())
        records.sort(key=lambda record: record.get("seq", 0))
        return records

    def _compact_locked(self) -> int:
        before = self._bytes
        lines = []
        for seq, record in enumerate(self._live_records(), start=1):
            compacted = dict(record)
            compacted["seq"] = seq
            # Started/retry progress is meaningful only within the run
            # that recorded it; a compacted in-flight record is just the
            # admission fact.
            compacted.pop("started", None)
            compacted.pop("retries", None)
            lines.append(
                json.dumps(compacted, sort_keys=True, separators=(",", ":"))
            )
        data = "".join(line + "\n" for line in lines)
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
            self._handle = None
        atomic_write_text(self.path, data, durable=self.fsync)
        self._seq = len(lines)
        self._bytes = len(data.encode("utf-8"))
        self.diagnostics["compactions"] += 1
        get_telemetry().emit(
            "journal.compact",
            records=len(lines),
            bytes=self._bytes,
            reclaimed=max(0, before - self._bytes),
        )
        get_telemetry().count("journal.compactions")
        return len(lines)

    def compact(self) -> int:
        """Rewrite the file keeping one record per live digest; returns
        the number of records kept."""
        with self._lock:
            return self._compact_locked()

    # -- summary / lifecycle -----------------------------------------------

    def summary(self) -> dict:
        """Machine-readable state for ``repro journal`` and tests."""
        with self._lock:
            return {
                "path": str(self.path),
                "bytes": self._bytes,
                "seq": self._seq,
                "records": dict(self.counts),
                "settled": len(self._settled),
                "inflight": len(self._inflight),
                "failed": len(self._failed),
                "diagnostics": dict(self.diagnostics),
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
