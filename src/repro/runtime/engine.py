"""The job engine: process-pool fan-out with cache, retry and timeouts.

Execution policy, in order:

1. every spec is first looked up in the cache (when one is attached);
2. remaining jobs run on a ``ProcessPoolExecutor`` when ``jobs > 1``,
   in-process otherwise;
3. a job that raises is retried up to ``retries`` times with exponential
   backoff (``backoff * 2**round`` seconds between rounds);
4. a job that exceeds ``timeout`` seconds is failed permanently — a hung
   computation would hang again, so it is not retried;
5. a dead worker (``BrokenProcessPool``) degrades every unresolved job to
   serial in-process execution rather than failing the run.

Long-running callers (the ``repro.serve`` daemon) construct the engine
with ``warm=True``: the process pool is created once, its workers pre-pay
the heavy imports (NumPy, the flow/kernel layers) in an initializer, and
every subsequent :meth:`JobEngine.run` reuses it — amortizing process
spawn + module import across requests.  A warm pool that breaks is
discarded (the run degrades to serial as usual) and the next run builds a
fresh one; :meth:`JobEngine.close` (or using the engine as a context
manager) releases the workers.

Workers run the job under a private :class:`Telemetry` and ship the events
back with the result, so SA-loop events from a subprocess appear in the
parent's trace tagged with the job label.  Determinism: each job draws its
seed from the spec (or the spec digest mixed with ``base_seed``), so the
results are identical for ``jobs=1`` and ``jobs=N``.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import classify_error
from ..obs.metrics import QUEUE_WAIT_BUCKETS
from ..obs.profile import PROFILE_MODES, make_profiler, profile_to_event
from ..obs.spans import attached_to, open_span, span
from ..verify.policy import OFF, STRICT, normalize as normalize_policy
from .cache import MISS, ResultCache
from .journal import JobJournal
from .spec import JobSpec, resolve_job_type
from .telemetry import Telemetry, get_telemetry, using_telemetry

try:  # BrokenProcessPool moved around across Python versions
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = OSError


@dataclass
class _PoolProgress:
    """Per-job retry budget already spent in the pool before it degraded.

    ``attempts`` counts only *confirmed* pool executions (futures whose
    failure we observed); a future in flight when the pool died may or may
    not have run, so it is not charged against the budget.
    """

    attempts: int = 0
    error: Optional[str] = None
    error_class: Optional[str] = None


def _warm_worker() -> None:
    """Pool initializer for warm engines: pre-pay the heavy imports.

    A cold worker spends its first job importing NumPy and the
    flow/kernel layers; doing it at pool creation moves that cost out of
    the first request's latency.  Import failures are deliberately
    swallowed — a worker that cannot pre-import will surface the real
    error when a job actually needs the module.
    """
    try:
        import numpy  # noqa: F401

        from .. import flow  # noqa: F401
        from ..kernels import exchange  # noqa: F401
        from . import jobs  # noqa: F401 - registers the built-in job types
    except Exception:  # pragma: no cover - only on broken installs
        pass


@dataclass
class JobOutcome:
    """What happened to one spec: a value, a cache hit, or an error."""

    spec: JobSpec
    value: object = None
    error: Optional[str] = None
    #: Taxonomy class of the failure (``errors.classify_error``), when any.
    error_class: Optional[str] = None
    cached: bool = False
    #: True when the value was replayed from the write-ahead journal (a
    #: previous process settled it and crashed before anyone read it).
    journal: bool = False
    attempts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _execute_job(
    kind: str,
    params: dict,
    seed: Optional[int],
    parent_span: Optional[str] = None,
    submitted: Optional[float] = None,
    profile: Optional[str] = None,
):
    """Worker-side entry point: run one job under a private telemetry.

    Module-level so it pickles.  Returns a dict so the wire format can
    grow fields without breaking unpacking:

    - ``value`` / ``events`` / ``seconds`` — the result, the worker-local
      telemetry events, and the job wall time;
    - ``epoch`` — wall-clock creation time of the worker telemetry, so the
      parent can rebase the events' relative timestamps onto its own
      timeline (``offset = epoch - parent.epoch``);
    - ``queue_wait`` — seconds between engine-side submission (the
      ``submitted`` wall-clock) and the worker picking the job up.

    ``parent_span`` roots every span the job opens under the engine-side
    ``job`` span, even across the process boundary; passing ``None`` still
    clears whatever span context the fork inherited.
    """
    runner = resolve_job_type(kind)
    telemetry = Telemetry()
    queue_wait = (
        max(0.0, time.time() - submitted) if submitted is not None else None
    )
    profiler = make_profiler(profile)
    start = time.perf_counter()
    with using_telemetry(telemetry), attached_to(parent_span):
        if profiler is not None:
            profiler.start()
        try:
            value = runner(params, seed)
        finally:
            if profiler is not None:
                profiler.stop()
        seconds = time.perf_counter() - start
        if profiler is not None:
            telemetry.emit("profile", **profile_to_event(profiler, seconds))
        telemetry.metrics.flush()
    return {
        "value": value,
        "events": telemetry.events,
        "seconds": seconds,
        "queue_wait": queue_wait,
        "epoch": telemetry.epoch,
    }


class JobEngine:
    """Run :class:`JobSpec` lists with caching, parallelism and retries."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.05,
        base_seed: int = 0,
        verify: str = OFF,
        profile: Optional[str] = None,
        warm: bool = False,
        journal: Optional[JobJournal] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if profile is not None and profile not in PROFILE_MODES:
            raise ValueError(
                f"profile must be one of {PROFILE_MODES} or None, got {profile!r}"
            )
        self.jobs = jobs
        #: Per-job profiling mode (``"cprofile"`` | ``"sample"`` | ``None``);
        #: each executed job emits one ``profile`` event when set.
        self.profile = profile
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.base_seed = base_seed
        #: Result-verification policy: ``off`` (trust job values), ``strict``
        #: (invalid result fails the job immediately) or ``repair`` (invalid
        #: result is recomputed like any other failure).  Cached values are
        #: always re-checked under an active policy; an invalid entry is
        #: dropped and re-run — never served.
        self.verify = normalize_policy(verify)
        #: Keep one process pool alive across :meth:`run` calls (daemon
        #: mode); workers pre-import the heavy layers via ``_warm_worker``.
        self.warm = warm
        #: Optional write-ahead journal: every lifecycle transition of an
        #: executed spec is logged before it is acted on, settled digests
        #: answer from the journal without re-execution, and the specs that
        #: were in flight when the journal was opened are exposed once via
        #: :meth:`recovered_specs` for re-enqueueing.
        self.journal = journal
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------

    def _acquire_pool(self, needed: int) -> ProcessPoolExecutor:
        """A pool to run *needed* jobs on: persistent when warm, else fresh."""
        if not self.warm:
            return ProcessPoolExecutor(max_workers=min(self.jobs, needed))
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_warm_worker
            )
            self.telemetry.emit("engine.pool_start", workers=self.jobs)
            self.telemetry.count("engine.pool_starts")
        return self._pool

    def _release_pool(self, pool: ProcessPoolExecutor, broken: bool) -> None:
        """Return a pool after a run: warm pools persist unless broken.

        ``wait=False``: a worker stuck past its timeout must not block us.
        """
        if self.warm and not broken and pool is self._pool:
            return
        if pool is self._pool:
            self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Release the persistent warm pool, if one is alive (idempotent)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public ------------------------------------------------------------

    def _effective_spec(self, spec: JobSpec) -> JobSpec:
        """Pin a seedless spec to the seed it will actually execute with.

        A ``seed=None`` spec runs under ``derived_seed(base_seed)`` — a
        value that depends on this engine's configuration — while its
        content digest said nothing about it.  Two engines with different
        ``base_seed`` would then exchange results through the cache even
        though they compute different values (the first writer poisons
        every later reader).  Resolving the effective seed into the spec
        *before* the cache lookup makes the digest describe the actual
        computation; specs that already carry a seed are untouched, so
        established cache entries stay valid.
        """
        if spec.seed is not None:
            return spec
        return JobSpec(spec.kind, spec.params, seed=spec.derived_seed(self.base_seed))

    def run(self, specs: Sequence[JobSpec]) -> List[JobOutcome]:
        """Execute *specs*; the outcome list matches the input order.

        Seedless specs are normalized first (see :meth:`_effective_spec`),
        so the outcomes' ``spec`` fields carry the pinned seed.
        """
        specs = [self._effective_spec(spec) for spec in specs]
        telemetry = self.telemetry
        started = time.perf_counter()
        outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
        metrics = telemetry.metrics

        with span("engine", telemetry, jobs=self.jobs):
            # The cache reports invalid entries via the *active* telemetry,
            # so install the engine's for the lookup phase.
            with using_telemetry(telemetry):
                for index, spec in enumerate(specs):
                    if self.cache is not None:
                        value = self.cache.get(spec)
                        if value is not MISS and self.verify != OFF:
                            invalid = self._validate_value(spec, value, source="cache")
                            if invalid is not None:
                                # A semantically invalid entry is as bad as a
                                # corrupt one: drop it and recompute instead of
                                # tabulating it.
                                self.cache.invalidate(spec)
                                value = MISS
                        if value is not MISS:
                            outcomes[index] = JobOutcome(
                                spec=spec, value=value, cached=True
                            )
                            telemetry.count("cache.hits")
                            metrics.counter("cache.hits").inc()
                            telemetry.emit(
                                "job.cached", job=spec.label(), kind=spec.kind
                            )
                            continue
                        telemetry.count("cache.misses")
                        metrics.counter("cache.misses").inc()
                    outcome = self._journal_lookup(spec)
                    if outcome is not None:
                        outcomes[index] = outcome

            pending = [i for i, outcome in enumerate(outcomes) if outcome is None]
            if self.journal is not None:
                # Write-ahead: admission and start are on disk before any
                # work happens, so a crash from here on leaves the digest
                # in flight for the next process to recover exactly once.
                for index in pending:
                    self.journal.record_submitted(specs[index])
                    self.journal.record_started(specs[index].digest())
            telemetry.emit(
                "engine.start",
                jobs=self.jobs,
                total=len(specs),
                cached=len(specs) - len(pending),
                pending=len(pending),
            )

            carry: Dict[int, _PoolProgress] = {}
            # A warm engine routes even a lone job through its persistent
            # pool: the workers are already paid for, and keeping compute
            # out of the calling thread is the point in daemon mode.
            if self.jobs > 1 and (len(pending) > 1 or (self.warm and pending)):
                pending, carry = self._run_parallel(specs, pending, outcomes)
            for index in pending:
                progress = carry.get(index, _PoolProgress())
                outcomes[index] = self._run_serial(
                    specs[index],
                    attempts_used=progress.attempts,
                    last_error=progress.error,
                    last_class=progress.error_class,
                )

            failures = 0
            for outcome in outcomes:
                if not outcome.ok:
                    failures += 1
                    if self.journal is not None:
                        self.journal.record_failed(
                            outcome.spec.digest(),
                            outcome.error,
                            error_class=outcome.error_class,
                        )
                    continue
                if self.journal is not None and not outcome.journal:
                    # Settle cache hits too: the journal is the restart
                    # registry, and an idempotent settle of a known digest
                    # costs one dict lookup, not an fsync.
                    self.journal.record_settled(
                        outcome.spec,
                        outcome.value,
                        attempts=outcome.attempts,
                        seconds=outcome.seconds,
                        cached=outcome.cached,
                    )
                if self.cache is not None and not outcome.cached:
                    with using_telemetry(telemetry):
                        self.cache.put(outcome.spec, outcome.value)
            telemetry.count("jobs.total", len(specs))
            telemetry.count("jobs.failed", failures)
            metrics.flush()
            telemetry.emit(
                "engine.end",
                total=len(specs),
                failures=failures,
                seconds=round(time.perf_counter() - started, 6),
                **(self.cache.stats if self.cache is not None else {}),
            )
        return outcomes

    def run_one(self, spec: JobSpec) -> JobOutcome:
        return self.run([spec])[0]

    def recovered_specs(self) -> List[JobSpec]:
        """Specs left in flight by a crashed predecessor, exactly once.

        Consumes the journal's recovery snapshot; without a journal (or on
        any later call) the list is empty.  Callers re-enqueue these
        through :meth:`run` like fresh submissions — the journal's
        ``record_submitted`` dedup makes the replay idempotent.
        """
        if self.journal is None:
            return []
        return self.journal.take_recovered()

    # -- journal -----------------------------------------------------------

    def _journal_lookup(self, spec: JobSpec) -> Optional[JobOutcome]:
        """Answer *spec* from the journal's settled records, if possible.

        A settled value is re-checked under the verify policy like any
        cached value; an invalid one is superseded with a ``failed``
        record (so replay stops serving it) and the spec re-runs.
        """
        if self.journal is None:
            return None
        record = self.journal.settled_record(spec.digest())
        if record is None:
            return None
        value = record.get("value")
        invalid = self._validate_value(spec, value, source="journal")
        if invalid is not None:
            self.journal.record_failed(
                spec.digest(), invalid, error_class="verification"
            )
            return None
        self.telemetry.count("journal.hits")
        self.telemetry.metrics.counter("journal.hits").inc()
        self.telemetry.emit("job.journal", job=spec.label(), kind=spec.kind)
        return JobOutcome(
            spec=spec,
            value=value,
            cached=bool(record.get("cached", False)),
            journal=True,
            attempts=int(record.get("attempts", 1) or 0),
        )

    # -- verification ------------------------------------------------------

    def _validate_value(self, spec: JobSpec, value, source: str) -> Optional[str]:
        """Check one job value under the verify policy.

        Returns ``None`` when the value passes (or the policy is off),
        otherwise an error string; emits a ``job.invalid`` telemetry event
        carrying the machine-readable diagnostic codes.
        """
        if self.verify == OFF:
            return None
        from ..verify import check_job_value

        report = check_job_value(spec.kind, value)
        if report.ok:
            return None
        self.telemetry.count("jobs.invalid")
        self.telemetry.emit(
            "job.invalid",
            job=spec.label(),
            kind=spec.kind,
            source=source,
            codes=report.codes("error"),
            error=str(report.errors[0]),
        )
        head = "; ".join(str(d) for d in report.errors[:3])
        return f"VerificationError: invalid {source} result: {head}"

    # -- serial ------------------------------------------------------------

    def _run_serial(
        self,
        spec: JobSpec,
        attempts_used: int = 0,
        last_error: Optional[str] = None,
        last_class: Optional[str] = None,
    ) -> JobOutcome:
        """In-process execution with the retry policy (no timeout: a hung
        job in-process cannot be interrupted portably).

        ``attempts_used`` is the retry budget already spent before this
        call (pool attempts that failed before the pool degraded); the
        serial rounds resume from there instead of granting a fresh
        budget.  When the budget is already exhausted the job fails
        immediately with the carried-over ``last_error``/``last_class``.
        """
        telemetry = self.telemetry
        if attempts_used > self.retries:
            telemetry.emit(
                "job.failed", job=spec.label(), kind=spec.kind,
                error=last_error or "retry budget exhausted in pool",
                error_class=last_class,
            )
            return JobOutcome(
                spec=spec,
                error=last_error or "retry budget exhausted in pool",
                error_class=last_class,
                attempts=attempts_used,
            )
        runner = resolve_job_type(spec.kind)
        seed = spec.derived_seed(self.base_seed)
        last_error = last_error or "never ran"
        attempts = attempts_used
        with span("job", telemetry, job=spec.label(), kind=spec.kind):
            for round_ in range(attempts_used, self.retries + 1):
                attempts = round_ + 1
                if round_:
                    time.sleep(self.backoff * (2 ** (round_ - 1)))
                    telemetry.count("jobs.retried")
                    telemetry.metrics.counter("engine.retries").inc()
                    if self.journal is not None:
                        self.journal.record_retried(spec.digest(), attempt=round_ + 1)
                profiler = make_profiler(self.profile)
                start = time.perf_counter()
                try:
                    with using_telemetry(telemetry):
                        if profiler is not None:
                            profiler.start()
                        try:
                            value = runner(dict(spec.params), seed)
                        finally:
                            if profiler is not None:
                                profiler.stop()
                except (KeyboardInterrupt, SystemExit):
                    # Control flow, not a job failure: never swallow, never retry.
                    raise
                except Exception as exc:  # noqa: BLE001 - jobs may fail arbitrarily
                    last_error = f"{type(exc).__name__}: {exc}"
                    last_class = classify_error(exc)
                    telemetry.emit(
                        "job.error", job=spec.label(), kind=spec.kind,
                        error=last_error, error_class=last_class,
                        traceback=traceback.format_exc(), attempt=round_ + 1,
                    )
                    continue
                seconds = time.perf_counter() - start
                if profiler is not None:
                    telemetry.emit(
                        "profile", job=spec.label(),
                        **profile_to_event(profiler, seconds),
                    )
                invalid = self._validate_value(spec, value, source="serial")
                if invalid is not None:
                    last_error, last_class = invalid, "verification"
                    if self.verify == STRICT:
                        # strict: an invalid result is a verdict, not a flake.
                        break
                    continue
                telemetry.emit(
                    "job.done", job=spec.label(), kind=spec.kind,
                    seconds=round(seconds, 6), attempts=round_ + 1, mode="serial",
                )
                return JobOutcome(
                    spec=spec, value=value, attempts=round_ + 1, seconds=seconds
                )
            telemetry.emit(
                "job.failed", job=spec.label(), kind=spec.kind,
                error=last_error, error_class=last_class,
            )
        return JobOutcome(
            spec=spec, error=last_error, error_class=last_class,
            attempts=attempts,
        )

    # -- parallel ----------------------------------------------------------

    def _run_parallel(
        self,
        specs: Sequence[JobSpec],
        indexes: List[int],
        outcomes: List[Optional[JobOutcome]],
    ) -> Tuple[List[int], Dict[int, _PoolProgress]]:
        """Pool execution for *indexes*; fills ``outcomes`` in place.

        Returns ``(unresolved, progress)``: the indexes that must fall
        back to serial execution (non-empty only when the pool broke
        underneath us) and, per unresolved index, the retry budget it
        already spent in the pool so the serial fallback resumes rather
        than restarts it.
        """
        telemetry = self.telemetry
        metrics = telemetry.metrics
        wait_histogram = metrics.histogram("engine.queue_wait", QUEUE_WAIT_BUCKETS)
        pool = self._acquire_pool(len(indexes))
        degraded = False
        timed_out = False
        try:
            remaining = list(indexes)
            errors: Dict[int, str] = {}
            classes: Dict[int, str] = {}
            for round_ in range(self.retries + 1):
                if round_:
                    # Book the retries when they happen (round start), not
                    # when failures are collected: the final round's
                    # failures are terminal, never retried.
                    time.sleep(self.backoff * (2 ** (round_ - 1)))
                    telemetry.count("jobs.retried", len(remaining))
                    metrics.counter("engine.retries").inc(len(remaining))
                    if self.journal is not None:
                        for i in remaining:
                            self.journal.record_retried(
                                specs[i].digest(), attempt=round_ + 1
                            )
                futures = {}
                handles = {}
                for i in remaining:
                    # One engine-side span per submission; its id travels to
                    # the worker, which roots the job's own spans under it.
                    handle = open_span(
                        "job", telemetry, job=specs[i].label(), kind=specs[i].kind
                    )
                    handles[i] = handle
                    futures[i] = pool.submit(
                        _execute_job,
                        specs[i].kind,
                        dict(specs[i].params),
                        specs[i].derived_seed(self.base_seed),
                        handle.span_id if handle is not None else None,
                        time.time(),
                        self.profile,
                    )
                failed: List[int] = []
                for i, future in futures.items():
                    spec = specs[i]
                    handle = handles.pop(i)
                    status = "error"
                    try:
                        try:
                            result = future.result(timeout=self.timeout)
                            value = result["value"]
                            seconds = result["seconds"]
                        except FutureTimeout:
                            future.cancel()
                            # The worker is still grinding on the job; a
                            # warm pool must not inherit the busy worker.
                            timed_out = True
                            status = "timeout"
                            outcomes[i] = JobOutcome(
                                spec=spec,
                                error=f"timed out after {self.timeout}s",
                                error_class="timeout",
                                attempts=round_ + 1,
                            )
                            telemetry.count("jobs.timeout")
                            telemetry.emit(
                                "job.timeout", job=spec.label(), kind=spec.kind,
                                timeout=self.timeout,
                            )
                        except (KeyboardInterrupt, SystemExit):
                            # Control flow, not a job failure: never swallow.
                            raise
                        except BrokenProcessPool:
                            degraded = True
                            break
                        except Exception as exc:  # noqa: BLE001
                            status = "retry" if round_ < self.retries else "error"
                            failed.append(i)
                            errors[i] = f"{type(exc).__name__}: {exc}"
                            classes[i] = classify_error(exc)
                            telemetry.emit(
                                "job.error", job=spec.label(), kind=spec.kind,
                                error=errors[i], error_class=classes[i],
                                traceback="".join(
                                    traceback.format_exception(
                                        type(exc), exc, exc.__traceback__
                                    )
                                ),
                                attempt=round_ + 1,
                            )
                        else:
                            # Rebase the worker's relative timestamps onto
                            # this telemetry's timeline via the wall-clock
                            # epochs, then re-emit under the job's label.
                            telemetry.ingest(
                                result["events"],
                                offset=result["epoch"] - telemetry.epoch,
                                job=spec.label(),
                            )
                            queue_wait = result["queue_wait"]
                            if queue_wait is not None:
                                wait_histogram.record(queue_wait)
                            invalid = self._validate_value(spec, value, source="pool")
                            if invalid is not None:
                                errors[i], classes[i] = invalid, "verification"
                                if self.verify == STRICT:
                                    status = "invalid"
                                    outcomes[i] = JobOutcome(
                                        spec=spec, error=invalid,
                                        error_class="verification",
                                        attempts=round_ + 1,
                                    )
                                    telemetry.emit(
                                        "job.failed", job=spec.label(),
                                        kind=spec.kind, error=invalid,
                                        error_class="verification",
                                    )
                                else:
                                    # repair: recompute like any other failure.
                                    status = (
                                        "retry" if round_ < self.retries
                                        else "invalid"
                                    )
                                    failed.append(i)
                                continue
                            status = "ok"
                            done_fields = {}
                            if queue_wait is not None:
                                done_fields["queue_wait"] = round(queue_wait, 6)
                            telemetry.emit(
                                "job.done", job=spec.label(), kind=spec.kind,
                                seconds=round(seconds, 6), attempts=round_ + 1,
                                mode="pool", **done_fields,
                            )
                            outcomes[i] = JobOutcome(
                                spec=spec, value=value,
                                attempts=round_ + 1, seconds=seconds,
                            )
                    finally:
                        if handle is not None:
                            handle.close(status="degraded" if degraded else status)
                # Push this round's cumulative snapshot to the sink now
                # rather than only at run() end, so a live /metrics scrape
                # mid-batch reflects completed work.  Safe to repeat: the
                # live registry delta-folds per source and the post-hoc
                # analyser keeps the last snapshot per tag.
                metrics.flush()
                if degraded:
                    break
                if not failed:
                    return [], {}
                remaining = failed
            if degraded:
                # Close the spans of jobs whose futures we never consumed.
                for handle in handles.values():
                    if handle is not None:
                        handle.close(status="degraded")
                unresolved = [i for i in indexes if outcomes[i] is None]
                telemetry.count("engine.degraded")
                metrics.counter("engine.worker_restarts").inc()
                telemetry.emit(
                    "engine.degraded",
                    reason="worker process died",
                    unresolved=len(unresolved),
                )
                progress = {
                    i: _PoolProgress(
                        attempts=round_ + 1 if i in failed else round_,
                        error=errors.get(i),
                        error_class=classes.get(i),
                    )
                    for i in unresolved
                }
                return unresolved, progress
            # Retry rounds exhausted: the survivors of `remaining` failed.
            for i in remaining:
                spec = specs[i]
                error = errors.get(i, "failed in worker")
                outcomes[i] = JobOutcome(
                    spec=spec, error=error, error_class=classes.get(i),
                    attempts=self.retries + 1,
                )
                telemetry.emit(
                    "job.failed", job=spec.label(), kind=spec.kind,
                    error=error, error_class=classes.get(i),
                )
            return [], {}
        finally:
            self._release_pool(pool, broken=degraded or timed_out)
