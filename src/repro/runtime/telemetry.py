"""Telemetry: counters, timers and a JSONL event sink.

The engine, the SA annealer and the experiment flow all talk to one
:class:`Telemetry` object.  Events are plain dicts; a sink (usually
:class:`JsonlSink`) receives each event as it is emitted, and the object
also keeps an in-memory buffer plus monotonic counters so tests and the
CLI summary can interrogate a run without parsing the trace file.

A context-local *active* telemetry makes instrumentation non-invasive:
deep code (the annealer's temperature loop) calls ``get_telemetry()``,
which returns a no-op singleton unless a caller installed a real one via
``using_telemetry(...)`` in the same thread/task context (engines running
concurrently on different threads therefore never see each other's
telemetry).  Worker processes collect events locally and the
engine re-emits them in the parent, so a trace file is always written from
a single process.

The higher-level observability layer (:mod:`repro.obs`) builds on the
primitives kept here: the ambient *span* context variable (every emitted
event is stamped with the id of the enclosing span, see
:mod:`repro.obs.spans`), the ``epoch`` wall-clock anchor that lets the
engine rebase worker-relative timestamps onto the parent timeline, and the
per-telemetry :class:`~repro.obs.metrics.MetricsRegistry` reachable as
``telemetry.metrics``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterable, List, Optional

#: The ambient span id (see :mod:`repro.obs.spans`).  Lives here, not in
#: ``repro.obs``, so that :meth:`Telemetry.emit` can stamp events without
#: importing the observability layer.
_SPAN: ContextVar[Optional[str]] = ContextVar("repro_span", default=None)


def current_span_id() -> Optional[str]:
    """Id of the innermost active span, or ``None`` outside any span."""
    return _SPAN.get()


class Telemetry:
    """Event buffer + counters, optionally forwarding to a sink."""

    enabled = True

    def __init__(self, sink: Optional[Callable[[dict], None]] = None) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        #: Wall-clock time of creation; lets a parent process rebase the
        #: relative ``t`` of events collected under a *different* Telemetry
        #: (``ingest(offset=child.epoch - parent.epoch)``).
        self.epoch = time.time()
        self.events: List[dict] = []
        self.counters: Dict[str, float] = {}
        self._metrics = None

    # -- events ------------------------------------------------------------

    def emit(self, event_name: str, **fields) -> dict:
        """Record one event; ``t`` is seconds since this object's creation.

        Events emitted inside an active span (see :func:`repro.obs.spans.span`)
        are stamped with its id as ``span`` unless the caller supplies one.
        (The positional parameter is deliberately *not* called ``name`` —
        span events carry a ``name`` field of their own.)
        """
        event = {"event": event_name, "t": round(time.perf_counter() - self._start, 6)}
        span_id = _SPAN.get()
        if span_id is not None:
            event["span"] = span_id
        event.update(fields)
        with self._lock:
            self.events.append(event)
        if self._sink is not None:
            self._sink(event)
        return event

    def ingest(self, events: Iterable[dict], offset: float = 0.0, **extra) -> None:
        """Re-emit events collected elsewhere (e.g. in a worker process).

        ``offset`` (seconds) is added to each event's ``t``, rebasing
        timestamps recorded against another telemetry's start onto this
        one's timeline (pass ``child.epoch - self.epoch``).
        """
        for event in events:
            merged = dict(event)
            if offset and isinstance(merged.get("t"), (int, float)):
                merged["t"] = round(merged["t"] + offset, 6)
            merged.update(extra)
            with self._lock:
                self.events.append(merged)
            if self._sink is not None:
                self._sink(merged)

    def events_named(self, name: str) -> List[dict]:
        with self._lock:
            return [event for event in self.events if event.get("event") == name]

    # -- counters ----------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    @contextmanager
    def timer(self, name: str, **fields):
        """Time a block; emits ``<name>`` with ``seconds`` and accumulates
        ``<name>.seconds`` as a counter."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.count(f"{name}.seconds", elapsed)
            self.emit(name, seconds=round(elapsed, 6), **fields)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self.counters)

    # -- metrics registry --------------------------------------------------

    @property
    def metrics(self):
        """This telemetry's :class:`~repro.obs.metrics.MetricsRegistry`.

        Created lazily on first use; the no-op telemetry returns the null
        registry, so instrumented code pays only an attribute lookup when
        observability is disabled.
        """
        if self._metrics is None:
            from ..obs.metrics import NULL_REGISTRY, MetricsRegistry

            self._metrics = MetricsRegistry(self) if self.enabled else NULL_REGISTRY
        return self._metrics


class _NullTelemetry(Telemetry):
    """Discards everything; the default active telemetry."""

    enabled = False

    def emit(self, event_name: str, **fields) -> dict:  # pragma: no cover - trivial
        return {}

    def ingest(self, events, offset: float = 0.0, **extra) -> None:
        pass

    def count(self, name: str, amount: float = 1) -> None:
        pass


NULL = _NullTelemetry()


class JsonlSink:
    """Write events to a JSONL file, one object per line.

    One sink = one trace: opening truncates any previous file at the path,
    so a trace always holds a single run with one ``trace.meta`` stamp and
    one rooted span tree (appending across runs would trip the
    ``span.multiple-roots`` check and double every stats counter).

    Writes are buffered: lines accumulate in memory and hit the disk every
    ``flush_every`` events, on :meth:`flush`, and on :meth:`close` — one
    ``write`` syscall per batch instead of one per event.  ``flush_every``
    defaults to the ``REPRO_TRACE_FLUSH_EVERY`` environment variable (64
    when unset), and a wall-clock deadline (``flush_seconds``, default 1 s)
    bounds how stale the file can be regardless of batch fill: a slow event
    stream — one ``sa.step`` per temperature tier during a long anneal —
    still reaches a ``tail -f`` within a second of the *next* event instead
    of lagging up to 63 events behind.  The deadline is checked on event
    arrival (no timer thread); a sink that stops receiving events entirely
    flushes on :meth:`flush`/:meth:`close` as before.  The underlying
    file opens lazily on the first flush; ``close()`` is idempotent and a
    finalizer flushes any tail events should an exception path skip it.
    """

    def __init__(self, path, flush_every: Optional[int] = None,
                 flush_seconds: float = 1.0) -> None:
        self.path = path
        if flush_every is None:
            try:
                flush_every = int(os.environ.get("REPRO_TRACE_FLUSH_EVERY", 64))
            except ValueError:
                flush_every = 64
        self.flush_every = max(1, int(flush_every))
        self.flush_seconds = float(flush_seconds)
        self._lock = threading.Lock()
        self._buffer: List[str] = []
        self._handle = None
        self._closed = False
        self._last_flush = time.monotonic()
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)

    def __call__(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._closed:
                raise ValueError(f"JsonlSink({self.path}) is closed")
            self._buffer.append(line)
            if len(self._buffer) >= self.flush_every or (
                self.flush_seconds > 0
                and time.monotonic() - self._last_flush >= self.flush_seconds
            ):
                self._flush_locked()

    def _flush_locked(self) -> None:
        self._last_flush = time.monotonic()
        if not self._buffer:
            return
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write("".join(line + "\n" for line in self._buffer))
        self._handle.flush()
        self._buffer.clear()

    def flush(self) -> None:
        """Write any buffered events to disk now."""
        with self._lock:
            if not self._closed:
                self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            try:
                self._flush_locked()
            finally:
                self._closed = True
                if self._handle is not None and not self._handle.closed:
                    self._handle.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass


# Context-local, not a process global: the serving daemon runs engines on
# background threads concurrently, and a shared global would let their
# scoped set/restore pairs interleave — thread A restoring while thread B
# is active leaves B's telemetry installed forever.  A ContextVar isolates
# each thread (and each asyncio task) completely.
_active: ContextVar[Telemetry] = ContextVar("repro_telemetry", default=NULL)


def get_telemetry() -> Telemetry:
    """The currently active telemetry (a no-op unless one was installed)."""
    return _active.get()


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install *telemetry* as the active object; returns the previous one.

    Context-local: the installation is visible in the current thread (and
    anything that inherits its context, e.g. ``asyncio.to_thread``), not
    in threads started beforehand.
    """
    previous = _active.get()
    _active.set(telemetry if telemetry is not None else NULL)
    return previous


@contextmanager
def using_telemetry(telemetry: Optional[Telemetry]):
    """Scope *telemetry* as the active object for a ``with`` block."""
    token = _active.set(telemetry if telemetry is not None else NULL)
    try:
        yield telemetry
    finally:
        _active.reset(token)
