"""Telemetry: counters, timers and a JSONL event sink.

The engine, the SA annealer and the experiment flow all talk to one
:class:`Telemetry` object.  Events are plain dicts; a sink (usually
:class:`JsonlSink`) receives each event as it is emitted, and the object
also keeps an in-memory buffer plus monotonic counters so tests and the
CLI summary can interrogate a run without parsing the trace file.

A module-level *active* telemetry makes instrumentation non-invasive:
deep code (the annealer's temperature loop) calls ``get_telemetry()``,
which returns a no-op singleton unless a caller installed a real one via
``using_telemetry(...)``.  Worker processes collect events locally and the
engine re-emits them in the parent, so a trace file is always written from
a single process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional


class Telemetry:
    """Event buffer + counters, optionally forwarding to a sink."""

    enabled = True

    def __init__(self, sink: Optional[Callable[[dict], None]] = None) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self.events: List[dict] = []
        self.counters: Dict[str, float] = {}

    # -- events ------------------------------------------------------------

    def emit(self, name: str, **fields) -> dict:
        """Record one event; ``t`` is seconds since this object's creation."""
        event = {"event": name, "t": round(time.perf_counter() - self._start, 6)}
        event.update(fields)
        with self._lock:
            self.events.append(event)
        if self._sink is not None:
            self._sink(event)
        return event

    def ingest(self, events: Iterable[dict], **extra) -> None:
        """Re-emit events collected elsewhere (e.g. in a worker process)."""
        for event in events:
            merged = dict(event)
            merged.update(extra)
            with self._lock:
                self.events.append(merged)
            if self._sink is not None:
                self._sink(merged)

    def events_named(self, name: str) -> List[dict]:
        with self._lock:
            return [event for event in self.events if event.get("event") == name]

    # -- counters ----------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    @contextmanager
    def timer(self, name: str, **fields):
        """Time a block; emits ``<name>`` with ``seconds`` and accumulates
        ``<name>.seconds`` as a counter."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.count(f"{name}.seconds", elapsed)
            self.emit(name, seconds=round(elapsed, 6), **fields)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self.counters)


class _NullTelemetry(Telemetry):
    """Discards everything; the default active telemetry."""

    enabled = False

    def emit(self, name: str, **fields) -> dict:  # pragma: no cover - trivial
        return {}

    def ingest(self, events, **extra) -> None:
        pass

    def count(self, name: str, amount: float = 1) -> None:
        pass


NULL = _NullTelemetry()


class JsonlSink:
    """Append events to a JSONL file, one object per line."""

    def __init__(self, path) -> None:
        self.path = path
        self._lock = threading.Lock()
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def __call__(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_active = NULL
_active_lock = threading.Lock()


def get_telemetry() -> Telemetry:
    """The currently active telemetry (a no-op unless one was installed)."""
    return _active


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install *telemetry* as the active object; returns the previous one."""
    global _active
    with _active_lock:
        previous = _active
        _active = telemetry if telemetry is not None else NULL
    return previous


@contextmanager
def using_telemetry(telemetry: Optional[Telemetry]):
    """Scope *telemetry* as the active object for a ``with`` block."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
