"""Physical wire-spacing analysis of routed quadrants.

The congestion model counts wires per via-candidate gap; this module closes
the loop to physics: it measures the realized centre-to-centre spacing
between adjacent wires on every horizontal line of a routed quadrant, so
the wire-capacity design rule of :mod:`repro.package.validate` can be
checked against actual geometry instead of counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .monotonic import RoutingResult


@dataclass(frozen=True)
class SpacingReport:
    """Minimum adjacent-wire spacing per horizontal line."""

    per_line: Dict[int, float]
    min_spacing: Optional[float]
    tightest_line: Optional[int]

    def violations(self, min_pitch: float) -> List[Tuple[int, float]]:
        """Lines whose tightest spacing is below *min_pitch*."""
        return [
            (line, spacing)
            for line, spacing in sorted(self.per_line.items())
            if spacing < min_pitch
        ]

    def is_clean(self, min_pitch: float) -> bool:
        """True when every line respects *min_pitch*."""
        return not self.violations(min_pitch)


def measure_spacing(result: RoutingResult, quadrant) -> SpacingReport:
    """Measure realized wire spacing on every bump-row line of a quadrant."""
    per_line: Dict[int, float] = {}
    for row in range(2, quadrant.row_count + 1):
        line_y = quadrant.bumps.row_y(row)
        xs: List[float] = []
        for routed in result.nets.values():
            # crossing waypoints carry the exact line y; vias sit below it
            for point in routed.layer1_points[1:-1]:
                if point.y == line_y:
                    xs.append(point.x)
                    break
            else:
                if routed.via.y == line_y:
                    xs.append(routed.via.x)
        # terminating vias on this line also occupy the line
        for routed in result.nets.values():
            ball_row = quadrant.ball_row(routed.net_id)
            if ball_row == row:
                xs.append(routed.via.x)
        xs.sort()
        if len(xs) >= 2:
            per_line[row] = min(b - a for a, b in zip(xs, xs[1:]))
    if per_line:
        tightest_line = min(per_line, key=per_line.get)
        return SpacingReport(
            per_line=per_line,
            min_spacing=per_line[tightest_line],
            tightest_line=tightest_line,
        )
    return SpacingReport(per_line={}, min_spacing=None, tightest_line=None)
