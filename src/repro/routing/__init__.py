"""Monotonic BGA routing, congestion estimation and wirelength metrics."""

from .density import (
    DensityMap,
    MonotonicDensityEstimator,
    RunDensity,
    density_map,
    max_density,
    max_density_of_design,
    run_partition,
)
from .monotonic import MonotonicRouter, RoutingResult, route_design
from .paths import RoutedNet
from .report import (
    NetReportRow,
    render_routing_report,
    routing_report,
    write_routing_csv,
)
from .spacing import SpacingReport, measure_spacing
from .via_opt import (
    GeneralizedDensity,
    ViaAssignment,
    ViaOptimizationResult,
    ViaOptimizer,
)
from .via_planner import Via, plan_vias, verify_via_order, via_capacity_check
from .wirelength import (
    net_flyline_length,
    total_flyline_length,
    total_flyline_length_of_design,
    wirelength_by_row,
)

__all__ = [
    "DensityMap",
    "MonotonicDensityEstimator",
    "MonotonicRouter",
    "RoutedNet",
    "RoutingResult",
    "RunDensity",
    "NetReportRow",
    "SpacingReport",
    "render_routing_report",
    "routing_report",
    "write_routing_csv",
    "measure_spacing",
    "Via",
    "ViaAssignment",
    "ViaOptimizationResult",
    "ViaOptimizer",
    "GeneralizedDensity",
    "density_map",
    "max_density",
    "max_density_of_design",
    "net_flyline_length",
    "plan_vias",
    "route_design",
    "run_partition",
    "total_flyline_length",
    "total_flyline_length_of_design",
    "verify_via_order",
    "via_capacity_check",
    "wirelength_by_row",
]
