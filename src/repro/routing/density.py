"""Pre-route congestion estimation (paper sections 2.3 and 3.2).

This is the paper's second contribution: "an efficient estimation to obtain
the wire congestion map before routing ... it can directly find the most
congested region" — no full-substrate analysis required.

Model
-----
Under monotonic routing the left-to-right order of wires on every horizontal
grid line equals the finger order, and each net's via is pinned to the
bottom-left corner of its bump ball.  On the line of bump row ``y``:

* the row's own nets terminate at via candidates ``0 .. m-1`` (left gaps of
  their balls); candidate ``m`` (right of the last ball) stays free;
* every net whose ball lies in a *lower* row crosses the line somewhere, and
  the finger order pins it between two terminating vias (or beyond the
  outermost ones);
* wires pinned between the same pair of adjacent vias form a *run*; the
  router can only spread a run over the via-candidate gaps inside it, so the
  run's best achievable density is ``ceil(wires / intervals)``.

Every interior run and the leftmost run contain exactly one interval; the
rightmost run contains two (the free candidate ``m`` splits it).  The maximum
over all runs of all lines is the package's maximum density — the quantity
Table 2 reports.  On the paper's 12-net example this model reproduces the
published densities exactly (4 for the random order, 2 for IFA and DFA).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..assign import Assignment, check_legal


@dataclass(frozen=True)
class RunDensity:
    """Congestion of one run on one horizontal line."""

    row: int
    run_index: int
    wire_count: int
    interval_count: int

    @property
    def density(self) -> int:
        """Best achievable wires-per-gap for this run."""
        if self.wire_count == 0:
            return 0
        return math.ceil(self.wire_count / self.interval_count)


@dataclass
class DensityMap:
    """Full congestion map of one quadrant under one assignment."""

    runs: List[RunDensity] = field(default_factory=list)

    @property
    def max_density(self) -> int:
        """The paper's "maximum density" metric (Table 2)."""
        if not self.runs:
            return 0
        return max(run.density for run in self.runs)

    @property
    def total_crossings(self) -> int:
        """Total wire-line crossings — a smoothness indicator."""
        return sum(run.wire_count for run in self.runs)

    def hotspots(self) -> List[RunDensity]:
        """The run(s) achieving the maximum density (the congested region)."""
        peak = self.max_density
        return [run for run in self.runs if run.density == peak]

    def line_densities(self) -> Dict[int, int]:
        """Maximum density per horizontal line ``{row: density}``."""
        per_line: Dict[int, int] = {}
        for run in self.runs:
            per_line[run.row] = max(per_line.get(run.row, 0), run.density)
        return per_line


def run_partition(
    assignment: Assignment, row: int
) -> List[Tuple[int, int]]:
    """Partition the wires crossing line *row* into runs.

    Returns ``[(wire_count, interval_count), ...]`` left to right:
    one leftmost run, ``m - 1`` interior runs, one rightmost run
    (``m`` = ball count of the row).
    """
    quadrant = assignment.quadrant
    via_nets = quadrant.row_nets(row)
    via_slots = [assignment.slot_of(net) for net in via_nets]
    passing_slots = sorted(
        assignment.slot_of(net.id)
        for net in quadrant.netlist
        if quadrant.ball_row(net.id) < row
    )
    runs: List[Tuple[int, int]] = []
    remaining = passing_slots
    for via_slot in via_slots:
        inside = [slot for slot in remaining if slot < via_slot]
        remaining = [slot for slot in remaining if slot > via_slot]
        runs.append((len(inside), 1))
    # Rightmost run: the free via candidate splits it into two intervals.
    runs.append((len(remaining), 2))
    return runs


def density_map(assignment: Assignment, validate: bool = True) -> DensityMap:
    """Compute the pre-route congestion map of a quadrant assignment."""
    if validate:
        check_legal(assignment)
    quadrant = assignment.quadrant
    result = DensityMap()
    for row in range(2, quadrant.row_count + 1):
        for run_index, (wires, intervals) in enumerate(
            run_partition(assignment, row)
        ):
            result.runs.append(
                RunDensity(
                    row=row,
                    run_index=run_index,
                    wire_count=wires,
                    interval_count=intervals,
                )
            )
    return result


def max_density(
    assignment: Assignment, validate: bool = True, backend: str = "auto"
) -> int:
    """Shortcut: the maximum package density of an assignment.

    ``backend`` follows the staged convention (``auto``/``object``/
    ``array``); the array path accumulates the identical run/interval
    structure on flat int arrays (:mod:`repro.kernels.density`) and is
    value-identical — densities are integer counts.
    """
    from ..kernels import resolve_stage_backend

    if resolve_stage_backend(backend, assignment.slot_count) == "array":
        if validate:
            check_legal(assignment)
        from ..kernels import max_density_of_order

        return max_density_of_order(assignment.quadrant, assignment.order)
    return density_map(assignment, validate=validate).max_density


def max_density_of_design(assignments: Dict, backend: str = "auto") -> int:
    """Maximum density across every quadrant of a design.

    ``assignments`` maps sides to :class:`Assignment` objects, as produced
    by :func:`repro.assign.assign_design`.
    """
    return max(
        max_density(assignment, backend=backend)
        for assignment in assignments.values()
    )


class MonotonicDensityEstimator:
    """The paper's pre-route congestion model as a swappable staged stage.

    Satisfies the :class:`repro.api.DensityEstimator` protocol; alternative
    routers (e.g. a staircase/early-routability model) can provide their
    own estimator with the same surface.
    """

    name = "monotonic"

    def __init__(self, backend: str = "auto", validate: bool = True) -> None:
        self.backend = backend
        self.validate = validate

    def density_map(self, assignment: Assignment) -> DensityMap:
        """Full per-run congestion map (always the object representation)."""
        return density_map(assignment, validate=self.validate)

    def max_density(self, assignment: Assignment) -> int:
        return max_density(
            assignment, validate=self.validate, backend=self.backend
        )

    def max_density_of_design(self, assignments: Dict) -> int:
        return max(
            self.max_density(assignment) for assignment in assignments.values()
        )
