"""Routed-net geometry containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..geometry import Point, Segment


@dataclass
class RoutedNet:
    """The realized two-layer route of one net.

    ``layer1_points`` runs from the finger down to the via (inclusive);
    the layer-2 portion is the single hop from the via to the bump ball.
    """

    net_id: int
    finger: Point
    via: Point
    ball: Point
    layer1_points: List[Point] = field(default_factory=list)

    @property
    def layer1_segments(self) -> List[Segment]:
        """Wire pieces on layer 1 (finger to via)."""
        return [
            Segment(a, b)
            for a, b in zip(self.layer1_points, self.layer1_points[1:])
        ]

    @property
    def layer2_segment(self) -> Segment:
        """The single layer-2 hop from the via to the ball."""
        return Segment(self.via, self.ball)

    @property
    def routed_length(self) -> float:
        """Total realized wire length over both layers."""
        return (
            sum(segment.length for segment in self.layer1_segments)
            + self.layer2_segment.length
        )

    @property
    def flyline_length(self) -> float:
        """The paper's Table-2 metric: direct flylines finger->via->ball."""
        return self.finger.euclidean(self.via) + self.via.euclidean(self.ball)

    def is_monotonic(self) -> bool:
        """True when the layer-1 path never travels upwards.

        This is the monotonic property: every horizontal grid line is crossed
        at most once, so no detours occur.
        """
        ys = [point.y for point in self.layer1_points]
        return all(a >= b for a, b in zip(ys, ys[1:]))

    def crossing_x_at(self, y: float) -> float:
        """X coordinate where the layer-1 path crosses height *y*."""
        from ..errors import RoutingError

        for segment in self.layer1_segments:
            x = segment.x_at_y(y)
            if x is not None:
                return x
        raise RoutingError(f"net {self.net_id} does not cross y={y}")
