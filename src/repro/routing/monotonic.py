"""Monotonic two-layer BGA router in the style of Kubo-Takahashi [10].

The paper does not route packages itself — it adopts [10]'s monotonic
routing principle "to plan the via location and the routing path" and uses
the resulting congestion to score assignments.  This module realizes that
router for our package model:

* every net drops from its finger, crosses each horizontal grid line at most
  once (no detours), reaches its via (pinned at its ball's bottom-left
  corner) and hops to the ball on layer 2;
* on every line, the left-to-right wire order equals the finger order
  (planarity within the quadrant), so crossings never intersect on layer 1;
* wires pinned between the same pair of terminating vias (a *run*) are
  spread round-robin over the via-candidate gaps available to the run, which
  achieves the congestion lower bound of :mod:`repro.routing.density`.

The router raises :class:`~repro.errors.RoutingError` on assignments that
violate the monotonic rule — "the assignment result can certainly lead to a
legal routing solution" only holds for legal orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..assign import Assignment, is_legal
from ..errors import RoutingError
from ..geometry import Point
from .density import DensityMap, RunDensity, density_map
from .paths import RoutedNet
from .via_planner import plan_vias, verify_via_order, via_capacity_check


@dataclass
class RoutingResult:
    """Everything the router produces for one quadrant."""

    nets: Dict[int, RoutedNet] = field(default_factory=dict)
    density: DensityMap = field(default_factory=DensityMap)

    @property
    def max_density(self) -> int:
        return self.density.max_density

    @property
    def total_flyline_length(self) -> float:
        """Table 2's wirelength metric, summed over all nets."""
        return sum(net.flyline_length for net in self.nets.values())

    @property
    def total_routed_length(self) -> float:
        """Realized polyline wirelength, summed over all nets."""
        return sum(net.routed_length for net in self.nets.values())


class MonotonicRouter:
    """Order-preserving, detour-free router for one quadrant."""

    def route(self, assignment: Assignment) -> RoutingResult:
        """Route every net of *assignment*; raises on illegal orders."""
        if not is_legal(assignment):
            raise RoutingError(
                "assignment violates the monotonic rule; no monotonic "
                "routing exists"
            )
        quadrant = assignment.quadrant
        vias = plan_vias(assignment)
        via_capacity_check(assignment)
        verify_via_order(assignment, vias)

        bumps = quadrant.bumps
        left_bound, right_bound = self._bounds(assignment)

        # crossings[net_id] collects (y, x) waypoints, top line first.
        crossings: Dict[int, List[Point]] = {net.id: [] for net in quadrant.netlist}

        for row in range(bumps.row_count, 1, -1):
            candidates = bumps.via_candidate_xs(row)
            via_nets = quadrant.row_nets(row)
            via_slots = [assignment.slot_of(net) for net in via_nets]
            passing = sorted(
                (
                    (assignment.slot_of(net.id), net.id)
                    for net in quadrant.netlist
                    if quadrant.ball_row(net.id) < row
                ),
            )
            line_y = bumps.row_y(row)
            self._place_line(
                crossings,
                passing,
                via_slots,
                candidates,
                line_y,
                left_bound,
                right_bound,
            )

        result = RoutingResult(density=density_map(assignment, validate=False))
        for net in quadrant.netlist:
            finger = assignment.finger_position(net.id)
            via = vias[net.id].position
            ball = bumps.ball_position(net.id)
            waypoints = [finger] + crossings[net.id] + [via]
            routed = RoutedNet(
                net_id=net.id,
                finger=finger,
                via=via,
                ball=ball,
                layer1_points=waypoints,
            )
            if not routed.is_monotonic():
                raise RoutingError(f"router produced a detour for net {net.id}")
            result.nets[net.id] = routed
        self._verify_order_preserved(result, assignment)
        return result

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _bounds(assignment: Assignment) -> tuple:
        quadrant = assignment.quadrant
        pitch = quadrant.bumps.pitch
        widest = max(
            quadrant.bumps.row_size(row) for row in range(1, quadrant.row_count + 1)
        )
        half_span = max(
            (widest + 1) / 2.0 * pitch, quadrant.fingers.extent / 2.0
        )
        return (-half_span - pitch, half_span + pitch)

    @staticmethod
    def _place_line(
        crossings: Dict[int, List[Point]],
        passing: List[tuple],
        via_slots: List[int],
        candidates: List[float],
        line_y: float,
        left_bound: float,
        right_bound: float,
    ) -> None:
        """Assign a crossing x to every passing wire on one line.

        Wires in each run are distributed round-robin over the run's
        intervals (matching the density model's ``ceil(w / k)`` bound) and
        spaced evenly inside each interval, preserving finger order.
        """
        m = len(via_slots)
        # Runs and their interval boundaries.  Interior runs and the leftmost
        # run own one interval; the rightmost run owns two, split by the free
        # candidate (index m).
        run_intervals: List[List[tuple]] = []
        run_intervals.append([(left_bound, candidates[0])])
        for j in range(1, m):
            run_intervals.append([(candidates[j - 1], candidates[j])])
        run_intervals.append(
            [(candidates[m - 1], candidates[m]), (candidates[m], right_bound)]
        )

        # Partition passing wires by via slots.
        remaining = list(passing)
        runs: List[List[tuple]] = []
        for via_slot in via_slots:
            inside = [item for item in remaining if item[0] < via_slot]
            remaining = [item for item in remaining if item[0] > via_slot]
            runs.append(inside)
        runs.append(remaining)

        for wires, intervals in zip(runs, run_intervals):
            if not wires:
                continue
            k = len(intervals)
            w = len(wires)
            buckets: List[List[tuple]] = [[] for __ in range(k)]
            for index, wire in enumerate(wires):
                buckets[index * k // w].append(wire)
            for bucket, (x_lo, x_hi) in zip(buckets, intervals):
                count = len(bucket)
                for position, (__, net_id) in enumerate(bucket, start=1):
                    x = x_lo + (x_hi - x_lo) * position / (count + 1)
                    crossings[net_id].append(Point(x, line_y))

    @staticmethod
    def _verify_order_preserved(result: RoutingResult, assignment: Assignment) -> None:
        """Planarity audit: crossing order on every line == finger order."""
        quadrant = assignment.quadrant
        for row in range(quadrant.row_count, 1, -1):
            line_y = quadrant.bumps.row_y(row)
            on_line = []
            for net in quadrant.netlist:
                if quadrant.ball_row(net.id) < row:
                    routed = result.nets[net.id]
                    for point in routed.layer1_points[1:-1]:
                        if point.y == line_y:
                            on_line.append(
                                (point.x, assignment.slot_of(net.id))
                            )
                            break
            on_line.sort()
            slots = [slot for __, slot in on_line]
            if slots != sorted(slots):
                raise RoutingError(
                    f"wire order on row {row} line disagrees with finger order"
                )


def route_design(assignments: Dict) -> Dict:
    """Route every quadrant of a design: ``{side: RoutingResult}``."""
    router = MonotonicRouter()
    return {side: router.route(assignment) for side, assignment in assignments.items()}
