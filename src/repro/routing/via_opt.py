"""Via-location optimization by iterative improvement (after [10]).

The paper pins every via at its ball's bottom-left candidate "without the
loss of generality" and cites Kubo-Takahashi [10] for the general case:
vias may occupy *any* candidate site on their ball's line, and a global
router improves congestion by re-assigning them iteratively.  This module
implements that generalization on our model:

* on line ``y`` (with ``m`` balls, hence ``m + 1`` candidate sites
  ``0..m``), the row's nets occupy distinct candidates whose order matches
  the finger order (the monotonic via rule);
* layer-1 congestion generalizes the fixed-via model: a run between two
  used candidates ``c_i < c_j`` owns ``c_j - c_i`` intervals, the leftmost
  run owns ``c_first + 1`` and the rightmost ``m - c_last + 1``;
* moving a via away from its ball costs layer-2 track: the hop from
  candidate ``c`` to ball ``j`` covers the gaps between them, and gaps
  shared by several hops congest layer 2.

The optimizer starts from the paper's bottom-left assignment and greedily
relocates the vias bounding the worst run until no single move helps.  The
fixed-via behaviour is the exact special case ``via[j] = j - 1``, which the
tests pin against :func:`repro.routing.density.density_map`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..assign import Assignment, check_legal
from ..errors import RoutingError


@dataclass
class GeneralizedDensity:
    """Layer-1 and layer-2 congestion under a via assignment."""

    layer1_runs: List[Tuple[int, int, int, int]] = field(default_factory=list)
    #: (row, gap_index) -> layer-2 hop count
    layer2_gaps: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def max_layer1(self) -> int:
        best = 0
        for __, __, wires, intervals in self.layer1_runs:
            if wires:
                best = max(best, math.ceil(wires / intervals))
        return best

    @property
    def max_layer2(self) -> int:
        return max(self.layer2_gaps.values(), default=0)

    @property
    def max_density(self) -> int:
        """The routing-limited congestion: worst of both layers."""
        return max(self.max_layer1, self.max_layer2)

    def score(self) -> Tuple[int, int, int]:
        """Lexicographic objective for the optimizer.

        ``(max density, number of runs/gaps at the max, total overflow)`` —
        the refinement lets the greedy pass accept sideways moves that
        relieve one hotspot without creating a worse one, which is what
        enables multi-via chains.
        """
        peak = self.max_density
        at_peak = 0
        overflow = 0
        for __, __, wires, intervals in self.layer1_runs:
            if not wires:
                continue
            density = math.ceil(wires / intervals)
            overflow += max(0, density - 1)
            if density == peak:
                at_peak += 1
        for count in self.layer2_gaps.values():
            overflow += max(0, count - 1)
            if count == peak:
                at_peak += 1
        return (peak, at_peak, overflow)


class ViaAssignment:
    """Candidate index per net, organized per bump row."""

    def __init__(self, assignment: Assignment) -> None:
        check_legal(assignment)
        self.assignment = assignment
        quadrant = assignment.quadrant
        # bottom-left initialization: ball j -> candidate j-1
        self.candidates: Dict[int, List[int]] = {
            row: list(range(len(quadrant.row_nets(row))))
            for row in range(1, quadrant.row_count + 1)
        }

    def candidate_of(self, net_id: int) -> int:
        quadrant = self.assignment.quadrant
        ball = quadrant.bumps.ball_of(net_id)
        return self.candidates[ball.row][ball.col - 1]

    def validate(self) -> None:
        """Check via order and per-candidate capacity on every line."""
        quadrant = self.assignment.quadrant
        for row, used in self.candidates.items():
            m = quadrant.bumps.row_size(row)
            if len(set(used)) != len(used):
                raise RoutingError(f"row {row}: two vias share a candidate")
            if any(not (0 <= c <= m) for c in used):
                raise RoutingError(f"row {row}: candidate index out of range")
            if used != sorted(used):
                raise RoutingError(
                    f"row {row}: via order disagrees with the ball order"
                )

    # -- congestion under this via assignment ------------------------------------

    def density(self) -> GeneralizedDensity:
        assignment = self.assignment
        quadrant = assignment.quadrant
        result = GeneralizedDensity()
        for row in range(1, quadrant.row_count + 1):
            used = self.candidates[row]
            m = quadrant.bumps.row_size(row)
            # layer 2: hop from candidate c to ball j covers the gaps
            # strictly between them; ball j sits between candidates j-1, j
            for ball_index, candidate in enumerate(used):
                j = ball_index + 1
                lo, hi = sorted((candidate, j - 1))
                for gap in range(lo, hi):
                    key = (row, gap)
                    result.layer2_gaps[key] = result.layer2_gaps.get(key, 0) + 1
            if row == 1:
                continue
            # layer 1 on this line (passing wires come from lower rows)
            via_slots = [
                assignment.slot_of(net_id) for net_id in quadrant.row_nets(row)
            ]
            passing = sorted(
                assignment.slot_of(net.id)
                for net in quadrant.netlist
                if quadrant.ball_row(net.id) < row
            )
            remaining = passing
            for index, via_slot in enumerate(via_slots):
                inside = [slot for slot in remaining if slot < via_slot]
                remaining = [slot for slot in remaining if slot > via_slot]
                if index == 0:
                    intervals = used[0] + 1
                else:
                    intervals = used[index] - used[index - 1]
                result.layer1_runs.append((row, index, len(inside), intervals))
            result.layer1_runs.append(
                (row, len(via_slots), len(remaining), m - used[-1] + 1)
            )
        return result


@dataclass
class ViaOptimizationResult:
    """Outcome of the iterative via improvement."""

    vias: ViaAssignment
    density_before: int
    density_after: int
    moves: int

    @property
    def improvement(self) -> int:
        return self.density_before - self.density_after


class ViaOptimizer:
    """Greedy iterative via relocation, in the spirit of [10]."""

    def __init__(self, max_passes: int = 20) -> None:
        if max_passes < 1:
            raise RoutingError("max_passes must be >= 1")
        self.max_passes = max_passes

    def optimize(self, assignment: Assignment) -> ViaOptimizationResult:
        vias = ViaAssignment(assignment)
        vias.validate()
        before = vias.density().max_density
        current_score = vias.density().score()
        moves = 0
        quadrant = assignment.quadrant

        for __ in range(self.max_passes):
            improved = False
            for row in range(1, quadrant.row_count + 1):
                used = vias.candidates[row]
                m = quadrant.bumps.row_size(row)
                for index in range(len(used)):
                    for step in (-1, 1):
                        target = used[index] + step
                        if not (0 <= target <= m):
                            continue
                        # keep strict order and capacity
                        if index > 0 and target <= used[index - 1]:
                            continue
                        if index < len(used) - 1 and target >= used[index + 1]:
                            continue
                        used[index] = target
                        candidate_score = vias.density().score()
                        if candidate_score < current_score:
                            current_score = candidate_score
                            moves += 1
                            improved = True
                        else:
                            used[index] = target - step
            if not improved:
                break

        vias.validate()
        return ViaOptimizationResult(
            vias=vias,
            density_before=before,
            density_after=current_score[0],
            moves=moves,
        )
