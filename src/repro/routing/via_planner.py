"""Via planning (paper section 2.1 and [10]).

Each net uses at most one via, fixed at the bottom-left corner of its bump
ball; at most one via sits between four adjacent bump balls.  Both properties
hold by construction in this planner, and the planner verifies the monotonic
via-order rule: on every horizontal line, the via order must equal the
finger order of the connected nets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..assign import Assignment
from ..errors import RoutingError
from ..geometry import Point


@dataclass(frozen=True)
class Via:
    """A planned layer-1-to-layer-2 via for one net."""

    net_id: int
    position: Point
    row: int
    candidate_index: int


def plan_vias(assignment: Assignment) -> Dict[int, Via]:
    """Plan one via per net at its ball's bottom-left candidate site."""
    quadrant = assignment.quadrant
    vias: Dict[int, Via] = {}
    for net in quadrant.netlist:
        ball = quadrant.bumps.ball_of(net.id)
        vias[net.id] = Via(
            net_id=net.id,
            position=quadrant.bumps.via_position(net.id),
            row=ball.row,
            candidate_index=ball.col - 1,
        )
    return vias


def verify_via_order(assignment: Assignment, vias: Dict[int, Via]) -> None:
    """Check the monotonic via-order rule of [10].

    For two vias on the same horizontal line, the one at the smaller x must
    belong to the net on the smaller finger: "if V_b1,x < V_b2,x and
    V_b1,y = V_b2,y, a1 is certainly smaller than a2".
    """
    per_row: Dict[int, List[Via]] = {}
    for via in vias.values():
        per_row.setdefault(via.row, []).append(via)
    for row, row_vias in per_row.items():
        row_vias.sort(key=lambda via: via.position.x)
        slots = [assignment.slot_of(via.net_id) for via in row_vias]
        if slots != sorted(slots):
            raise RoutingError(
                f"via order on row {row} disagrees with the finger order: "
                f"slots {slots}"
            )


def via_capacity_check(assignment: Assignment) -> None:
    """Ensure no two nets share a via candidate site (<= 1 via per site)."""
    quadrant = assignment.quadrant
    used = set()
    for net in quadrant.netlist:
        ball = quadrant.bumps.ball_of(net.id)
        key = (ball.row, ball.col - 1)
        if key in used:
            raise RoutingError(f"via candidate {key} used twice")
        used.add(key)
