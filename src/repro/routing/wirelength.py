"""Wirelength metrics (Table 2's second half).

The paper computes wirelengths "from the direct flylines between pads/vias":
a net's length is the straight-line finger-to-via distance plus the short
layer-2 hop from the via to its ball.  The routed polyline length is also
exposed for richer comparisons (it upper-bounds the flyline length).
"""

from __future__ import annotations

from typing import Dict

from ..assign import Assignment


def net_flyline_length(assignment: Assignment, net_id: int) -> float:
    """Direct flyline length of one net: finger -> via -> ball."""
    quadrant = assignment.quadrant
    finger = assignment.finger_position(net_id)
    via = quadrant.bumps.via_position(net_id)
    ball = quadrant.bumps.ball_position(net_id)
    return finger.euclidean(via) + via.euclidean(ball)


def total_flyline_length(assignment: Assignment) -> float:
    """Total flyline wirelength of a quadrant assignment (Table 2 metric)."""
    return sum(
        net_flyline_length(assignment, net.id)
        for net in assignment.quadrant.netlist
    )


def total_flyline_length_of_design(assignments: Dict) -> float:
    """Total flyline wirelength across every quadrant of a design."""
    return sum(
        total_flyline_length(assignment) for assignment in assignments.values()
    )


def wirelength_by_row(assignment: Assignment) -> Dict[int, float]:
    """Flyline wirelength aggregated per bump row ``{row: length}``."""
    quadrant = assignment.quadrant
    per_row: Dict[int, float] = {}
    for net in quadrant.netlist:
        row = quadrant.ball_row(net.id)
        per_row[row] = per_row.get(row, 0.0) + net_flyline_length(
            assignment, net.id
        )
    return per_row
