"""Per-net routing reports (tabular and CSV).

After routing, users want the classic router output: one row per net with
its endpoints, via site, lengths and congestion context.  This module
renders that table and exports it as CSV for downstream tooling.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from ..assign import Assignment
from .monotonic import RoutingResult


@dataclass(frozen=True)
class NetReportRow:
    """One net's routing facts."""

    net_id: int
    net_name: str
    net_type: str
    finger_slot: int
    ball_col: int
    ball_row: int
    flyline_length: float
    routed_length: float

    @property
    def detour_ratio(self) -> float:
        """Routed length over the flyline lower bound (1.0 = straight)."""
        if self.flyline_length <= 0:
            return 1.0
        return self.routed_length / self.flyline_length


def routing_report(assignment: Assignment, result: RoutingResult) -> List[NetReportRow]:
    """Per-net rows, ordered by finger slot (left to right)."""
    quadrant = assignment.quadrant
    rows = []
    for net_id in assignment.order:
        net = quadrant.net(net_id)
        ball = quadrant.bumps.ball_of(net_id)
        routed = result.nets[net_id]
        rows.append(
            NetReportRow(
                net_id=net_id,
                net_name=net.name,
                net_type=net.net_type.value,
                finger_slot=assignment.slot_of(net_id),
                ball_col=ball.col,
                ball_row=ball.row,
                flyline_length=routed.flyline_length,
                routed_length=routed.routed_length,
            )
        )
    return rows


def render_routing_report(
    assignment: Assignment, result: RoutingResult, top: int = 0
) -> str:
    """Human-readable routing table; ``top > 0`` keeps the longest nets."""
    rows = routing_report(assignment, result)
    if top:
        rows = sorted(rows, key=lambda row: row.routed_length, reverse=True)[:top]
    lines = [
        "net        type     finger   ball(col,row)   flyline   routed   detour"
    ]
    for row in rows:
        lines.append(
            f"{row.net_name:<10} {row.net_type:<8} {row.finger_slot:>6}   "
            f"({row.ball_col:>2},{row.ball_row:>2})        "
            f"{row.flyline_length:>7.2f} {row.routed_length:>8.2f} "
            f"{row.detour_ratio:>8.3f}"
        )
    lines.append(
        f"total: flyline {result.total_flyline_length:.2f} um, "
        f"routed {result.total_routed_length:.2f} um, "
        f"max density {result.max_density}"
    )
    return "\n".join(lines)


def write_routing_csv(
    assignment: Assignment,
    result: RoutingResult,
    path: Union[str, Path],
) -> None:
    """Export the per-net report as CSV."""
    rows = routing_report(assignment, result)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "net_id",
                "net_name",
                "net_type",
                "finger_slot",
                "ball_col",
                "ball_row",
                "flyline_length",
                "routed_length",
                "detour_ratio",
            ]
        )
        for row in rows:
            writer.writerow(
                [
                    row.net_id,
                    row.net_name,
                    row.net_type,
                    row.finger_slot,
                    row.ball_col,
                    row.ball_row,
                    f"{row.flyline_length:.6f}",
                    f"{row.routed_length:.6f}",
                    f"{row.detour_ratio:.6f}",
                ]
            )
