"""Physical-unit helpers.

The paper expresses all package dimensions in micrometres (via diameter
0.1 um, bump ball diameter 0.2 um, bump-ball pitches of 1.2-2 um in Table 1)
and IR-drop in millivolts.  Internally the library works in plain floats
understood to be micrometres and volts; these helpers exist so call sites can
make the unit explicit and so reports can format values consistently.
"""

from __future__ import annotations

#: Micrometres per millimetre, for occasional conversions in reports.
UM_PER_MM = 1000.0

#: Volts per millivolt.
V_PER_MV = 1e-3


def um(value: float) -> float:
    """Return *value* interpreted as micrometres (identity, documentation)."""
    return float(value)


def mm(value: float) -> float:
    """Convert millimetres to the library's native micrometres."""
    return float(value) * UM_PER_MM


def mv(value: float) -> float:
    """Convert millivolts to volts."""
    return float(value) * V_PER_MV


def to_mv(volts: float) -> float:
    """Convert volts to millivolts."""
    return float(volts) / V_PER_MV


def fmt_um(value: float, digits: int = 2) -> str:
    """Format a micrometre quantity for reports, e.g. ``'42844.00 um'``."""
    return f"{value:.{digits}f} um"


def fmt_mv(volts: float, digits: int = 1) -> str:
    """Format a voltage (given in volts) as millivolts, e.g. ``'117.4 mV'``."""
    return f"{to_mv(volts):.{digits}f} mV"


def fmt_pct(ratio: float, digits: int = 2) -> str:
    """Format a ratio as a percentage string, e.g. ``0.1061 -> '10.61%'``."""
    return f"{ratio * 100.0:.{digits}f}%"
