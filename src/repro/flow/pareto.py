"""Density / IR-drop trade-off exploration (the Eq.-3 weight sweep).

Eq. 3's weights buy IR-drop with package density; a single weight choice
shows one point of that trade.  This module sweeps the density weight,
collects (density, IR-drop) outcomes and extracts the Pareto-efficient
subset — the curve a designer actually picks from.
"""

from __future__ import annotations

from ..assign import assign_design
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..assign import DFAAssigner
from ..exchange import CostWeights, FingerPadExchanger, SAParams
from ..power import IRDropAnalyzer, PowerGridConfig
from ..routing import max_density_of_design


@dataclass(frozen=True)
class TradeoffPoint:
    """One weight setting's outcome."""

    density_weight: float
    max_density: int
    max_ir_drop: float

    def dominates(self, other: "TradeoffPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        no_worse = (
            self.max_density <= other.max_density
            and self.max_ir_drop <= other.max_ir_drop
        )
        better = (
            self.max_density < other.max_density
            or self.max_ir_drop < other.max_ir_drop
        )
        return no_worse and better


@dataclass
class TradeoffCurve:
    """All sweep outcomes plus the efficient frontier."""

    points: List[TradeoffPoint] = field(default_factory=list)

    def frontier(self) -> List[TradeoffPoint]:
        """Pareto-efficient points, sorted by density."""
        efficient = [
            p
            for p in self.points
            if not any(q.dominates(p) for q in self.points)
        ]
        return sorted(
            efficient, key=lambda p: (p.max_density, p.max_ir_drop)
        )

    def render(self) -> str:
        lines = ["rho (density weight)   max density   max IR-drop (V)   frontier"]
        frontier = set(id(p) for p in self.frontier())
        for point in sorted(self.points, key=lambda p: p.density_weight):
            marker = "*" if id(point) in frontier else ""
            lines.append(
                f"{point.density_weight:>20}   {point.max_density:>11}   "
                f"{point.max_ir_drop:>15.6f}   {marker}"
            )
        return "\n".join(lines)


def sweep_density_weight(
    design,
    weights: Sequence[float] = (0.01, 0.04, 0.08, 0.2, 0.5),
    sa_params: Optional[SAParams] = None,
    grid_config: Optional[PowerGridConfig] = None,
    seed: int = 7,
) -> TradeoffCurve:
    """Run the exchange once per density weight and collect the trade-off."""
    initial = assign_design(DFAAssigner(), design)
    analyzer = IRDropAnalyzer(design, grid_config=grid_config)
    curve = TradeoffCurve()
    for rho in weights:
        exchanger = FingerPadExchanger(
            design,
            weights=CostWeights(ir=1.0, density=rho),
            params=sa_params,
        )
        result = exchanger.run(initial, seed=seed)
        curve.points.append(
            TradeoffPoint(
                density_weight=rho,
                max_density=max_density_of_design(result.after),
                max_ir_drop=analyzer.max_drop(result.after),
            )
        )
    return curve
