"""Design-level metric extraction shared by the flow, reports and benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..exchange import omega_of_design
from ..package import NetType, PackageDesign
from ..power import IRDropAnalyzer, PowerGridConfig
from ..routing import max_density_of_design, total_flyline_length_of_design


@dataclass(frozen=True)
class DesignMetrics:
    """The quantities the paper's tables report for one assignment."""

    max_density: int
    wirelength: float
    max_ir_drop: Optional[float] = None
    omega: Optional[int] = None

    def as_dict(self) -> Dict:
        return {
            "max_density": self.max_density,
            "wirelength": self.wirelength,
            "max_ir_drop": self.max_ir_drop,
            "omega": self.omega,
        }


def measure(
    design: PackageDesign,
    assignments: Dict,
    grid_config: Optional[PowerGridConfig] = None,
    with_ir: bool = True,
    net_type: Optional[NetType] = NetType.POWER,
    backend: str = "auto",
) -> DesignMetrics:
    """Measure one assignment of a design.

    ``with_ir=False`` skips the (comparatively expensive) power-grid solve —
    Table 2 only needs density and wirelength.  ``backend`` is the staged
    convention and currently steers the density estimator; the IR solve
    always takes the factor-once path.
    """
    density = max_density_of_design(assignments, backend=backend)
    wirelength = total_flyline_length_of_design(assignments)
    ir_drop = None
    if with_ir:
        analyzer = IRDropAnalyzer(design, grid_config=grid_config, net_type=net_type)
        ir_drop = analyzer.max_drop(assignments)
    psi = design.stacking.tier_count
    omega = omega_of_design(assignments, psi) if psi > 1 else None
    return DesignMetrics(
        max_density=density,
        wirelength=wirelength,
        max_ir_drop=ir_drop,
        omega=omega,
    )


def improvement_ratio(before: float, after: float) -> float:
    """Relative improvement ``(before - after) / before``; 0 when before <= 0."""
    if before <= 0:
        return 0.0
    return (before - after) / before
