"""The two-step chip-package co-design flow (paper Fig. 1(B)).

Step 1: a congestion-driven finger/pad assignment (DFA by default) solves
the wire congestion problem of the package routing.  Step 2: the finger/pad
exchange improves core IR-drop (and bonding wires for stacking ICs) while
suppressing the density increase.  This module chains both steps over a
whole design and measures every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..assign import Assigner, DFAAssigner
from ..exchange import (
    CostWeights,
    ExchangeResult,
    FingerPadExchanger,
    SAParams,
)
from ..package import NetType, PackageDesign
from ..power import PowerGridConfig
from .metrics import DesignMetrics, improvement_ratio, measure


@dataclass
class CoDesignResult:
    """Everything the two-step flow produced for one design."""

    design: PackageDesign
    assignments_initial: Dict
    assignments_final: Dict
    exchange: ExchangeResult
    metrics_initial: DesignMetrics = None
    metrics_final: DesignMetrics = None
    extra: Dict = field(default_factory=dict)

    @property
    def ir_improvement(self) -> float:
        """Table 3's "Improved IR-drop" ratio (0.1061 = 10.61%)."""
        return improvement_ratio(
            self.metrics_initial.max_ir_drop, self.metrics_final.max_ir_drop
        )

    @property
    def bonding_improvement(self) -> float:
        """Table 3's "Improved Bonding wire" ratio."""
        return self.exchange.bonding_improvement

    @property
    def density_after_assignment(self) -> int:
        return self.metrics_initial.max_density

    @property
    def density_after_exchange(self) -> int:
        return self.metrics_final.max_density


class CoDesignFlow:
    """Configurable two-step flow: assignment then exchange."""

    def __init__(
        self,
        assigner: Optional[Assigner] = None,
        weights: Optional[CostWeights] = None,
        sa_params: Optional[SAParams] = None,
        grid_config: Optional[PowerGridConfig] = None,
        net_type: Optional[NetType] = NetType.POWER,
    ) -> None:
        self.assigner = assigner or DFAAssigner()
        self.weights = weights
        self.sa_params = sa_params
        self.grid_config = grid_config
        self.net_type = net_type

    def run(
        self, design: PackageDesign, seed: Optional[int] = 0
    ) -> CoDesignResult:
        """Run both steps on *design* and measure before/after."""
        initial = self.assigner.assign_design(design, seed=seed)
        exchanger = FingerPadExchanger(
            design,
            weights=self.weights,
            params=self.sa_params,
            net_type=self.net_type,
        )
        exchange = exchanger.run(initial, seed=seed)
        metrics_initial = measure(
            design,
            exchange.before,
            grid_config=self.grid_config,
            net_type=self.net_type,
        )
        metrics_final = measure(
            design,
            exchange.after,
            grid_config=self.grid_config,
            net_type=self.net_type,
        )
        return CoDesignResult(
            design=design,
            assignments_initial=exchange.before,
            assignments_final=exchange.after,
            exchange=exchange,
            metrics_initial=metrics_initial,
            metrics_final=metrics_final,
        )
