"""The two-step chip-package co-design flow (paper Fig. 1(B)).

Step 1: a congestion-driven finger/pad assignment (DFA by default) solves
the wire congestion problem of the package routing.  Step 2: the finger/pad
exchange improves core IR-drop (and bonding wires for stacking ICs) while
suppressing the density increase.  This module chains both steps over a
whole design and measures every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..assign import Assigner, DFAAssigner, assign_design
from ..errors import FlowError
from ..exchange import (
    CostWeights,
    ExchangeResult,
    FingerPadExchanger,
    SAParams,
)
from ..package import NetType, PackageDesign
from ..power import PowerGridConfig
from .metrics import DesignMetrics, improvement_ratio, measure


@dataclass
class CoDesignResult:
    """Everything the two-step flow produced for one design.

    ``metrics_initial``/``metrics_final`` are ``None`` when the flow was
    run without measurement; the derived properties raise
    :class:`~repro.errors.FlowError` in that case rather than crashing
    with an ``AttributeError`` deep inside a ratio computation.
    """

    design: PackageDesign
    assignments_initial: Dict
    assignments_final: Dict
    exchange: ExchangeResult
    metrics_initial: Optional[DesignMetrics] = None
    metrics_final: Optional[DesignMetrics] = None
    extra: Dict = field(default_factory=dict)

    def _metrics(self) -> tuple:
        if self.metrics_initial is None or self.metrics_final is None:
            missing = [
                name
                for name, value in (
                    ("metrics_initial", self.metrics_initial),
                    ("metrics_final", self.metrics_final),
                )
                if value is None
            ]
            raise FlowError(
                f"co-design result has no {' or '.join(missing)}; "
                "the flow was run without measurement"
            )
        return self.metrics_initial, self.metrics_final

    @property
    def ir_improvement(self) -> float:
        """Table 3's "Improved IR-drop" ratio (0.1061 = 10.61%)."""
        initial, final = self._metrics()
        return improvement_ratio(initial.max_ir_drop, final.max_ir_drop)

    @property
    def bonding_improvement(self) -> float:
        """Table 3's "Improved Bonding wire" ratio."""
        return self.exchange.bonding_improvement

    @property
    def density_after_assignment(self) -> int:
        return self._metrics()[0].max_density

    @property
    def density_after_exchange(self) -> int:
        return self._metrics()[1].max_density


class CoDesignFlow:
    """Configurable two-step flow: assignment then exchange.

    ``verify`` selects the recovery policy (see :mod:`repro.verify.policy`):
    ``off`` runs the pre-verification flow; ``strict`` re-checks the design
    on ingest and each assignment stage on output, raising
    :class:`~repro.errors.VerificationError` on any violation; ``repair``
    re-legalizes an illegal assignment in place and only raises when the
    repair did not restore the invariants; ``degrade`` additionally falls
    back to the deterministic IFA assigner when the configured assigner's
    output cannot be repaired.
    """

    def __init__(
        self,
        assigner: Optional[Assigner] = None,
        weights: Optional[CostWeights] = None,
        sa_params: Optional[SAParams] = None,
        grid_config: Optional[PowerGridConfig] = None,
        net_type: Optional[NetType] = NetType.POWER,
        verify: str = "off",
        backend: str = "auto",
    ) -> None:
        from ..verify import normalize

        self.assigner = assigner or DFAAssigner()
        self.weights = weights
        self.sa_params = sa_params
        self.grid_config = grid_config
        self.net_type = net_type
        self.verify = normalize(verify)
        self.backend = backend

    def run(
        self, design: PackageDesign, seed: Optional[int] = 0
    ) -> CoDesignResult:
        """Run both steps on *design* and measure before/after."""
        from ..obs.spans import span
        from ..runtime.telemetry import get_telemetry

        telemetry = get_telemetry()
        verifying = self.verify != "off"
        with span("flow.run", telemetry, design=design.name):
            if verifying:
                from ..verify import check_design

                # A malformed design has no automatic repair; every active
                # policy refuses to compute numbers from one.
                check_design(design).raise_if_errors()

            with span("flow.assign", telemetry):
                initial = assign_design(
                    self.assigner, design, seed=seed, backend=self.backend
                )
            if verifying:
                initial = self._verified_assignments(
                    design, initial, stage="assignment", seed=seed
                )

            exchanger = FingerPadExchanger(
                design,
                weights=self.weights,
                params=self.sa_params,
                net_type=self.net_type,
                backend=self.backend,
            )
            with span("flow.exchange", telemetry, backend=exchanger.backend):
                exchange = exchanger.run(initial, seed=seed)
            if verifying:
                self._verified_assignments(
                    design,
                    exchange.after,
                    stage="exchange",
                    seed=seed,
                    baseline=exchange.before,
                    degradable=False,
                )
            with span("flow.measure", telemetry):
                metrics_initial = measure(
                    design,
                    exchange.before,
                    grid_config=self.grid_config,
                    net_type=self.net_type,
                    backend=self.backend,
                )
                metrics_final = measure(
                    design,
                    exchange.after,
                    grid_config=self.grid_config,
                    net_type=self.net_type,
                    backend=self.backend,
                )
            if verifying:
                from ..verify import check_power_values

                check_power_values(
                    {
                        "max_ir_drop_initial": metrics_initial.max_ir_drop,
                        "max_ir_drop_final": metrics_final.max_ir_drop,
                    }
                ).raise_if_errors()
        return CoDesignResult(
            design=design,
            assignments_initial=exchange.before,
            assignments_final=exchange.after,
            exchange=exchange,
            metrics_initial=metrics_initial,
            metrics_final=metrics_final,
        )

    def _verified_assignments(
        self,
        design: PackageDesign,
        assignments: Dict,
        stage: str,
        seed: Optional[int],
        baseline: Optional[Dict] = None,
        degradable: bool = True,
    ) -> Dict:
        """Apply the recovery policy to one stage's assignments.

        Returns the (possibly repaired or degraded) assignments; raises
        :class:`~repro.errors.VerificationError` when the policy is strict
        or nothing restored the invariants.
        """
        from ..runtime.telemetry import get_telemetry
        from ..verify import (
            DEGRADE,
            REPAIR,
            check_assignments,
            repair_assignments,
        )

        report = check_assignments(design, assignments, baseline=baseline)
        if report.ok:
            return assignments
        telemetry = get_telemetry()
        telemetry.emit(
            "verify.violation",
            stage=stage,
            policy=self.verify,
            codes=report.codes("error"),
        )
        if self.verify in (REPAIR, DEGRADE):
            moved = repair_assignments(design, assignments)
            repaired = check_assignments(design, assignments, baseline=baseline)
            telemetry.emit(
                "verify.repair",
                stage=stage,
                moved=sum(moved.values()),
                ok=repaired.ok,
            )
            if repaired.ok:
                return assignments
            if self.verify == DEGRADE and degradable:
                from ..assign import IFAAssigner

                fallback = assign_design(IFAAssigner(), design, seed=seed)
                check_assignments(design, fallback).raise_if_errors()
                telemetry.emit("verify.degrade", stage=stage, fallback="IFA")
                telemetry.count("verify.degraded")
                return fallback
            repaired.raise_if_errors()
        report.raise_if_errors()
        return assignments
