"""Assigner comparison engine — the machinery behind Table 2.

Runs Random / IFA / DFA over a set of designs and collects max density and
flyline wirelength for each, plus the averaged ratios the paper's last table
row reports (Random normalized to 1).
"""

from __future__ import annotations

from ..assign import assign_design
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..assign import Assigner, BestOfRandomAssigner, DFAAssigner, IFAAssigner
from ..package import PackageDesign
from ..routing import (
    max_density_of_design,
    route_design,
    total_flyline_length_of_design,
)


@dataclass
class AssignerRun:
    """Result of one assigner on one design.

    ``wirelength`` is the realized routed length (polyline over both layers,
    the quantity the paper's Table 2 tracks — "the routing path is near to
    the straight line" for good assignments); ``flyline_length`` is the
    straight finger->via->ball lower bound.
    """

    circuit: str
    assigner: str
    max_density: int
    wirelength: float
    flyline_length: float = 0.0


@dataclass
class ComparisonTable:
    """All runs plus the paper-style averaged ratios."""

    runs: List[AssignerRun] = field(default_factory=list)
    baseline: str = "Random"

    def circuits(self) -> List[str]:
        seen: List[str] = []
        for run in self.runs:
            if run.circuit not in seen:
                seen.append(run.circuit)
        return seen

    def assigners(self) -> List[str]:
        seen: List[str] = []
        for run in self.runs:
            if run.assigner not in seen:
                seen.append(run.assigner)
        return seen

    def cell(self, circuit: str, assigner: str) -> AssignerRun:
        for run in self.runs:
            if run.circuit == circuit and run.assigner == assigner:
                return run
        raise KeyError(f"no run for ({circuit}, {assigner})")

    def average_density_ratio(self, assigner: str) -> float:
        """Mean of per-circuit density ratios vs the baseline (Table 2 row)."""
        ratios = []
        for circuit in self.circuits():
            base = self.cell(circuit, self.baseline).max_density
            value = self.cell(circuit, assigner).max_density
            if base > 0:
                ratios.append(value / base)
        return sum(ratios) / len(ratios) if ratios else 0.0

    def average_wirelength_ratio(self, assigner: str) -> float:
        """Mean of per-circuit wirelength ratios vs the baseline."""
        ratios = []
        for circuit in self.circuits():
            base = self.cell(circuit, self.baseline).wirelength
            value = self.cell(circuit, assigner).wirelength
            if base > 0:
                ratios.append(value / base)
        return sum(ratios) / len(ratios) if ratios else 0.0


def compare_assigners(
    designs: Dict[str, PackageDesign],
    assigners: Optional[Sequence[Assigner]] = None,
    seed: Optional[int] = 0,
) -> ComparisonTable:
    """Run every assigner on every design (the Table-2 experiment)."""
    if assigners is None:
        # The paper's baseline is the "randomly optimized method": a random
        # legal order given a handful of attempts.
        assigners = (BestOfRandomAssigner(trials=3), IFAAssigner(), DFAAssigner())
    table = ComparisonTable(baseline=assigners[0].name)
    for circuit_name, design in designs.items():
        for assigner in assigners:
            assignments = assign_design(assigner, design, seed=seed)
            routed = route_design(assignments)
            table.runs.append(
                AssignerRun(
                    circuit=circuit_name,
                    assigner=assigner.name,
                    max_density=max_density_of_design(assignments),
                    wirelength=sum(
                        result.total_routed_length for result in routed.values()
                    ),
                    flyline_length=total_flyline_length_of_design(assignments),
                )
            )
    return table
