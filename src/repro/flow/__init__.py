"""End-to-end co-design flow, comparison engine and report rendering."""

from .codesign import CoDesignFlow, CoDesignResult
from .compare import AssignerRun, ComparisonTable, compare_assigners
from .full_report import generate_report
from .experiments import (
    SeedSweep,
    Statistic,
    codesign_experiment,
    run_experiment,
    sweep_seeds,
)
from .metrics import DesignMetrics, improvement_ratio, measure
from .pareto import TradeoffCurve, TradeoffPoint, sweep_density_weight
from .report import (
    render_fig6,
    render_irdrop_mv,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "AssignerRun",
    "CoDesignFlow",
    "CoDesignResult",
    "ComparisonTable",
    "DesignMetrics",
    "SeedSweep",
    "Statistic",
    "codesign_experiment",
    "generate_report",
    "run_experiment",
    "TradeoffCurve",
    "TradeoffPoint",
    "sweep_density_weight",
    "sweep_seeds",
    "compare_assigners",
    "improvement_ratio",
    "measure",
    "render_fig6",
    "render_irdrop_mv",
    "render_table1",
    "render_table2",
    "render_table3",
]
