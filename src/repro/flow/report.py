"""Plain-text table rendering in the layout of the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..circuits import TABLE1_SPECS
from ..units import to_mv
from .compare import ComparisonTable


def _render(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1() -> str:
    """Table 1: the experimental data of the test circuits."""
    headers = [
        "Input case",
        "Finger/pad counts",
        "Bump ball space (um)",
        "Finger width (um)",
        "Finger height (um)",
        "Finger space (um)",
    ]
    rows = [
        [
            spec.name,
            str(spec.finger_count),
            f"{spec.bump_ball_space:g}",
            f"{spec.finger_width:g}",
            f"{spec.finger_height:g}",
            f"{spec.finger_space:g}",
        ]
        for spec in TABLE1_SPECS
    ]
    return _render(headers, rows)


def render_table2(table: ComparisonTable) -> str:
    """Table 2: max density and wirelength for Random / IFA / DFA."""
    assigners = table.assigners()
    headers = ["Input case"]
    headers += [f"density {name}" for name in assigners]
    headers += [f"WL(um) {name}" for name in assigners]
    rows: List[List[str]] = []
    for circuit in table.circuits():
        row = [circuit]
        for name in assigners:
            row.append(str(table.cell(circuit, name).max_density))
        for name in assigners:
            row.append(f"{table.cell(circuit, name).wirelength:,.0f}")
        rows.append(row)
    average = ["Average"]
    for name in assigners:
        average.append(f"{table.average_density_ratio(name):.2f}")
    for name in assigners:
        average.append(f"{table.average_wirelength_ratio(name):.2f}")
    rows.append(average)
    return _render(headers, rows)


def render_table3(results_2d: Dict, results_stacked: Dict) -> str:
    """Table 3: exchange results for 2-D (psi=1) and stacking (psi=4) ICs.

    Both arguments map circuit names to :class:`CoDesignResult`.
    """
    headers = [
        "Input case",
        "dens after DFA (2D)",
        "dens after exch (2D)",
        "impr IR-drop % (2D)",
        "dens after DFA (psi=4)",
        "dens after exch (psi=4)",
        "impr IR-drop % (psi=4)",
        "impr bonding wire %",
    ]
    rows: List[List[str]] = []
    for circuit in results_2d:
        flat = results_2d[circuit]
        stacked = results_stacked[circuit]
        rows.append(
            [
                circuit,
                str(flat.density_after_assignment),
                str(flat.density_after_exchange),
                f"{flat.ir_improvement * 100:.2f}",
                str(stacked.density_after_assignment),
                str(stacked.density_after_exchange),
                f"{stacked.ir_improvement * 100:.2f}",
                f"{stacked.bonding_improvement * 100:.2f}",
            ]
        )
    count = max(len(results_2d), 1)
    rows.append(
        [
            "Average improvement",
            "",
            "",
            f"{sum(r.ir_improvement for r in results_2d.values()) / count * 100:.2f}",
            "",
            "",
            f"{sum(r.ir_improvement for r in results_stacked.values()) / count * 100:.2f}",
            f"{sum(r.bonding_improvement for r in results_stacked.values()) / count * 100:.2f}",
        ]
    )
    return _render(headers, rows)


def render_fig6(result) -> str:
    """Fig. 6: the real-chip IR-drop comparison."""
    headers = ["Plan", "measured (mV)", "paper (mV)"]
    rows = [
        [name, f"{measured:.1f}", f"{paper:.1f}"]
        for name, measured, paper in result.as_rows()
    ]
    return _render(headers, rows)


def render_irdrop_mv(drop_volts: float) -> str:
    """Format an IR-drop value the way the paper quotes it."""
    return f"{to_mv(drop_volts):.1f} mV"
