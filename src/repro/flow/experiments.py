"""Multi-seed experiment running and statistics.

Single-seed results of a randomized flow can mislead; this module reruns an
experiment over a seed set and reports mean / standard deviation / extrema —
what a reviewer would ask of Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass(frozen=True)
class Statistic:
    """Summary of one scalar metric over a seed set."""

    name: str
    values: tuple

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def render(self) -> str:
        return (
            f"{self.name}: mean {self.mean:.4f} +/- {self.std:.4f} "
            f"(min {self.min:.4f}, max {self.max:.4f}, n={self.count})"
        )


@dataclass
class SeedSweep:
    """Results of one experiment function over several seeds."""

    metrics: Dict[str, Statistic] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Statistic:
        return self.metrics[name]

    def render(self) -> str:
        return "\n".join(stat.render() for stat in self.metrics.values())


def _aggregate(per_seed: Sequence[Dict[str, float]], seeds: Sequence[int]) -> SeedSweep:
    """Fold per-seed metric dicts into a :class:`SeedSweep`, checking keys."""
    collected: Dict[str, List[float]] = {}
    keys = None
    for seed, result in zip(seeds, per_seed):
        if keys is None:
            keys = set(result)
        elif set(result) != keys:
            raise ValueError(
                f"seed {seed} returned metrics {sorted(result)} != {sorted(keys)}"
            )
        for name, value in result.items():
            collected.setdefault(name, []).append(float(value))
    sweep = SeedSweep()
    for name, values in collected.items():
        sweep.metrics[name] = Statistic(name=name, values=tuple(values))
    return sweep


def sweep_seeds(
    experiment: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> SeedSweep:
    """Run ``experiment(seed) -> {metric: value}`` for every seed.

    Every run must return the same metric keys; the sweep aggregates each
    metric into a :class:`Statistic`.
    """
    from ..obs.spans import span
    from ..runtime.telemetry import get_telemetry

    if not seeds:
        raise ValueError("at least one seed is required")
    telemetry = get_telemetry()
    per_seed: List[Dict[str, float]] = []
    for seed in seeds:
        with span("experiment.seed", telemetry, seed=seed):
            with telemetry.timer("experiment.seed", seed=seed):
                per_seed.append(experiment(seed))
    return _aggregate(per_seed, seeds)


def run_experiment(
    kind: str,
    params: Dict,
    seeds: Sequence[int],
    engine=None,
    verify: str = "off",
) -> SeedSweep:
    """Fan a registered job type out over a seed set via the runtime engine.

    The engine-backed sibling of :func:`sweep_seeds`: each seed becomes one
    :class:`~repro.runtime.JobSpec`, so the sweep parallelizes across
    processes and is served from the result cache on re-runs.  Numeric
    top-level fields of each job value become the sweep's metrics; nested
    and non-numeric fields are ignored.

    ``verify`` (used only when no *engine* is supplied) selects the engine's
    result-verification policy, so an invalid job value is re-run (repair)
    or fails the sweep with its diagnostic (strict) instead of being
    averaged into the statistics.
    """
    from ..runtime import JobEngine, JobSpec

    if not seeds:
        raise ValueError("at least one seed is required")
    engine = engine if engine is not None else JobEngine(verify=verify)
    specs = [JobSpec(kind, dict(params), seed=int(seed)) for seed in seeds]
    outcomes = engine.run(specs)
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        details = "; ".join(
            f"seed {outcome.spec.seed}: {outcome.error}" for outcome in failed
        )
        raise RuntimeError(f"{len(failed)} experiment job(s) failed: {details}")
    per_seed = [
        {
            name: float(value)
            for name, value in outcome.value.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        for outcome in outcomes
    ]
    return _aggregate(per_seed, list(seeds))


def codesign_experiment(design, flow, metric_grid=None):
    """Factory: a seed-indexed experiment over one design and flow.

    Returns a callable suitable for :func:`sweep_seeds`, reporting the
    headline Table-3 metrics.
    """

    def run(seed: int) -> Dict[str, float]:
        result = flow.run(design, seed=seed)
        return {
            "density_after_assignment": result.density_after_assignment,
            "density_after_exchange": result.density_after_exchange,
            "ir_improvement": result.ir_improvement,
            "bonding_improvement": result.bonding_improvement,
        }

    return run
