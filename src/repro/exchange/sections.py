"""Increased-density (ID) tracking for the exchange step (paper Eq. 2).

Under monotonic routing the highest horizontal line carries the most wires,
so the paper's exchange method only watches that line: the nets of the
highest bump row split the finger sequence into sections, the *interval
number* ``I_c`` of a section is how many other nets currently sit in it, and

    ID = max_c (I_c_new - I_c_ini)

is the density increase since the congestion-driven assignment (Eq. 2).

This module implements both the paper's top-line-only tracker and a
generalized tracker that applies the same section bookkeeping to *every*
horizontal line (the runs of :func:`repro.routing.density.run_partition`).
After DFA the top line sits at its congestion floor, so on our substrate the
density growth the exchange causes shows up on the lower lines — watching
all lines implements the paper's intent (suppress the density increase)
without its blind spot.  ``benchmarks/bench_ablation.py`` quantifies the
difference.
"""

from __future__ import annotations

from typing import Dict, List

from ..assign import Assignment
from ..errors import ExchangeError
from ..routing.density import run_partition


def interval_numbers(assignment: Assignment) -> List[int]:
    """The paper's interval numbers ``I_1 .. I_{x+1}`` (top line only).

    ``x`` recorded nets (the highest bump row) divide the finger sequence
    into ``x + 1`` sections: before the first recorded net, between
    consecutive recorded nets, and after the last one.
    """
    quadrant = assignment.quadrant
    top_nets = quadrant.highest_row_nets()
    top_slots = sorted(assignment.slot_of(net_id) for net_id in top_nets)
    counts: List[int] = []
    previous = 0
    for slot in top_slots:
        counts.append(slot - previous - 1)
        previous = slot
    counts.append(assignment.slot_count - previous)
    return counts


def _row_counts(assignment: Assignment, rows: List[int]) -> List[List[int]]:
    """Wire counts per run for each watched row."""
    return [
        [wires for wires, __ in run_partition(assignment, row)] for row in rows
    ]


class SectionTracker:
    """Tracks Eq. 2's ID for one quadrant against a recorded baseline.

    ``all_rows=False`` reproduces the paper's top-line-only bookkeeping;
    the default watches every horizontal line.
    """

    def __init__(self, baseline: Assignment, all_rows: bool = True) -> None:
        self.quadrant = baseline.quadrant
        if all_rows:
            self.rows = list(range(2, self.quadrant.row_count + 1)) or [
                self.quadrant.row_count
            ]
        else:
            self.rows = [self.quadrant.row_count]
        self.initial = _row_counts(baseline, self.rows)

    def increased_density(self, assignment: Assignment) -> int:
        """``max (I_new - I_ini)`` over every watched section."""
        if assignment.quadrant is not self.quadrant:
            raise ExchangeError("tracker used with a different quadrant")
        current = _row_counts(assignment, self.rows)
        worst = None
        for new_row, old_row in zip(current, self.initial):
            if len(new_row) != len(old_row):
                raise ExchangeError("section count changed — corrupted assignment")
            for new, old in zip(new_row, old_row):
                delta = new - old
                if worst is None or delta > worst:
                    worst = delta
        return worst if worst is not None else 0


class DesignSectionTracker:
    """Aggregates per-quadrant trackers; the cost uses the worst section."""

    def __init__(self, baseline_assignments: Dict, all_rows: bool = True) -> None:
        self.trackers = {
            side: SectionTracker(assignment, all_rows=all_rows)
            for side, assignment in baseline_assignments.items()
        }

    def increased_density(self, assignments: Dict) -> int:
        """Worst ID across every quadrant of the design."""
        return max(
            tracker.increased_density(assignments[side])
            for side, tracker in self.trackers.items()
        )
