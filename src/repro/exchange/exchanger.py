"""The finger/pad exchange method (paper Fig. 14).

Takes the assignments produced by a congestion-driven assigner (usually DFA)
and anneals adjacent, legality-preserving swaps to simultaneously improve
core IR-drop (via the compact proxy), bonding-wire interleaving (stacking
ICs) and keep the package density in check (Eq. 2's ID penalty).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..assign import Assignment, check_legal
from ..package import NetType, PackageDesign
from .annealer import SAParams, SAStats, SimulatedAnnealer
from .bonding import omega_of_design
from .cost import CostWeights, ExchangeCost
from .fastcost import CachedExchangeCost
from .moves import MoveGenerator


@dataclass
class ExchangeResult:
    """Everything the exchange step produced."""

    before: Dict
    after: Dict
    stats: SAStats = None
    cost_breakdown_before: Dict[str, float] = field(default_factory=dict)
    cost_breakdown_after: Dict[str, float] = field(default_factory=dict)
    omega_before: int = 0
    omega_after: int = 0

    @property
    def bonding_improvement(self) -> float:
        """Relative omega improvement (Table 3's last column)."""
        if self.omega_before <= 0:
            return 0.0
        return (self.omega_before - self.omega_after) / self.omega_before


class FingerPadExchanger:
    """SA-driven exchange over a whole design (2-D and stacking ICs).

    ``backend`` selects the cost/move machinery the anneal runs on:

    ``"object"``
        :class:`CachedExchangeCost` over ``Assignment`` objects — the
        reference implementation, supports custom ``ir_proxy`` injection.
    ``"array"``
        :class:`~repro.kernels.ArrayExchangeKernel` — flat NumPy state
        with O(1) swap deltas, move-for-move identical to ``"object"``
        under a shared seed (proven by ``tests/test_kernels.py``).
    ``"exact"``
        :class:`ExchangeCost` re-derived from scratch every move; only
        useful for debugging the caches.
    ``"auto"`` (default)
        ``"array"`` for large supply-routed designs, else ``"object"``
        (see :func:`repro.kernels.resolve_backend`).
    """

    def __init__(
        self,
        design: PackageDesign,
        weights: Optional[CostWeights] = None,
        params: Optional[SAParams] = None,
        net_type: Optional[NetType] = NetType.POWER,
        power_only: Optional[bool] = None,
        ir_proxy=None,
        track_all_rows: bool = True,
        split_networks: bool = False,
        polish_passes: int = 20,
        backend: str = "auto",
        incremental: Optional[bool] = None,
        wl_resync_interval: Optional[int] = None,
        checkpoint=None,
    ) -> None:
        self.design = design
        self.weights = weights or CostWeights()
        if isinstance(params, str):
            # Schedule names ("tuned", "fast", ...) resolve against the
            # design size; lazy import because presets imports this package.
            from ..presets import resolve_sa_params

            params = resolve_sa_params(params, design)
        self.params = params or SAParams()
        self.net_type = net_type
        self.power_only = power_only
        self.ir_proxy = ir_proxy
        self.track_all_rows = track_all_rows
        self.split_networks = split_networks
        self.polish_passes = polish_passes
        #: Array-backend wirelength resync cadence override (None = the
        #: kernel's default); the fuzzer pins tiny values so short anneals
        #: still cross resync boundaries.
        self.wl_resync_interval = wl_resync_interval
        #: Optional :class:`~repro.exchange.checkpoint.SACheckpointer`:
        #: the anneal periodically persists its full state and resumes
        #: bit-identically after a crash.  Array backend only — the object
        #: backend's cost caches have no captured-state form.
        self.checkpoint = checkpoint
        if incremental is not None:
            warnings.warn(
                "FingerPadExchanger(incremental=...) is deprecated; pass "
                "backend='object' (incremental caches) or backend='exact' "
                "(from-scratch re-evaluation) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            backend = "object" if incremental else "exact"
        from ..kernels import resolve_backend

        self.backend = resolve_backend(backend, design, ir_proxy=ir_proxy)

    @property
    def incremental(self) -> bool:
        """Deprecated alias kept for old callers: True unless ``exact``."""
        return self.backend != "exact"

    def run(self, assignments: Dict, seed: Optional[int] = None) -> ExchangeResult:
        """Anneal from *assignments*; the input objects are not mutated."""
        if self.backend == "array":
            return self._run_array(assignments, seed)
        return self._run_object(assignments, seed)

    def _run_array(self, assignments: Dict, seed: Optional[int]) -> ExchangeResult:
        """Anneal on the flat-array kernel; report through the object model."""
        import time

        from ..kernels import ArrayExchangeKernel
        from ..obs.spans import span
        from ..runtime.telemetry import get_telemetry

        telemetry = get_telemetry()
        before = {side: assignment.copy() for side, assignment in assignments.items()}
        with span("kernel.build", telemetry):
            kernel = ArrayExchangeKernel(
                self.design,
                before,
                weights=self.weights,
                net_type=self.net_type,
                track_all_rows=self.track_all_rows,
                split_networks=self.split_networks,
                power_only=self.power_only,
                wl_resync_interval=self.wl_resync_interval,
            )
        checkpoint = self.checkpoint
        if checkpoint is not None:
            from .checkpoint import decode_arrays, encode_arrays

            checkpoint.bind(
                capture=kernel.checkpoint_state,
                restore=kernel.restore_checkpoint,
                encode=encode_arrays,
                decode=decode_arrays,
            )
            if checkpoint.run_key is None:
                checkpoint.run_key = self._checkpoint_run_key(kernel, seed)
        annealer = SimulatedAnnealer(self.params)
        anneal_started = time.perf_counter()
        with span("sa.anneal", telemetry, backend="array"):
            stats = annealer.optimize(
                propose=kernel.propose,
                apply=kernel.apply,
                undo=kernel.undo,
                cost=kernel.cost,
                seed=seed,
                snapshot=kernel.snapshot,
                checkpoint=checkpoint,
                curve_label=self.design.name,
            )
        anneal_seconds = time.perf_counter() - anneal_started
        if stats.best_snapshot is not None:
            kernel.restore(stats.best_snapshot)
        if self.polish_passes:
            with span("kernel.polish", telemetry):
                kernel.polish(self.polish_passes)
        if telemetry.enabled:
            telemetry.emit(
                "kernel.stats",
                backend="array",
                proposed=stats.proposed,
                swaps=kernel.swap_count,
                resyncs=kernel.resync_count,
                us_per_move=round(anneal_seconds * 1e6 / stats.proposed, 3)
                if stats.proposed
                else 0.0,
                seconds=round(anneal_seconds, 6),
            )
            telemetry.metrics.counter("kernel.resyncs").inc(kernel.resync_count)
        after = kernel.assignments()
        for assignment in after.values():
            check_legal(assignment)

        # Reporting runs through the object model: identical float values,
        # and it independently cross-checks the kernel's bookkeeping.
        cost = CachedExchangeCost(
            self.design,
            before,
            weights=self.weights,
            net_type=self.net_type,
            track_all_rows=self.track_all_rows,
            split_networks=self.split_networks,
        )
        psi = self.design.stacking.tier_count
        return ExchangeResult(
            before=before,
            after=after,
            stats=stats,
            cost_breakdown_before=cost.breakdown(before),
            cost_breakdown_after=cost.breakdown(after),
            omega_before=omega_of_design(before, psi),
            omega_after=omega_of_design(after, psi),
        )

    def _checkpoint_run_key(self, kernel, seed: Optional[int]) -> str:
        """Identity of one anneal: seed + schedule + weights + baseline.

        A checkpoint whose run key differs answers a different question
        (other seed, other circuit, other schedule) and must read as
        absent rather than resume.
        """
        import hashlib
        import json

        params = self.params
        payload = {
            "seed": seed,
            "schedule": [
                params.initial_temp,
                params.final_temp,
                params.cooling,
                params.moves_per_temp,
            ],
            "weights": [
                self.weights.ir,
                self.weights.density,
                self.weights.bonding,
                self.weights.wirelength,
            ],
            "orders": {
                str(side): order for side, order in kernel.orders().items()
            },
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def _run_object(self, assignments: Dict, seed: Optional[int]) -> ExchangeResult:
        if self.checkpoint is not None:
            from ..errors import ExchangeError

            raise ExchangeError(
                "SA checkpointing requires backend='array'; the object "
                "backend's cost caches have no captured-state form"
            )
        before = {side: assignment.copy() for side, assignment in assignments.items()}
        working = {side: assignment.copy() for side, assignment in assignments.items()}

        incremental = self.backend == "object"
        cost_class = CachedExchangeCost if incremental else ExchangeCost
        cost = cost_class(
            self.design,
            before,
            weights=self.weights,
            net_type=self.net_type,
            ir_proxy=self.ir_proxy,
            track_all_rows=self.track_all_rows,
            split_networks=self.split_networks,
        )
        moves = MoveGenerator(
            self.design, working, power_only=self.power_only
        )
        annealer = SimulatedAnnealer(self.params)

        def snapshot() -> Dict:
            return {side: assignment.order for side, assignment in working.items()}

        def apply(move) -> None:
            moves.apply(move)
            if self.incremental:
                cost.mark_dirty(move.side)

        def undo(move) -> None:
            moves.undo(move)
            if self.incremental:
                cost.mark_dirty(move.side)

        from ..obs.spans import span
        from ..runtime.telemetry import get_telemetry

        telemetry = get_telemetry()
        with span("sa.anneal", telemetry, backend=self.backend):
            stats = annealer.optimize(
                propose=moves.propose,
                apply=apply,
                undo=undo,
                cost=lambda: cost.total(working),
                seed=seed,
                snapshot=snapshot,
                curve_label=self.design.name,
            )

        # Restore the best state seen during the anneal.
        best_orders = stats.best_snapshot
        after = {
            side: Assignment(working[side].quadrant, best_orders[side])
            for side in working
        }
        if self.polish_passes:
            with span("exchange.polish", telemetry):
                self._polish(after, cost)
        for assignment in after.values():
            check_legal(assignment)

        psi = self.design.stacking.tier_count
        return ExchangeResult(
            before=before,
            after=after,
            stats=stats,
            cost_breakdown_before=cost.breakdown(before),
            cost_breakdown_after=cost.breakdown(after),
            omega_before=omega_of_design(before, psi),
            omega_after=omega_of_design(after, psi),
        )

    def _polish(self, assignments: Dict, cost) -> None:
        """Zero-temperature finish: sweep every adjacent legal swap.

        Accepting only strict improvements until a full sweep finds none
        (or the pass budget runs out) leaves the result locally optimal
        under the exact Eq.-3 cost — the SA explores, the polish converges.
        """
        from ..assign import swap_is_legal

        def dirty(side) -> None:
            if self.incremental:
                cost.mark_dirty(side)

        if self.incremental:
            cost.mark_all_dirty()  # the polish operates on a fresh dict
        current = cost.total(assignments)
        for __ in range(self.polish_passes):
            improved = False
            for side, assignment in assignments.items():
                for slot in range(1, assignment.slot_count):
                    if not swap_is_legal(assignment, slot, slot + 1):
                        continue
                    assignment.swap_slots(slot, slot + 1)
                    dirty(side)
                    candidate = cost.total(assignments)
                    if candidate < current - 1e-12:
                        current = candidate
                        improved = True
                    else:
                        assignment.swap_slots(slot, slot + 1)
                        dirty(side)
            if not improved:
                break
