"""Replica-exchange building blocks: resumable anneal segments + swaps.

Parallel tempering runs K Metropolis chains at staggered temperatures and
periodically proposes to *exchange* the configurations of neighbouring
chains.  The population method the paper could not afford becomes cheap
once each chain's full state is a JSON document: a chain runs a fixed
number of temperature tiers as an ordinary engine job (cached, journaled,
fanned out over the process pool), returns its serialized state, and the
coordinator (:mod:`repro.tune.tempering`) swaps states between rounds.

This module is the problem-layer half of the protocol:

:func:`initial_chain_state`
    A chain's genesis state from a built kernel: the kernel's checkpoint
    payload (the same capture discipline ``SACheckpointer`` uses), a
    freshly seeded Mersenne state, the chain's starting temperature, and
    zeroed stats counters.
:func:`run_segment`
    Advance one chain by N temperature tiers.  The move loop mirrors
    :meth:`SimulatedAnnealer.optimize` exactly — unconditional Metropolis
    uniform draw, non-finite rejection, ``BEST_IMPROVEMENT_EPS`` best
    tracking — so a K=1 chain walks the same accept/reject trace as a
    single-chain anneal with the same rng stream.
:func:`swap_accept`
    The replica-exchange Metropolis criterion
    ``p = min(1, exp((1/T_a - 1/T_b) * (E_a - E_b)))``.  Always consumes
    exactly one uniform from the dedicated swap rng, so per-chain traces
    stay reproducible regardless of how many swaps are accepted.

Chain states round-trip through JSON byte-exactly (Python floats survive
``json``; the Mersenne state is a list of ints), which is what makes a
tempering run seed-deterministic at fixed K for any jobs= fan-out.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from .annealer import BEST_IMPROVEMENT_EPS
from .checkpoint import encode_arrays


def _rng_to_json(rng: random.Random) -> list:
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def _rng_from_json(payload) -> random.Random:
    rng = random.Random()
    rng.setstate((payload[0], tuple(payload[1]), payload[2]))
    return rng


def initial_chain_state(kernel, seed: Optional[int], temperature: float) -> Dict:
    """A chain's genesis: kernel at its baseline, fresh rng, zero stats."""
    cost = kernel.cost()
    return {
        "kernel": kernel.checkpoint_state(),
        "rng": _rng_to_json(random.Random(seed)),
        "temperature": float(temperature),
        "current_cost": cost,
        "best_cost": cost,
        "best": encode_arrays(kernel.snapshot()),
        "proposed": 0,
        "infeasible": 0,
        "accepted": 0,
        "accepted_uphill": 0,
        "nonfinite_rejected": 0,
        "steps_done": 0,
    }


def run_segment(
    kernel,
    state: Dict,
    steps: int,
    moves_per_temp: int,
    cooling: float,
) -> Tuple[Dict, List[list], List[int]]:
    """Advance one chain by *steps* temperature tiers on *kernel*.

    The kernel is restored from ``state["kernel"]`` first, so the caller
    only needs to build it at the chain's baseline.  Returns the new
    JSON-able state, one convergence sample per tier
    (``[proposed, cost, best_cost, acceptance, temperature]`` — the
    ``sa.curve`` point layout), and the per-tier accepted-move counts
    (the chain's accept trace, the determinism witness).
    """
    kernel.restore_checkpoint(state["kernel"])
    rng = _rng_from_json(state["rng"])
    temperature = float(state["temperature"])
    current_cost = float(state["current_cost"])
    best_cost = float(state["best_cost"])
    best = state["best"]
    proposed = int(state["proposed"])
    infeasible = int(state["infeasible"])
    accepted = int(state["accepted"])
    accepted_uphill = int(state["accepted_uphill"])
    nonfinite_rejected = int(state["nonfinite_rejected"])

    samples: List[list] = []
    accept_trace: List[int] = []
    for __ in range(steps):
        step_proposed = step_accepted = 0
        for __ in range(moves_per_temp):
            proposed += 1
            step_proposed += 1
            move = kernel.propose(rng)
            if move is None:
                infeasible += 1
                continue
            kernel.apply(move)
            new_cost = kernel.cost()
            delta = new_cost - current_cost
            if not math.isfinite(delta):
                kernel.undo(move)
                nonfinite_rejected += 1
                continue
            # Unconditional draw, exactly like the single-chain annealer:
            # the rng stream advances identically for every finite move.
            uniform = rng.random()
            if delta <= 0 or uniform < math.exp(-delta / temperature):
                current_cost = new_cost
                accepted += 1
                step_accepted += 1
                if delta > 0:
                    accepted_uphill += 1
                if current_cost < best_cost - BEST_IMPROVEMENT_EPS:
                    best_cost = current_cost
                    best = encode_arrays(kernel.snapshot())
            else:
                kernel.undo(move)
        acceptance = step_accepted / step_proposed if step_proposed else 0.0
        samples.append(
            [proposed, current_cost, best_cost, acceptance, temperature]
        )
        accept_trace.append(step_accepted)
        temperature *= cooling

    new_state = {
        "kernel": kernel.checkpoint_state(),
        "rng": _rng_to_json(rng),
        "temperature": temperature,
        "current_cost": current_cost,
        "best_cost": best_cost,
        "best": best,
        "proposed": proposed,
        "infeasible": infeasible,
        "accepted": accepted,
        "accepted_uphill": accepted_uphill,
        "nonfinite_rejected": nonfinite_rejected,
        "steps_done": int(state["steps_done"]) + steps,
    }
    return new_state, samples, accept_trace


def swap_accept(
    rng: random.Random,
    cost_a: float,
    cost_b: float,
    temp_a: float,
    temp_b: float,
) -> Tuple[bool, float]:
    """Replica-exchange Metropolis test between chains a (colder) and b.

    ``p = min(1, exp((beta_a - beta_b) * (E_a - E_b)))``: exchanging a
    worse configuration *down* the ladder is always accepted; pulling a
    worse one down is accepted with Boltzmann probability.  Exactly one
    uniform is consumed per call — accepted or not — so the swap rng
    stream is a pure function of the swap count.  Returns
    ``(accepted, uniform)``.
    """
    uniform = rng.random()
    delta = (1.0 / temp_a - 1.0 / temp_b) * (cost_a - cost_b)
    if delta >= 0:
        return True, uniform
    return uniform < math.exp(delta), uniform
