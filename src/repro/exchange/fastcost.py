"""Cached Eq.-3 evaluation for the SA inner loop.

A full :class:`~repro.exchange.cost.ExchangeCost` evaluation walks every
net of every quadrant (pad fractions, section runs, omega groups) — but an
adjacent swap only touches *one* side.  This wrapper keeps per-side caches
of the three ingredients and recomputes only the side a move dirtied,
cutting the per-move cost by roughly the quadrant count (4x on the paper's
packages) while producing *bit-identical* totals
(``tests/test_fastcost.py`` checks equivalence move by move).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..errors import NonFiniteCostError
from ..package import NetType
from .bonding import omega_of_assignment
from .cost import CostWeights, ExchangeCost


class CachedExchangeCost:
    """Drop-in for :class:`ExchangeCost` with per-side memoization.

    The caller must report mutations via :meth:`mark_dirty`; missing a
    notification silently serves stale values, so the exchanger owns all
    calls.
    """

    def __init__(
        self,
        design,
        baseline_assignments: Dict,
        weights: Optional[CostWeights] = None,
        net_type: Optional[NetType] = NetType.POWER,
        ir_proxy=None,
        track_all_rows: bool = True,
        split_networks: bool = False,
    ) -> None:
        self._exact = ExchangeCost(
            design,
            baseline_assignments,
            weights=weights,
            net_type=net_type,
            ir_proxy=ir_proxy,
            track_all_rows=track_all_rows,
            split_networks=split_networks,
        )
        self.design = design
        self.weights = self._exact.weights
        self.psi = self._exact.psi
        self._dirty = {side for side, __ in design}
        # caches, keyed by side
        self._fractions: Dict = {}
        self._fractions_by_net: Dict = {}
        self._section_id: Dict = {}
        self._omega: Dict = {}
        self._wirelength: Dict = {}

    # -- cache maintenance ------------------------------------------------------

    def mark_dirty(self, side) -> None:
        """Invalidate the caches of one side after a swap there."""
        self._dirty.add(side)

    def _refresh(self, assignments: Dict) -> None:
        for side in list(self._dirty):
            assignment = assignments[side]
            quadrant = self.design.quadrants[side]
            exact = self._exact
            # pad fractions of this side, per network
            power, ground = [], []
            for net in quadrant.netlist:
                if net.net_type is NetType.POWER:
                    power.append(
                        self.design.ring_position(side, assignment.slot_of(net.id))
                    )
                elif net.net_type is NetType.GROUND:
                    ground.append(
                        self.design.ring_position(side, assignment.slot_of(net.id))
                    )
            self._fractions_by_net[side] = {
                NetType.POWER: power,
                NetType.GROUND: ground,
            }
            self._section_id[side] = exact.sections.trackers[side].increased_density(
                assignment
            )
            self._omega[side] = omega_of_assignment(assignment, self.psi)
            if exact._wl_initial is not None:
                from ..routing.wirelength import total_flyline_length

                self._wirelength[side] = total_flyline_length(assignment)
        self._dirty.clear()

    # -- collected terms ----------------------------------------------------------

    def _collect_fractions(self, net_type) -> list:
        collected = []
        for side in self.design.sides:
            by_net = self._fractions_by_net[side]
            if net_type is None:
                collected.extend(by_net[NetType.POWER])
                collected.extend(by_net[NetType.GROUND])
            else:
                collected.extend(by_net[net_type])
        return collected

    def ir_term(self, assignments: Dict) -> float:
        self._refresh(assignments)
        exact = self._exact
        if exact.split_networks:
            raw = sum(
                exact.ir_proxy(self._collect_fractions(network))
                for network in (NetType.POWER, NetType.GROUND)
            )
        else:
            raw = exact.ir_proxy(self._collect_fractions(exact.net_type))
        return raw / exact._ir_initial

    def density_term(self, assignments: Dict) -> float:
        self._refresh(assignments)
        return float(max(self._section_id.values()))

    def bonding_term(self, assignments: Dict) -> float:
        self._refresh(assignments)
        return sum(self._omega.values()) / self._exact._omega_initial

    def wirelength_term(self, assignments: Dict) -> float:
        if self._exact._wl_initial is None:
            return 0.0
        self._refresh(assignments)
        return sum(self._wirelength.values()) / self._exact._wl_initial

    def total(self, assignments: Dict) -> float:
        value = self.weights.ir * self.ir_term(assignments)
        value += self.weights.density * self.density_term(assignments)
        if self.psi > 1:
            value += self.weights.bonding * self.bonding_term(assignments)
        if self.weights.wirelength > 0:
            value += self.weights.wirelength * self.wirelength_term(assignments)
        if not math.isfinite(value):
            # Name the poisoned term: a NaN total silently accepted by the
            # SA loop would corrupt every later delta.
            terms = {
                "ir": self.ir_term(assignments),
                "density": self.density_term(assignments),
            }
            if self.psi > 1:
                terms["bonding"] = self.bonding_term(assignments)
            if self.weights.wirelength > 0:
                terms["wirelength"] = self.wirelength_term(assignments)
            bad = [name for name, term in terms.items() if not math.isfinite(term)]
            raise NonFiniteCostError(
                f"exchange cost is non-finite ({value!r}); "
                f"offending term(s): {', '.join(bad) or 'total only'}"
            )
        return value

    def breakdown(self, assignments: Dict) -> Dict[str, float]:
        self.mark_all_dirty()
        result = {
            "ir": self.ir_term(assignments),
            "density": self.density_term(assignments),
        }
        if self.psi > 1:
            result["bonding"] = self.bonding_term(assignments)
        if self.weights.wirelength > 0:
            result["wirelength"] = self.wirelength_term(assignments)
        result["total"] = self.total(assignments)
        return result

    def mark_all_dirty(self) -> None:
        """Invalidate everything (used when whole assignments are replaced)."""
        self._dirty = {side for side, __ in self.design}
