"""Move generation for the finger/pad exchange (paper Fig. 14, lines 4-8).

A move exchanges two *adjacent* finger slots within one quadrant:

* in a 2-D IC (``psi == 1``) only power pads are picked — signal pad
  positions do not influence core IR-drop;
* in a stacking IC (``psi > 1``) any pad may be picked, because the bonding
  term rewards interleaving tiers on signal pads too;
* the swap must respect the range constraint: the two nets' balls must lie
  in different bump rows, otherwise the monotonic order would break and "the
  monotonic routing result is non-existent in the package".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..assign import swap_is_legal
from ..geometry import Side
from ..package import PackageDesign


@dataclass(frozen=True)
class SwapMove:
    """Exchange of the nets on two adjacent finger slots of one side."""

    side: Side
    slot_a: int
    slot_b: int


class MoveGenerator:
    """Draws random legal adjacent swaps over a whole design."""

    def __init__(
        self,
        design: PackageDesign,
        assignments: Dict,
        power_only: Optional[bool] = None,
        max_attempts: int = 16,
    ) -> None:
        self.design = design
        self.assignments = assignments
        psi = design.stacking.tier_count
        # Paper Fig. 14 lines 4-7: power pads only for 2-D ICs.
        self.power_only = (psi == 1) if power_only is None else power_only
        self.max_attempts = max_attempts
        self._candidates = self._collect_candidates()

    def _collect_candidates(self) -> List[Tuple[Side, int]]:
        """(side, net_id) pairs eligible for being picked as F_a."""
        candidates: List[Tuple[Side, int]] = []
        for side, quadrant in self.design:
            for net in quadrant.netlist:
                if self.power_only and not net.net_type.is_supply:
                    continue
                candidates.append((side, net.id))
        return candidates

    def propose(self, rng: random.Random) -> Optional[SwapMove]:
        """One random legal move, or ``None`` if the attempts ran out."""
        if not self._candidates:
            return None
        for __ in range(self.max_attempts):
            side, net_id = rng.choice(self._candidates)
            assignment = self.assignments[side]
            slot = assignment.slot_of(net_id)
            direction = rng.choice((-1, 1))
            neighbour = slot + direction
            if not (1 <= neighbour <= assignment.slot_count):
                neighbour = slot - direction
                if not (1 <= neighbour <= assignment.slot_count):
                    continue
            lo, hi = sorted((slot, neighbour))
            if swap_is_legal(assignment, lo, hi):
                return SwapMove(side=side, slot_a=lo, slot_b=hi)
        return None

    def apply(self, move: SwapMove) -> None:
        self.assignments[move.side].swap_slots(move.slot_a, move.slot_b)

    def undo(self, move: SwapMove) -> None:
        # Swapping the same pair again restores the previous state.
        self.assignments[move.side].swap_slots(move.slot_a, move.slot_b)
