"""Finger/pad exchange: SA engine, Eq.-3 cost, ID tracking and bonding metric."""

from .annealer import SAParams, SAStats, SimulatedAnnealer
from .checkpoint import SACheckpointer, SimulatedCrash
from .bonding import (
    bonding_improvement,
    group_masks,
    omega,
    omega_of_assignment,
    omega_of_design,
)
from .cost import CostWeights, ExchangeCost
from .exchanger import ExchangeResult, FingerPadExchanger
from .fastcost import CachedExchangeCost
from .greedy import GreedyExchanger
from .moves import MoveGenerator, SwapMove
from .sections import DesignSectionTracker, SectionTracker, interval_numbers
from .tempering import initial_chain_state, run_segment, swap_accept

__all__ = [
    "CachedExchangeCost",
    "CostWeights",
    "DesignSectionTracker",
    "ExchangeCost",
    "ExchangeResult",
    "FingerPadExchanger",
    "GreedyExchanger",
    "MoveGenerator",
    "SACheckpointer",
    "SAParams",
    "SAStats",
    "SectionTracker",
    "SimulatedAnnealer",
    "SimulatedCrash",
    "SwapMove",
    "bonding_improvement",
    "group_masks",
    "initial_chain_state",
    "interval_numbers",
    "run_segment",
    "swap_accept",
    "omega",
    "omega_of_assignment",
    "omega_of_design",
]
