"""Deterministic greedy exchange — the SA-free baseline.

The paper chose simulated annealing for the exchange step; the obvious
cheaper alternative is pure hill-climbing (sweep all adjacent legal swaps,
keep strict improvements, repeat).  This module provides it, sharing the
exact Eq.-3 cost with the SA exchanger, so the two are directly comparable
— ``benchmarks/bench_ablation.py`` quantifies what the annealing actually
buys (escape from the quantized-ID plateaus).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..package import NetType, PackageDesign
from .annealer import SAStats
from .cost import CostWeights
from .exchanger import ExchangeResult, FingerPadExchanger


class GreedyExchanger(FingerPadExchanger):
    """Hill-climb-only exchange: the polish phase applied from the start.

    Reuses :class:`FingerPadExchanger` with a degenerate one-move schedule,
    so results, bookkeeping and the returned :class:`ExchangeResult` are
    fully comparable with the SA runs.
    """

    def __init__(
        self,
        design: PackageDesign,
        weights: Optional[CostWeights] = None,
        net_type: Optional[NetType] = NetType.POWER,
        sweeps: int = 50,
        **kwargs,
    ) -> None:
        from .annealer import SAParams

        super().__init__(
            design,
            weights=weights,
            # one freezing-cold move: effectively "skip the SA"
            params=SAParams(
                initial_temp=1e-9,
                final_temp=0.9e-9,
                cooling=0.5,
                moves_per_temp=1,
            ),
            net_type=net_type,
            polish_passes=sweeps,
            **kwargs,
        )

    def run(self, assignments: Dict, seed: Optional[int] = None) -> ExchangeResult:
        # seed is irrelevant (no stochastic phase) but kept for API parity
        return super().run(assignments, seed=seed or 0)
