"""Generic simulated-annealing engine (Kirkpatrick et al. [7]).

The paper's finger/pad exchange (Fig. 14) is a classic SA loop: random
neighbour move, Metropolis acceptance, geometric cooling.  This module
provides the schedule and loop; problem specifics (move proposal, apply,
undo, cost) come in as callables so the engine is reusable and testable in
isolation.

Note on acceptance: the paper's pseudocode writes the uphill test as
``Random(0,1) > exp(-dC/T)`` which *rejects* with the Boltzmann probability —
an obvious typo, as it would accept worse moves more eagerly the worse they
are.  We implement the standard Metropolis criterion
``Random(0,1) < exp(-dC/T)``.
"""

from __future__ import annotations

import functools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import NonFiniteCostError


@functools.lru_cache(maxsize=4096)
def _executed_steps(initial_temp: float, final_temp: float, cooling: float) -> int:
    """Cooling steps the ``optimize`` loop will actually execute.

    Counted by replaying the loop's own multiplicative recurrence
    (``temperature *= cooling`` until ``temperature <= final_temp``).  The
    closed form ``ceil(log(final/initial) / log(cooling))`` is off by one
    whenever float rounding lands ``initial * cooling**n`` on the other
    side of ``final_temp`` than exact arithmetic would — sequential
    multiplication and the power/log round differently — which skewed
    ``sa.begin`` step counts, curve budgets and progress math.
    """
    steps = 0
    temperature = initial_temp
    while temperature > final_temp:
        temperature *= cooling
        steps += 1
    return steps

#: Minimum cost improvement that counts as a new best (and triggers a
#: snapshot).  Keeps best-state selection invariant to the ~1e-16 rounding
#: differences between cost backends; genuine Eq.-3 deltas are >= ~1e-6.
BEST_IMPROVEMENT_EPS = 1e-12


@dataclass(frozen=True)
class SAParams:
    """Annealing schedule parameters (paper Fig. 14, line 2)."""

    initial_temp: float = 0.03
    final_temp: float = 1e-4
    cooling: float = 0.95
    moves_per_temp: int = 150

    def __post_init__(self) -> None:
        if self.initial_temp <= 0 or self.final_temp <= 0:
            raise ValueError("temperatures must be positive")
        if self.final_temp > self.initial_temp:
            raise ValueError("final temperature must not exceed the initial one")
        if not (0.0 < self.cooling < 1.0):
            raise ValueError("cooling factor must be in (0, 1)")
        if self.moves_per_temp < 1:
            raise ValueError("moves_per_temp must be >= 1")

    def temperature_steps(self) -> int:
        """Number of cooling steps the schedule will execute.

        Exact by construction: replays the same ``temperature *= cooling``
        recurrence the annealing loop runs (see :func:`_executed_steps`),
        so the reported count always equals ``len(stats.cost_trace)``.
        """
        return _executed_steps(self.initial_temp, self.final_temp, self.cooling)

    def total_moves(self) -> int:
        """Total move attempts over the whole schedule."""
        return self.temperature_steps() * self.moves_per_temp


@dataclass
class SAStats:
    """Bookkeeping of one annealing run."""

    proposed: int = 0
    infeasible: int = 0
    accepted: int = 0
    accepted_uphill: int = 0
    #: Moves rejected because their cost delta was NaN/inf (see
    #: ``SimulatedAnnealer.optimize``; normally 0).
    nonfinite_rejected: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0
    best_cost: float = 0.0
    cost_trace: List[float] = field(default_factory=list)
    #: Snapshot of the best state seen (whatever the snapshot callable
    #: returned); ``None`` when no snapshot callable was supplied.
    best_snapshot: Optional[object] = None

    @property
    def acceptance_ratio(self) -> float:
        feasible = self.proposed - self.infeasible
        return self.accepted / feasible if feasible else 0.0


class SimulatedAnnealer:
    """Schedule-driven annealer over externally managed state.

    The caller owns the state; the annealer drives it through callables:

    ``propose(rng)``
        Return an opaque move object, or ``None`` when no feasible move was
        found this attempt.
    ``apply(move)`` / ``undo(move)``
        Mutate / revert the state.
    ``cost()``
        Current scalar cost of the state.
    ``snapshot()`` (optional)
        Capture the state; the best snapshot seen is stored on the stats
        object as ``best_snapshot``.
    """

    def __init__(self, params: Optional[SAParams] = None) -> None:
        self.params = params or SAParams()

    def optimize(
        self,
        propose: Callable,
        apply: Callable,
        undo: Callable,
        cost: Callable[[], float],
        seed: Optional[int] = None,
        snapshot: Optional[Callable] = None,
        checkpoint=None,
        curve_label: Optional[str] = None,
    ) -> SAStats:
        """Run the schedule; optionally checkpointed for crash-safe resume.

        *checkpoint* is a bound
        :class:`~repro.exchange.checkpoint.SACheckpointer`: every
        ``checkpoint.interval`` proposed moves the full run state (problem
        state via ``checkpoint.capture``, rng Mersenne state, accumulated
        temperature, mid-step counters, stats, best-so-far) is atomically
        persisted.  When a valid checkpoint exists at start, the run
        resumes from it and replays the exact continuation the
        uninterrupted run would have produced — move for move, bit for
        bit.  A completed run clears its checkpoint.
        """
        import time

        from ..obs.metrics import SA_DELTA_BUCKETS
        from ..runtime.telemetry import get_telemetry

        telemetry = get_telemetry()
        # Hoist the enabled check out of the move loop: with telemetry off
        # the inner loop must touch no telemetry object at all (the ~16k
        # moves of a production run are gated by ``benchmarks/bench_obs.py``
        # to within 5% of an uninstrumented loop).
        track = telemetry.enabled
        delta_histogram = (
            telemetry.metrics.histogram("sa.delta", SA_DELTA_BUCKETS) if track else None
        )
        curve = None
        if track:
            from ..obs.curves import CurveRecorder

            # One sample per temperature step, stride-doubled to a bounded
            # point budget; shipped as a single sa.curve event at the end
            # (see repro.obs.curves).  Lives entirely outside the move loop.
            curve = CurveRecorder()
        rng = random.Random(seed)
        params = self.params
        stats = SAStats()
        current_cost = cost()
        if not math.isfinite(current_cost):
            # There is no way to anneal from a poisoned cost: every delta
            # would be NaN and Metropolis acceptance would be arbitrary.
            raise NonFiniteCostError(
                f"initial annealing cost is non-finite: {current_cost!r}"
            )
        stats.initial_cost = current_cost
        stats.best_cost = current_cost
        best_snapshot = snapshot() if snapshot else None
        telemetry.emit(
            "sa.begin",
            initial_cost=current_cost,
            initial_temp=params.initial_temp,
            steps=params.temperature_steps(),
            moves_per_temp=params.moves_per_temp,
        )

        loop_started = time.perf_counter()
        temperature = params.initial_temp
        start_move = 0
        step_proposed = step_accepted = 0
        resumed = False
        if checkpoint is not None:
            if snapshot is None or checkpoint.capture is None:
                raise ValueError(
                    "checkpointing requires a snapshot callable and a bound "
                    "checkpointer (SACheckpointer.bind)"
                )
            payload = checkpoint.load()
            if payload is not None:
                # Restore in dependency order: problem state first (so the
                # cost structures rebuild), then the exact scalar/rng state
                # the uninterrupted run had at the moment of the save.
                checkpoint.restore(payload["state"])
                rng_state = payload["rng"]
                rng.setstate((rng_state[0], tuple(rng_state[1]), rng_state[2]))
                stats.proposed = int(payload["proposed"])
                stats.infeasible = int(payload["infeasible"])
                stats.accepted = int(payload["accepted"])
                stats.accepted_uphill = int(payload["accepted_uphill"])
                stats.nonfinite_rejected = int(payload["nonfinite_rejected"])
                stats.initial_cost = payload["initial_cost"]
                stats.best_cost = payload["best_cost"]
                stats.cost_trace = list(payload["cost_trace"])
                best = payload.get("best")
                best_snapshot = checkpoint.decode(best) if best is not None else None
                current_cost = payload["current_cost"]
                temperature = payload["temperature"]
                start_move = int(payload["move_in_step"])
                step_proposed = int(payload["step_proposed"])
                step_accepted = int(payload["step_accepted"])
                resumed = True
                telemetry.emit(
                    "checkpoint.resumed",
                    proposed=stats.proposed,
                    temperature=round(temperature, 8),
                )
                telemetry.count("checkpoint.resumes")
        # Hoisted out of the move loop: the cadence test runs every move,
        # so it must cost one local int check, not two attribute loads.
        checkpoint_interval = checkpoint.interval if checkpoint is not None else 0
        while temperature > params.final_temp:
            if resumed:
                # First step after a resume continues mid-step: keep the
                # restored per-step counters and move index.
                resumed = False
            else:
                step_proposed = step_accepted = 0
            for move_index in range(start_move, params.moves_per_temp):
                stats.proposed += 1
                step_proposed += 1
                move = propose(rng)
                if move is None:
                    stats.infeasible += 1
                else:
                    apply(move)
                    new_cost = cost()
                    delta = new_cost - current_cost
                    if not math.isfinite(delta):
                        # A NaN/inf delta would make `random() < exp(-delta/T)`
                        # silently accept a poisoned state (NaN comparisons are
                        # False, but delta <= 0 already misfires for -inf, and a
                        # NaN new_cost corrupts every later delta).  Reject the
                        # move, keep the last trusted state, and record it.
                        undo(move)
                        stats.nonfinite_rejected += 1
                        telemetry.count("sa.nonfinite_rejected")
                        telemetry.emit(
                            "sa.nonfinite",
                            cost=repr(new_cost),
                            temperature=round(temperature, 8),
                        )
                    else:
                        if delta_histogram is not None:
                            delta_histogram.record(delta)
                        # Draw the Metropolis uniform unconditionally so the rng
                        # stream advances identically for every finite applied move.
                        # With the short-circuit draw, a zero-delta move computed as
                        # 0.0 by one cost backend and +-1e-16 by another would
                        # consume different amounts of randomness and desync the
                        # backends' move sequences from that point on.
                        uniform = rng.random()
                        if delta <= 0 or uniform < math.exp(-delta / temperature):
                            current_cost = new_cost
                            stats.accepted += 1
                            step_accepted += 1
                            if delta > 0:
                                stats.accepted_uphill += 1
                            # Require a material improvement before re-snapshotting:
                            # cost backends agree only to float rounding (~1e-16), so
                            # a strict `<` would let one backend re-snapshot at an
                            # equal-cost revisit the other skips, and the restored
                            # "best" states would diverge.  Real Eq.-3 improvements
                            # are orders of magnitude above this tolerance (it is the
                            # same margin the polish stage uses).
                            if current_cost < stats.best_cost - BEST_IMPROVEMENT_EPS:
                                stats.best_cost = current_cost
                                if snapshot:
                                    best_snapshot = snapshot()
                        else:
                            undo(move)
                # Outside the move if/else chain — never behind a skipped
                # path — so the cadence cannot silently miss a beat when it
                # lands on an infeasible or non-finite move.
                if checkpoint_interval and stats.proposed % checkpoint_interval == 0:
                    rng_state = rng.getstate()
                    checkpoint.save(
                        {
                            "proposed": stats.proposed,
                            "infeasible": stats.infeasible,
                            "accepted": stats.accepted,
                            "accepted_uphill": stats.accepted_uphill,
                            "nonfinite_rejected": stats.nonfinite_rejected,
                            "initial_cost": stats.initial_cost,
                            "best_cost": stats.best_cost,
                            "cost_trace": list(stats.cost_trace),
                            "current_cost": current_cost,
                            "temperature": temperature,
                            "move_in_step": move_index + 1,
                            "step_proposed": step_proposed,
                            "step_accepted": step_accepted,
                            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
                            "state": checkpoint.capture(),
                            "best": (
                                checkpoint.encode(best_snapshot)
                                if best_snapshot is not None
                                else None
                            ),
                        }
                    )
            start_move = 0
            stats.cost_trace.append(current_cost)
            if track:
                acceptance = (
                    step_accepted / step_proposed if step_proposed else 0.0
                )
                telemetry.emit(
                    "sa.step",
                    temperature=round(temperature, 8),
                    cost=current_cost,
                    acceptance=acceptance,
                )
                curve.observe(
                    stats.proposed, current_cost, stats.best_cost,
                    acceptance, temperature,
                )
            temperature *= params.cooling

        stats.final_cost = current_cost
        stats.best_snapshot = best_snapshot
        if checkpoint is not None:
            # A finished anneal leaves no checkpoint behind: resuming a
            # completed schedule would run moves past it.
            checkpoint.clear()
        if track:
            elapsed = time.perf_counter() - loop_started
            telemetry.metrics.gauge("sa.acceptance_ratio").set(
                round(stats.acceptance_ratio, 6)
            )
            telemetry.emit(
                "sa.end",
                final_cost=stats.final_cost,
                best_cost=stats.best_cost,
                proposed=stats.proposed,
                accepted=stats.accepted,
                accepted_uphill=stats.accepted_uphill,
                acceptance_ratio=stats.acceptance_ratio,
                seconds=round(elapsed, 6),
                moves_per_s=round(stats.proposed / elapsed, 1) if elapsed else 0.0,
                nonfinite_rejected=stats.nonfinite_rejected,
            )
            if curve is not None and curve.observed:
                curve.emit(telemetry, circuit=curve_label)
        return stats
