"""Crash-safe SA checkpointing: periodic atomic snapshots of a live anneal.

A checkpoint captures *everything* the annealer's future depends on —
the kernel's full state (slot arrays plus the wirelength float
accumulator and its resync phase), the complete ``random.Random``
Mersenne state, the accumulated temperature float, the mid-step move
index, every stats counter, the cost trace, and the best-so-far snapshot
— so a resumed run replays the exact move sequence the uninterrupted run
would have executed: same accept/reject trace, same final assignment,
bit for bit.  ``repro.fuzz``'s ``checkpoint`` oracle enforces exactly
that equivalence on seeded random cases.

Writes are atomic and durable (temp file + fsync + ``os.replace`` + dir
fsync, the :mod:`repro.runtime.atomic` discipline), so a kill at any
instant leaves either the previous checkpoint or the new one, never a
torn file.  A checkpoint that *is* damaged anyway (disk corruption, a
foreign writer) is detected by its payload digest and schema stamp:
by default it is renamed aside to ``<path>.corrupt`` and the run
restarts from scratch — degraded, never crashed — while
``strict=True`` raises :class:`~repro.errors.CheckpointIntegrityError`
for callers that prefer a typed failure.  A checkpoint whose ``run_key``
does not match the requesting run (different seed, schedule, or
baseline) is simply treated as absent: resuming it would silently
answer a different question.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, List, Optional

from ..errors import CheckpointIntegrityError
from ..runtime.atomic import atomic_write_text
from ..runtime.telemetry import get_telemetry

#: Bump when the checkpoint payload layout changes incompatibly.
CHECKPOINT_VERSION = 1


class SimulatedCrash(RuntimeError):
    """Raised by ``interrupt_after_saves`` to emulate dying mid-anneal.

    A test/fuzz knob only: the chaos harness and the ``checkpoint``
    fuzz oracle let the annealer run until the Nth checkpoint lands on
    disk, then kill it at the worst possible instant — right after a
    durable write, mid-step — and assert the resumed run is identical.
    """


def _identity(value):
    return value


def encode_arrays(arrays) -> List[list]:
    """Slot-array snapshots (list of int64 ndarrays) → JSON lists."""
    return [[int(value) for value in array] for array in arrays]


def decode_arrays(data):
    """Inverse of :func:`encode_arrays` (lazy numpy import)."""
    import numpy as np

    return [np.asarray(array, dtype=np.int64) for array in data]


def _payload_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SACheckpointer:
    """Periodic, atomic, digest-validated SA checkpoints at one path.

    ``interval`` is the cadence in proposed moves.  ``run_key`` names the
    run (seed + schedule + baseline); the exchanger derives one
    automatically when left ``None``.  ``capture``/``restore`` and
    ``encode``/``decode`` are bound by the problem layer (see
    :meth:`bind`): capture/restore move the *full* kernel state,
    encode/decode translate best-so-far snapshots to and from JSON.

    ``interrupt_after_saves=N`` raises :class:`SimulatedCrash` once the
    Nth save has durably landed — the fault-injection hook the fuzz
    oracle and chaos harness use.
    """

    def __init__(
        self,
        path,
        interval: int = 1000,
        run_key: Optional[str] = None,
        strict: bool = False,
        durable: bool = True,
        interrupt_after_saves: Optional[int] = None,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.path = Path(path).expanduser()
        self.interval = int(interval)
        self.run_key = run_key
        self.strict = bool(strict)
        self.durable = bool(durable)
        self.interrupt_after_saves = interrupt_after_saves
        self.saves = 0
        self.capture: Optional[Callable[[], dict]] = None
        self.restore: Optional[Callable[[dict], None]] = None
        self.encode: Callable = _identity
        self.decode: Callable = _identity

    def bind(
        self,
        capture: Callable[[], dict],
        restore: Callable[[dict], None],
        encode: Callable = _identity,
        decode: Callable = _identity,
    ) -> "SACheckpointer":
        """Attach the problem layer's state movers; returns self."""
        self.capture = capture
        self.restore = restore
        self.encode = encode
        self.decode = decode
        return self

    # -- persistence -------------------------------------------------------

    def save(self, payload: dict) -> None:
        """Atomically persist *payload*; counts saves and may simulate a
        crash right after the write lands (``interrupt_after_saves``)."""
        document = {
            "schema": CHECKPOINT_VERSION,
            "run_key": self.run_key,
            "digest": _payload_digest(payload),
            "payload": payload,
        }
        data = json.dumps(document, sort_keys=True)
        atomic_write_text(self.path, data, durable=self.durable)
        self.saves += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("checkpoint.saves")
            telemetry.emit(
                "checkpoint.saved",
                proposed=int(payload.get("proposed", 0)),
                bytes=len(data),
                path=str(self.path),
            )
        if (
            self.interrupt_after_saves is not None
            and self.saves >= self.interrupt_after_saves
        ):
            raise SimulatedCrash(
                f"simulated crash after checkpoint save #{self.saves}"
            )

    def load(self) -> Optional[dict]:
        """The validated checkpoint payload, or ``None`` to start fresh.

        Missing file and foreign ``run_key`` read as absent.  A corrupt
        file (unparseable, wrong schema, digest mismatch) is renamed
        aside to ``<path>.corrupt`` and read as absent — or raises
        :class:`CheckpointIntegrityError` under ``strict``.
        """
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            return self._reject(f"unreadable: {exc}")
        try:
            document = json.loads(raw)
            if not isinstance(document, dict):
                raise ValueError("checkpoint is not a JSON object")
        except ValueError as exc:
            return self._reject(f"unparseable: {exc}")
        if document.get("schema") != CHECKPOINT_VERSION:
            return self._reject(f"schema {document.get('schema')!r} unsupported")
        payload = document.get("payload")
        if not isinstance(payload, dict):
            return self._reject("missing payload")
        if document.get("digest") != _payload_digest(payload):
            return self._reject("payload digest mismatch")
        if self.run_key is not None and document.get("run_key") != self.run_key:
            # Another run's checkpoint, not damage: leave the file alone
            # (the next save overwrites it) and start this run fresh.
            return None
        return payload

    def _reject(self, reason: str) -> None:
        telemetry = get_telemetry()
        telemetry.count("checkpoint.invalid")
        telemetry.emit("checkpoint.invalid", reason=reason, path=str(self.path))
        if self.strict:
            raise CheckpointIntegrityError(
                f"checkpoint {self.path} is corrupt: {reason}"
            )
        aside = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, aside)
        except OSError:
            pass
        return None

    def clear(self) -> None:
        """Delete the checkpoint (a completed run leaves no stale state —
        resuming a *finished* anneal would append moves past the schedule)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - permission races
            pass
