"""Bonding-wire quality metric ``omega`` for stacking ICs (paper section 3.2).

Every finger carries one bonding wire to a pad on some die tier.  With
``psi`` tiers, each tier gets a unique one-hot parameter ``UP_d`` and the
finger sequence is chopped into ``ceil(alpha / psi)`` consecutive groups of
(at most) ``psi`` fingers.  A group's members OR their tier parameters
together; ``omega`` is the total count of zero bits over all groups.

``omega == 0`` means every group touches every tier — consecutive fingers
serve different tiers, so the bonding wires fan out without crossing long
distances (the ideal of Fig. 4(B)).  The paper's example: in Fig. 4(A)
omega = 6, in Fig. 4(B) omega = 0.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..assign import Assignment
from ..errors import ExchangeError


def group_masks(tiers_in_finger_order: Sequence[int], psi: int) -> List[int]:
    """OR-ed tier bitmask of each consecutive finger group."""
    if psi < 1:
        raise ExchangeError(f"tier count must be >= 1, got {psi}")
    masks: List[int] = []
    for start in range(0, len(tiers_in_finger_order), psi):
        mask = 0
        for tier in tiers_in_finger_order[start:start + psi]:
            if not (1 <= tier <= psi):
                raise ExchangeError(f"tier {tier} outside 1..{psi}")
            mask |= 1 << (tier - 1)
        masks.append(mask)
    return masks


def omega(tiers_in_finger_order: Sequence[int], psi: int) -> int:
    """Total zero-bit count over all finger groups (lower is better)."""
    full = (1 << psi) - 1
    return sum(
        bin(full & ~mask).count("1") for mask in group_masks(tiers_in_finger_order, psi)
    )


def omega_of_assignment(assignment: Assignment, psi: int) -> int:
    """``omega`` of one quadrant's assignment."""
    quadrant = assignment.quadrant
    tiers = [quadrant.net(net_id).tier for net_id in assignment.order]
    return omega(tiers, psi)


def omega_of_design(assignments: Dict, psi: int) -> int:
    """``omega`` summed over every quadrant of a design."""
    return sum(
        omega_of_assignment(assignment, psi) for assignment in assignments.values()
    )


def bonding_improvement(omega_before: int, omega_after: int) -> float:
    """Table 3's "improved bonding wire" ratio.

    The paper computes "the difference for '0' bit count between the DFA
    step and the finger/pad exchange step"; we report it relative to the
    group bit budget so designs of different sizes are comparable.  A zero
    ``omega_before`` (already perfect) yields 0 improvement.
    """
    if omega_before <= 0:
        return 0.0
    return (omega_before - omega_after) / omega_before
