"""The exchange cost function (paper Eq. 3).

    Cost = lambda * delta_IR + rho * ID + phi * omega

``delta_IR`` is the compact IR proxy (power-pad gap spread), ``ID`` the
increased density of Eq. 2 and ``omega`` the bonding-wire zero-bit count.
Each term is normalized against the state right after the congestion-driven
assignment so the weights compare like against like:

* the IR term is ``compact_cost / compact_cost_initial`` (1.0 at the start,
  < 1 when pads spread out);
* ID is already a small relative integer (0 at the start);
* the omega term is ``omega / max(omega_initial, 1)`` (1.0 at the start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..package import NetType, PackageDesign
from ..power import compact_ir_cost, supply_pad_fractions
from .bonding import omega_of_design
from .sections import DesignSectionTracker


@dataclass(frozen=True)
class CostWeights:
    """The lambda / rho / phi weights of Eq. 3, plus one optional guard.

    ``wirelength`` (default 0: off, the paper's exact Eq. 3) penalizes
    growth of the total finger->via flyline during the exchange, protecting
    the Table-2 wirelength gains when many signal pads move (stacking runs).
    """

    ir: float = 1.0
    density: float = 0.08
    bonding: float = 0.5
    wirelength: float = 0.0

    def __post_init__(self) -> None:
        if min(self.ir, self.density, self.bonding, self.wirelength) < 0:
            raise ValueError("cost weights must be non-negative")


class ExchangeCost:
    """Evaluates Eq. 3 for a design under its current assignments."""

    def __init__(
        self,
        design: PackageDesign,
        baseline_assignments: Dict,
        weights: Optional[CostWeights] = None,
        net_type: Optional[NetType] = NetType.POWER,
        ir_proxy=None,
        track_all_rows: bool = True,
        split_networks: bool = False,
    ) -> None:
        self.design = design
        self.weights = weights or CostWeights()
        self.net_type = net_type
        self.psi = design.stacking.tier_count
        self.sections = DesignSectionTracker(
            baseline_assignments, all_rows=track_all_rows
        )
        # ir_proxy maps a list of pad perimeter fractions to a scalar cost;
        # the default is the paper's uniform-demand gap-spread proxy, but a
        # demand-weighted proxy (repro.power.weighted_compact_cost) can be
        # injected for chips with hot blocks.
        self.ir_proxy = ir_proxy or compact_ir_cost
        # split_networks scores the VDD and VSS networks separately — both
        # must be evenly supplied, not just their union.
        self.split_networks = split_networks
        self._ir_initial = max(self._raw_ir(baseline_assignments), 1e-12)
        self._omega_initial = max(
            omega_of_design(baseline_assignments, self.psi), 1
        )
        self._wl_initial = None
        if self.weights.wirelength > 0:
            self._wl_initial = max(
                self._raw_wirelength(baseline_assignments), 1e-12
            )

    @staticmethod
    def _raw_wirelength(assignments: Dict) -> float:
        from ..routing.wirelength import total_flyline_length

        return sum(
            total_flyline_length(assignment)
            for assignment in assignments.values()
        )

    def _raw_ir(self, assignments: Dict) -> float:
        if self.split_networks:
            return sum(
                self.ir_proxy(
                    supply_pad_fractions(
                        self.design, assignments, net_type=network
                    )
                )
                for network in (NetType.POWER, NetType.GROUND)
            )
        return self.ir_proxy(
            supply_pad_fractions(self.design, assignments, net_type=self.net_type)
        )

    # -- individual terms ------------------------------------------------------

    def ir_term(self, assignments: Dict) -> float:
        """Normalized compact IR proxy (1.0 right after assignment)."""
        return self._raw_ir(assignments) / self._ir_initial

    def density_term(self, assignments: Dict) -> float:
        """Eq. 2's ID over the whole design (0 right after assignment)."""
        return float(self.sections.increased_density(assignments))

    def bonding_term(self, assignments: Dict) -> float:
        """Normalized omega (1.0 right after assignment; 0 when perfect)."""
        return omega_of_design(assignments, self.psi) / self._omega_initial

    def wirelength_term(self, assignments: Dict) -> float:
        """Normalized package flyline length (1.0 right after assignment)."""
        if self._wl_initial is None:
            return 0.0
        return self._raw_wirelength(assignments) / self._wl_initial

    # -- Eq. 3 -------------------------------------------------------------------

    def total(self, assignments: Dict) -> float:
        """The full Eq.-3 cost of the current assignments."""
        value = self.weights.ir * self.ir_term(assignments)
        value += self.weights.density * self.density_term(assignments)
        if self.psi > 1:
            value += self.weights.bonding * self.bonding_term(assignments)
        if self.weights.wirelength > 0:
            value += self.weights.wirelength * self.wirelength_term(assignments)
        return value

    def breakdown(self, assignments: Dict) -> Dict[str, float]:
        """Per-term values for reports and debugging."""
        result = {
            "ir": self.ir_term(assignments),
            "density": self.density_term(assignments),
        }
        if self.psi > 1:
            result["bonding"] = self.bonding_term(assignments)
        if self.weights.wirelength > 0:
            result["wirelength"] = self.wirelength_term(assignments)
        result["total"] = self.total(assignments)
        return result
