"""The versioned JSON-over-HTTP wire schema of the co-design service.

One request format, one response envelope, both stamped with
``WIRE_SCHEMA_VERSION`` so clients and servers can detect drift the same
way the telemetry schema does (``repro.obs.schema``): adding an optional
field keeps the version, renaming or retyping a required one bumps it,
and a server rejects requests stamped with a *newer* version than it
understands.

Submit request (``POST /v1/jobs``)::

    {
      "schema": 1,                  # wire version (optional, default 1)
      "kind": "codesign",           # a registered job type
      "params": {...},              # JobSpec params (canonical JSON)
      "seed": 7,                    # optional; null derives per-spec
      "wait": true,                 # block until done (default) or 202
      "timeout": 30.0               # max seconds to wait when wait=true
    }

Response envelope (every job-related endpoint)::

    {
      "schema": 1,
      "job": "<64-hex spec digest>",
      "label": "codesign[abc123...]",
      "kind": "codesign",
      "status": "queued" | "running" | "done" | "failed",
      "value": ...,                 # present when done
      "error": "...",               # present when failed
      "error_class": "...",
      "cached": true,               # engine served it from the disk cache
      "deduped": true,              # joined an identical in-flight job
      "attempts": 1,
      "seconds": 0.123
    }

Errors use ``{"schema": 1, "error": {"code": ..., "message": ...,
"problems": [...]}}``.  Validation is exposed as ``(code, message)``
pairs so :func:`repro.verify.check_wire_request` can lift them into a
standard :class:`~repro.verify.diagnostics.VerificationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from ..errors import ReproError
from ..runtime.spec import JobSpec, _canonical

#: Version stamped into every request/response; see the module docstring
#: for the compatibility policy.
WIRE_SCHEMA_VERSION = 1

#: Most permissive request body size the daemon will read (1 MiB): a
#: JobSpec params mapping is small; anything bigger is abuse, not a job.
MAX_BODY_BYTES = 1 << 20


class WireError(ReproError):
    """A request that does not speak the wire schema."""

    def __init__(self, problems: List[Tuple[str, str]]) -> None:
        self.problems = list(problems)
        super().__init__(
            "; ".join(message for _code, message in self.problems)
            or "invalid wire request"
        )


@dataclass(frozen=True)
class SubmitRequest:
    """A validated submit request, ready to become a :class:`JobSpec`."""

    kind: str
    params: Mapping = field(default_factory=dict)
    seed: Optional[int] = None
    wait: bool = True
    timeout: Optional[float] = None

    def spec(self) -> JobSpec:
        return JobSpec(self.kind, dict(self.params), seed=self.seed)


def validate_request(payload) -> List[Tuple[str, str]]:
    """Problems with one submit payload as ``(code, message)`` pairs.

    An empty list means :func:`parse_request` will accept it.  The codes
    are machine-readable (``wire.*``) and double as diagnostic codes in
    :func:`repro.verify.check_wire_request`.
    """
    problems: List[Tuple[str, str]] = []
    if not isinstance(payload, dict):
        return [("wire.not-object", "request body must be a JSON object")]
    version = payload.get("schema", WIRE_SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append(
            ("wire.bad-schema", f"'schema' must be an integer, got {version!r}")
        )
    elif version > WIRE_SCHEMA_VERSION:
        problems.append(
            ("wire.schema-version",
             f"wire schema {version} is newer than supported "
             f"{WIRE_SCHEMA_VERSION}")
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append(
            ("wire.bad-kind", "'kind' must be a non-empty job-type string")
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        problems.append(
            ("wire.bad-params", "'params' must be a JSON object")
        )
    else:
        try:
            _canonical(params)
        except TypeError as exc:  # pragma: no cover - json.loads precludes
            problems.append(("wire.bad-params", f"'params' not canonical: {exc}"))
    seed = payload.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        problems.append(
            ("wire.bad-seed", f"'seed' must be an integer or null, got {seed!r}")
        )
    wait = payload.get("wait", True)
    if not isinstance(wait, bool):
        problems.append(
            ("wire.bad-wait", f"'wait' must be a boolean, got {wait!r}")
        )
    timeout = payload.get("timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float))
        or isinstance(timeout, bool)
        or timeout <= 0
    ):
        problems.append(
            ("wire.bad-timeout",
             f"'timeout' must be a positive number or null, got {timeout!r}")
        )
    for key in payload:
        if key not in ("schema", "kind", "params", "seed", "wait", "timeout"):
            problems.append(
                ("wire.unknown-field", f"unknown request field {key!r}")
            )
    return problems


def parse_request(payload) -> SubmitRequest:
    """Validate *payload* into a :class:`SubmitRequest` (raises WireError)."""
    problems = validate_request(payload)
    if problems:
        raise WireError(problems)
    timeout = payload.get("timeout")
    return SubmitRequest(
        kind=payload["kind"],
        params=dict(payload.get("params", {})),
        seed=payload.get("seed"),
        wait=payload.get("wait", True),
        timeout=float(timeout) if timeout is not None else None,
    )


def error_body(code: str, message: str, problems=None) -> dict:
    """The error half of the wire protocol."""
    body = {"schema": WIRE_SCHEMA_VERSION, "error": {"code": code, "message": message}}
    if problems:
        body["error"]["problems"] = [
            {"code": c, "message": m} for c, m in problems
        ]
    return body
