"""The long-running co-design daemon: ``repro serve``.

A stdlib-only asyncio HTTP/1.1 server in front of the
:class:`~repro.runtime.JobEngine`:

- **Admission + dedup** — every submit becomes a :class:`JobSpec`; its
  content digest is the job id, so N clients posting the same design
  join one in-flight record instead of spawning N runs (and a completed
  digest is answered from memory before the disk cache is even asked).
- **Micro-batching** — distinct admitted specs are coalesced for
  ``batch_window`` seconds (up to ``batch_max``) and dispatched as one
  ``JobEngine.run`` call on a warm persistent worker pool, amortizing
  engine overhead across requests.
- **Backpressure** — more than ``queue_limit`` unfinished jobs rejects
  new work with HTTP 429 instead of accepting unbounded queues.
- **Progress streaming** — every telemetry event attributed to a job
  (``sa.step`` acceptance curve, ``job.done``, cache events from
  :mod:`repro.obs`) is buffered and re-served live as server-sent
  events on ``GET /v1/jobs/<digest>/events``.
- **Graceful lifecycle** — SIGTERM/SIGINT stop admissions, drain
  in-flight jobs up to ``drain_deadline`` seconds, flush the trace sink,
  release the worker pool and exit ``128+signum``.

- **Live telemetry plane** — every telemetry event also feeds a
  process-wide :class:`~repro.obs.live.LiveRegistry`; ``GET /metrics``
  scrapes it in Prometheus text exposition format and ``GET /v1/stats``
  returns the same aggregate as JSON, including per-endpoint request
  latency histograms, queue/in-flight gauges and dedup/429 counters.

Endpoints (see ``docs/serving.md`` for the full wire reference)::

    GET  /healthz                   liveness + counters + cache stats
    GET  /metrics                   Prometheus text exposition (v0.0.4)
    GET  /v1/stats                  live metric aggregate as JSON
    GET  /v1/schema                 wire/event schema versions, job kinds
    POST /v1/jobs                   submit (wire request; 200/202/400/429)
    GET  /v1/jobs/<digest>          status/result envelope
    GET  /v1/jobs/<digest>/events   SSE progress stream
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..obs.live import LIVE_SCHEMA, REQUEST_SECONDS_BUCKETS, LiveRegistry
from ..obs.schema import SCHEMA_VERSION
from ..runtime import JobEngine, JobJournal, JsonlSink, ResultCache, Telemetry
from ..runtime.journal import spec_from_record
from ..runtime.spec import job_types, resolve_job_type
from .state import DONE, FAILED, RUNNING, EventBus, JobRecord, JobRegistry
from .wire import (
    MAX_BODY_BYTES,
    WIRE_SCHEMA_VERSION,
    WireError,
    error_body,
    parse_request,
)

_STOP = object()


@dataclass
class ServeConfig:
    """Deployment knobs of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8642
    #: Engine worker processes (``workers=1`` runs jobs in the dispatcher
    #: thread — useful for tests, wrong for production).
    workers: int = 2
    cache: bool = True
    cache_dir: Optional[str] = None
    max_cache_bytes: Optional[int] = None
    #: Path of the persistent job journal (WAL).  When set, admissions and
    #: settlements survive ``kill -9``: on restart the registry is rebuilt
    #: from the journal and unfinished jobs re-enqueue exactly once.
    journal: Optional[str] = None
    queue_limit: int = 64
    #: Seconds the dispatcher waits to coalesce a batch after the first
    #: admitted job; 0 disables micro-batching.
    batch_window: float = 0.01
    batch_max: int = 16
    #: Per-job engine timeout (pool mode only), in seconds.
    timeout: Optional[float] = None
    retries: int = 1
    verify: str = "off"
    trace: Optional[str] = None
    #: Seconds SIGTERM/SIGINT waits for in-flight jobs before giving up.
    drain_deadline: float = 10.0
    #: Default cap on how long a ``wait=true`` submit blocks; ``None``
    #: waits until the job settles.
    wait_timeout: Optional[float] = None
    #: Print the ``serve.listening`` JSON line on stdout (subprocess
    #: harnesses parse it to discover an ephemeral port).
    announce: bool = True


class ServeApp:
    """The daemon: admission, dispatch, HTTP front-end, lifecycle."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = JobRegistry()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "submitted": 0,
            "deduped": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "batches": 0,
            "executed": 0,
        }
        self.started_at = time.monotonic()
        self.live = LiveRegistry()
        self.draining = False
        self._signal: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._queue: Optional[asyncio.Queue] = None
        self._stopped: Optional[asyncio.Event] = None
        self.bus: Optional[EventBus] = None
        self.telemetry: Optional[Telemetry] = None
        self._sink: Optional[JsonlSink] = None
        self.engine: Optional[JobEngine] = None
        self.cache: Optional[ResultCache] = None
        self.journal: Optional[JobJournal] = None
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, build the engine and start the dispatcher; returns
        ``(host, port)`` with the real ephemeral port resolved."""
        config = self.config
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stopped = asyncio.Event()
        self.bus = EventBus(self._loop, self.registry)
        self._sink = JsonlSink(config.trace) if config.trace else None

        def fan_out(event: dict) -> None:
            if self._sink is not None:
                self._sink(event)
            self.live.ingest(event)
            self.bus.publish(event)

        self.telemetry = Telemetry(sink=fan_out)
        self.telemetry.emit(
            "trace.meta", schema=SCHEMA_VERSION, tool="repro", command="serve"
        )
        self.cache = (
            ResultCache(config.cache_dir, max_bytes=config.max_cache_bytes)
            if config.cache
            else None
        )
        self.journal = (
            JobJournal(config.journal) if config.journal else None
        )
        self.engine = JobEngine(
            jobs=max(1, config.workers),
            cache=self.cache,
            telemetry=self.telemetry,
            timeout=config.timeout,
            retries=config.retries,
            verify=config.verify,
            warm=config.workers > 1,
            journal=self.journal,
        )
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )
        sockets = self._server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else config.port
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self.telemetry.emit(
            "serve.start", host=config.host, port=self.port,
            workers=config.workers,
        )
        if config.announce:
            # Machine-readable announcement: subprocess harnesses parse
            # this line to discover an ephemeral port.
            print(
                json.dumps(
                    {"event": "serve.listening", "host": config.host,
                     "port": self.port}
                ),
                flush=True,
            )
        return config.host, self.port

    def _recover(self) -> None:
        """Rebuild the registry from the journal after a restart.

        Settled and failed digests become answerable records immediately
        (``GET /v1/jobs/<digest>`` survives ``kill -9``); digests that were
        in flight when the previous process died re-enqueue exactly once
        (:meth:`JobJournal.take_recovered` consumes the snapshot).
        """
        if self.journal is None:
            return
        settled = self.journal.settled_records()
        failed = self.journal.failed_records()
        for digest, entry in settled.items():
            spec = spec_from_record(entry)
            if spec is None:
                continue
            record = JobRecord(spec=spec, digest=digest, status=DONE)
            record.value = entry.get("value")
            record.cached = bool(entry.get("cached", False))
            record.attempts = int(entry.get("attempts", 1))
            record.seconds = float(entry.get("seconds", 0.0))
            record.done_event.set()
            self.registry.add(record)
            self.bus.labels[spec.label()] = digest
            self._settle(record, count=False)
        for digest, entry in failed.items():
            spec = spec_from_record(entry)
            if spec is None:
                continue
            record = JobRecord(spec=spec, digest=digest, status=FAILED)
            record.error = entry.get("error")
            record.error_class = entry.get("error_class")
            record.done_event.set()
            self.registry.add(record)
            self.bus.labels[spec.label()] = digest
            self._settle(record, count=False)
        recovered = self.engine.recovered_specs()
        for spec in recovered:
            digest = spec.digest()
            if self.registry.get(digest) is not None:
                continue
            record = JobRecord(spec=spec, digest=digest)
            self.registry.add(record)
            self.bus.labels[spec.label()] = digest
            self._queue.put_nowait(record)
        self.telemetry.emit(
            "serve.recover",
            settled=len(settled),
            inflight=len(recovered),
            failed=len(failed),
        )

    async def run_until_stopped(self, install_signals: bool = True) -> int:
        """Serve until :meth:`request_shutdown`; returns the exit code."""
        await self.start()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self.request_shutdown, signum
                    )
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        await self._stopped.wait()
        return 128 + self._signal if self._signal else 0

    def request_shutdown(self, signum: Optional[int] = None) -> None:
        """Begin the graceful drain (idempotent; signal-handler safe)."""
        if self.draining:
            return
        self.draining = True
        self._signal = signum
        asyncio.ensure_future(self._drain(), loop=self._loop)

    async def _drain(self) -> None:
        """Stop admissions, drain in-flight work, release everything."""
        config = self.config
        started = time.monotonic()
        deadline = started + max(0.0, config.drain_deadline)
        # New submissions are already rejected (self.draining); wait for
        # the queue + running batches to settle.
        clean = True
        while self.registry.pending:
            if time.monotonic() >= deadline:
                clean = False
                break
            await asyncio.sleep(0.05)
        self.telemetry.emit(
            "serve.drain",
            pending=self.registry.pending,
            seconds=round(time.monotonic() - started, 6),
            clean=clean,
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._queue.put_nowait(_STOP)
        if self._dispatcher is not None:
            remaining = max(0.5, deadline - time.monotonic())
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._dispatcher, remaining)
            if not self._dispatcher.done():
                self._dispatcher.cancel()
        self.engine.close()
        if self.journal is not None:
            self.journal.close()
        self.telemetry.emit(
            "serve.stop",
            requests=self.counters["requests"],
            seconds=round(time.monotonic() - self.started_at, 6),
        )
        if self._sink is not None:
            self._sink.close()
        self._stopped.set()

    # -- dispatch ----------------------------------------------------------

    def _run_batch(self, specs):
        """Worker-thread side: one engine run for one admitted batch."""
        return self.engine.run(specs)

    async def _dispatch_loop(self) -> None:
        """Admitted records -> micro-batches -> ``JobEngine.run`` calls.

        One batch at a time: the engine parallelizes *inside* a batch
        across its worker pool, and serializing batches keeps all record
        state loop-thread-only while arrivals naturally coalesce into the
        next batch while the current one runs.
        """
        config = self.config
        loop = self._loop
        while True:
            record = await self._queue.get()
            if record is _STOP:
                return
            batch = [record]
            waited = 0.0
            if config.batch_max > 1 and config.batch_window > 0:
                deadline = loop.time() + config.batch_window
                while len(batch) < config.batch_max:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                    if extra is _STOP:
                        self._queue.put_nowait(_STOP)
                        break
                    batch.append(extra)
                waited = config.batch_window - max(
                    0.0, deadline - loop.time()
                )
            # Anything already queued rides along without waiting.
            while len(batch) < config.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    self._queue.put_nowait(_STOP)
                    break
                batch.append(extra)
            now = time.monotonic()
            for entry in batch:
                entry.status = RUNNING
                entry.started = now
            self.counters["batches"] += 1
            self.counters["executed"] += len(batch)
            self.telemetry.emit(
                "serve.batch", size=len(batch), waited=round(waited, 6)
            )
            try:
                outcomes = await asyncio.to_thread(
                    self._run_batch, [entry.spec for entry in batch]
                )
                for entry, outcome in zip(batch, outcomes):
                    entry.finish(outcome)
                    self._settle(entry)
            except Exception as exc:  # noqa: BLE001 - nothing may kill the loop
                # A dead dispatcher strands every waiting client; fail the
                # batch instead and keep serving.
                for entry in batch:
                    if not entry.settled:
                        entry.finish(_synthetic_failure(entry, exc))
                        self._settle(entry)

    def _settle(self, record: JobRecord, count: bool = True) -> None:
        if count:
            self.counters["completed" if record.status == DONE else "failed"] += 1
        for dropped in self.registry.settle(record):
            self.bus.labels.pop(dropped.spec.label(), None)

    # -- HTTP --------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                started = time.perf_counter()
                keep_alive = headers.get("connection", "").lower() != "close"
                status = 500
                try:
                    status, finished = await self._route(
                        method, path, headers, body, writer
                    )
                except ConnectionError:  # pragma: no cover - client vanished
                    break
                elapsed = time.perf_counter() - started
                self.counters["requests"] += 1
                self.live.histogram(
                    "repro_serve_request_seconds", REQUEST_SECONDS_BUCKETS,
                    help="HTTP request latency by endpoint",
                    method=method, endpoint=_endpoint(path),
                    status=str(status),
                ).record(elapsed)
                self.telemetry.emit(
                    "serve.request", method=method, path=path, status=status,
                    seconds=round(elapsed, 6),
                )
                if not finished or not keep_alive:
                    break
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError, ValueError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels idle keep-alive handlers; finishing cleanly
            # (after closing the socket below) keeps the loop teardown
            # quiet.  Nothing outside awaits these tasks.
            pass
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                # Closing the transport only closes *this process's* fd.
                # A warm pool worker forked while this connection was open
                # inherited a duplicate, which would keep the TCP stream
                # alive (no FIN) for as long as the pool lives — an SSE
                # client waiting for EOF would hang forever.  shutdown()
                # half-closes the connection itself, ending the stream no
                # matter how many forked children still hold the fd.
                sock = writer.get_extra_info("socket")
                if sock is not None:
                    with contextlib.suppress(OSError):
                        sock.shutdown(socket.SHUT_WR)
                writer.close()
                await writer.wait_closed()

    async def _route(self, method, path, headers, body, writer) -> Tuple[int, bool]:
        """Dispatch one request; returns (status, connection-reusable)."""
        if path == "/healthz" and method == "GET":
            return await _send_json(writer, 200, self.health()), True
        if path == "/metrics" and method == "GET":
            self._sync_live()
            return await _send_text(
                writer, 200, self.live.render_prometheus(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            ), True
        if path == "/v1/stats" and method == "GET":
            self._sync_live()
            return await _send_json(writer, 200, self.stats()), True
        if path == "/v1/schema" and method == "GET":
            return await _send_json(writer, 200, self.schema()), True
        if path == "/v1/jobs" and method == "POST":
            return await self._handle_submit(body, writer), True
        if path.startswith("/v1/jobs/") and method == "GET":
            digest = path[len("/v1/jobs/"):]
            if digest.endswith("/events"):
                digest = digest[: -len("/events")]
                record = self.registry.get(digest)
                if record is None:
                    return await _send_json(
                        writer, 404,
                        error_body("unknown-job", f"no job {digest[:12]}..."),
                    ), True
                await self._stream_events(
                    record, writer,
                    last_event_id=_parse_last_event_id(headers),
                )
                return 200, False  # SSE closes the connection
            record = self.registry.get(digest)
            if record is None:
                return await _send_json(
                    writer, 404,
                    error_body("unknown-job", f"no job {digest[:12]}..."),
                ), True
            code = 200 if record.settled else 202
            return await _send_json(writer, code, record.envelope()), True
        return await _send_json(
            writer, 404, error_body("unknown-endpoint", f"{method} {path}")
        ), True

    async def _handle_submit(self, body: bytes, writer) -> int:
        if self.draining:
            return await _send_json(
                writer, 503, error_body("draining", "daemon is shutting down")
            )
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            return await _send_json(
                writer, 400, error_body("bad-json", "request body is not JSON")
            )
        try:
            request = parse_request(payload)
        except WireError as exc:
            return await _send_json(
                writer, 400,
                error_body("invalid-request", str(exc), exc.problems),
            )
        try:
            resolve_job_type(request.kind)
        except KeyError:
            return await _send_json(
                writer, 400,
                error_body(
                    "unknown-kind",
                    f"unknown job kind {request.kind!r}; "
                    f"registered: {job_types()}",
                ),
            )
        # Pin the effective seed before taking the digest, exactly like
        # the engine does before its cache lookup — dedup identity and
        # execution identity must be the same digest.
        spec = self.engine._effective_spec(request.spec())
        digest = spec.digest()
        record = self.registry.get(digest)
        deduped = record is not None
        if deduped:
            if not record.settled:
                record.submissions += 1
            self.counters["deduped"] += 1
        else:
            if self.registry.pending >= self.config.queue_limit:
                self.counters["rejected"] += 1
                self.telemetry.emit(
                    "serve.reject", reason="queue-full",
                    pending=self.registry.pending,
                )
                return await _send_json(
                    writer, 429,
                    error_body(
                        "overloaded",
                        f"{self.registry.pending} jobs pending "
                        f"(limit {self.config.queue_limit}); retry later",
                    ),
                    headers={"Retry-After": "1"},
                )
            record = JobRecord(spec=spec, digest=digest)
            self.registry.add(record)
            self.bus.labels[spec.label()] = digest
            if self.journal is not None:
                # Write-ahead at admission: a kill between here and the
                # batch dispatch still re-enqueues this digest on restart.
                self.journal.record_submitted(spec)
            self._queue.put_nowait(record)
        self.counters["submitted"] += 1
        self.telemetry.emit(
            "serve.submit", job=spec.label(), kind=spec.kind,
            dedup=deduped, wait=request.wait,
        )
        if not request.wait:
            code = 200 if record.settled else 202
            return await _send_json(writer, code, record.envelope(deduped))
        timeout = (
            request.timeout
            if request.timeout is not None
            else self.config.wait_timeout
        )
        try:
            await asyncio.wait_for(record.done_event.wait(), timeout)
        except asyncio.TimeoutError:
            # The job keeps running; the client polls or streams events.
            return await _send_json(writer, 202, record.envelope(deduped))
        return await _send_json(writer, 200, record.envelope(deduped))

    async def _stream_events(
        self,
        record: JobRecord,
        writer,
        last_event_id: Optional[int] = None,
    ) -> None:
        """Serve one job's telemetry as SSE: buffered replay, then live.

        Every event carries an ``id:`` line (per-record monotonic); a
        client reconnecting with ``Last-Event-ID: N`` replays only the
        ring-buffer events it missed (ids > N) before going live.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        queue = self.bus.subscribe(record)
        sent = last_event_id if last_event_id is not None else -1
        try:
            for event_id, event in list(record.events):
                if event_id <= sent:
                    continue
                await _send_sse(writer, event, event_id=event_id)
                sent = event_id
            while not record.settled:
                try:
                    event_id, event = await asyncio.wait_for(queue.get(), 1.0)
                except asyncio.TimeoutError:
                    continue
                if event_id <= sent:
                    continue
                await _send_sse(writer, event, event_id=event_id)
                sent = event_id
            # Flush whatever the finishing job still queued.
            while True:
                try:
                    event_id, event = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if event_id <= sent:
                    continue
                await _send_sse(writer, event, event_id=event_id)
                sent = event_id
            await _send_sse(
                writer, record.envelope(), event_name="serve.result"
            )
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            self.bus.unsubscribe(record, queue)

    # -- introspection -----------------------------------------------------

    def _sync_live(self) -> None:
        """Refresh the scrape-time series in the live registry.

        Admission/settle counters and derived gauges are maintained as
        plain ints on the hot path and mirrored here once per scrape —
        the request path pays nothing for them.  The counter children are
        overwritten (not incremented): both sides are monotonic totals of
        the same process, so assignment preserves counter semantics.
        """
        live = self.live
        for key, value in self.counters.items():
            child = live.counter(
                f"repro_serve_{key}_total",
                help=f"serve lifecycle counter: {key}",
            )
            child.value = float(value)
        pending = self.registry.pending
        running = self.registry.running
        workers = max(1, self.config.workers)
        live.gauge(
            "repro_serve_queue_depth", help="admitted jobs not yet settled"
        ).set(pending)
        live.gauge(
            "repro_serve_queue_limit", help="admission backpressure limit"
        ).set(self.config.queue_limit)
        live.gauge(
            "repro_serve_inflight_jobs", help="jobs currently executing"
        ).set(running)
        live.gauge(
            "repro_serve_worker_utilization",
            help="running jobs / worker pool size, capped at 1",
        ).set(min(1.0, running / workers))
        live.gauge(
            "repro_serve_sse_subscribers", help="connected SSE clients"
        ).set(self.registry.sse_subscribers)
        live.gauge(
            "repro_serve_uptime_seconds", help="seconds since daemon start"
        ).set(time.monotonic() - self.started_at)
        if self.cache is not None:
            stats = self.cache.stats
            for op, value in stats.items():
                child = live.counter(
                    "repro_serve_cache_total",
                    help="result cache operations by outcome", op=op,
                )
                child.value = float(value)
            lookups = stats.get("hits", 0) + stats.get("misses", 0)
            live.gauge(
                "repro_serve_cache_hit_ratio",
                help="cache hits / lookups since start",
            ).set(stats.get("hits", 0) / lookups if lookups else 0.0)

    def stats(self) -> dict:
        """The ``/v1/stats`` JSON snapshot: health plus the live metrics."""
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "live_schema": LIVE_SCHEMA,
            "health": self.health(),
            "ingested_events": self.live.ingested_events,
            "metrics": self.live.snapshot(),
        }

    def health(self) -> dict:
        snapshot = self.telemetry.snapshot() if self.telemetry else {}
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "status": "draining" if self.draining else "ok",
            "uptime": round(time.monotonic() - self.started_at, 3),
            "workers": self.config.workers,
            "counters": dict(self.counters),
            "queue": {
                "pending": self.registry.pending,
                "limit": self.config.queue_limit,
            },
            "cache": self.cache.stats if self.cache is not None else None,
            "engine": {
                key: snapshot[key]
                for key in sorted(snapshot)
                if key.startswith(("jobs.", "cache.", "engine."))
            },
        }

    def schema(self) -> dict:
        # The registry fills lazily; load the built-ins so the kind list
        # is complete even before the first job arrives.
        from ..runtime import jobs as _builtin_jobs  # noqa: F401

        return {
            "schema": WIRE_SCHEMA_VERSION,
            "wire_schema": WIRE_SCHEMA_VERSION,
            "events_schema": SCHEMA_VERSION,
            "kinds": job_types(),
        }


def _synthetic_failure(record: JobRecord, exc: BaseException):
    from ..runtime.engine import JobOutcome

    return JobOutcome(
        spec=record.spec,
        error=f"dispatcher failure: {type(exc).__name__}: {exc}",
        error_class="dispatcher",
    )


# -- HTTP plumbing ---------------------------------------------------------


async def _read_request(reader):
    """One parsed HTTP request, or ``None`` on a closed/invalid stream."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        return None
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY_BYTES:
        return method, path, headers, b""
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_KNOWN_ENDPOINTS = frozenset(
    ("/healthz", "/metrics", "/v1/stats", "/v1/schema", "/v1/jobs")
)


def _endpoint(path: str) -> str:
    """Collapse a request path to a bounded-cardinality endpoint label."""
    if path.startswith("/v1/jobs/"):
        return (
            "/v1/jobs/:digest/events"
            if path.endswith("/events")
            else "/v1/jobs/:digest"
        )
    if path in _KNOWN_ENDPOINTS:
        return path
    return "other"


async def _send_json(writer, status: int, body: dict, headers=None) -> int:
    payload = json.dumps(body, sort_keys=True, default=str).encode("utf-8")
    extra = "".join(
        f"{key}: {value}\r\n" for key, value in (headers or {}).items()
    )
    writer.write(
        (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
        ).encode("latin-1")
        + b"\r\n"
        + payload
    )
    await writer.drain()
    return status


async def _send_text(
    writer, status: int, body: str,
    content_type: str = "text/plain; charset=utf-8",
) -> int:
    payload = body.encode("utf-8")
    writer.write(
        (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
        ).encode("latin-1")
        + b"\r\n"
        + payload
    )
    await writer.drain()
    return status


async def _send_sse(
    writer,
    event: dict,
    event_name: Optional[str] = None,
    event_id: Optional[int] = None,
) -> None:
    name = event_name or event.get("event", "message")
    data = json.dumps(event, sort_keys=True, default=str)
    prefix = f"id: {event_id}\n" if event_id is not None else ""
    writer.write(f"{prefix}event: {name}\ndata: {data}\n\n".encode("utf-8"))
    await writer.drain()


def _parse_last_event_id(headers: dict) -> Optional[int]:
    """The ``Last-Event-ID`` header as an int, or ``None`` when absent
    or malformed (a bad header means a full replay, not an error)."""
    raw = headers.get("last-event-id")
    if raw is None:
        return None
    try:
        return int(raw)
    except (TypeError, ValueError):
        return None


# -- entry points ----------------------------------------------------------


def serve_main(config: ServeConfig) -> int:
    """Blocking entry point used by ``repro serve``; returns exit code."""
    app = ServeApp(config)
    try:
        return asyncio.run(app.run_until_stopped())
    except KeyboardInterrupt:  # pragma: no cover - loop handles SIGINT
        return 130


class ServeHandle:
    """An in-process daemon on a background thread (tests, fuzz, bench).

    ``with ServeHandle(config) as handle:`` serves on an ephemeral port
    (``handle.port``) until the block exits; shutdown drains like the
    real daemon.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig(port=0, workers=1)
        self.app: Optional[ServeApp] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._finished = threading.Event()

    def __enter__(self) -> "ServeHandle":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve daemon did not start within 30s")
        return self

    def _run(self) -> None:
        async def main():
            self.app = ServeApp(self.config)
            self._loop = asyncio.get_running_loop()
            await self.app.start()
            self.port = self.app.port
            self._ready.set()
            await self.app._stopped.wait()

        try:
            asyncio.run(main())
        finally:
            self._ready.set()  # unblock __enter__ on startup failure
            self._finished.set()

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self.app is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.app.request_shutdown)
        self._finished.wait(timeout=30)
        if self._thread is not None:
            self._thread.join(timeout=30)

    @property
    def address(self) -> Tuple[str, int]:
        if self.port is None:
            raise RuntimeError("daemon not started")
        return self.config.host, self.port


def wait_for_port(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll until a TCP connect succeeds (subprocess smoke harnesses)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.05)
    return False
