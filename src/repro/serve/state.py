"""Daemon-side state: job records, dedup registry and the event bus.

Everything here is mutated from the event loop thread only — handlers and
the dispatcher are coroutines — with one exception: telemetry events
arrive from the engine's worker thread, so :class:`EventBus.publish` is
the only entry point that must be thread-safe (it trampolines onto the
loop via ``call_soon_threadsafe``).
"""

from __future__ import annotations

import asyncio
import collections
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..runtime.engine import JobOutcome
from ..runtime.spec import JobSpec
from .wire import WIRE_SCHEMA_VERSION

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Telemetry events buffered per job for SSE replay (ring buffer).
EVENT_BUFFER = 512

#: Completed records retained for result-by-digest lookups before the
#: disk cache takes over as the source of truth.
COMPLETED_RETAINED = 1024


@dataclass
class JobRecord:
    """One admitted spec: identity, lifecycle, result and its audience."""

    spec: JobSpec
    digest: str
    status: str = QUEUED
    created: float = field(default_factory=time.monotonic)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: How many submissions this record absorbed (1 + dedup joins).
    submissions: int = 1
    value: object = None
    error: Optional[str] = None
    error_class: Optional[str] = None
    cached: bool = False
    attempts: int = 0
    seconds: float = 0.0
    #: Telemetry events attributed to this job, as ``(event_id, event)``
    #: pairs for SSE replay.  Ids are per-record, monotonic from 0; an SSE
    #: client reconnecting with ``Last-Event-ID: N`` replays only ids > N.
    events: Deque[Tuple[int, dict]] = field(default_factory=lambda: collections.deque(maxlen=EVENT_BUFFER))
    #: Next SSE event id this record will assign.
    next_event_id: int = 0
    #: Live SSE subscribers (bounded queues; slow clients drop events).
    subscribers: List[asyncio.Queue] = field(default_factory=list)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def settled(self) -> bool:
        return self.status in (DONE, FAILED)

    def finish(self, outcome: JobOutcome) -> None:
        self.status = DONE if outcome.ok else FAILED
        self.value = outcome.value
        self.error = outcome.error
        self.error_class = outcome.error_class
        self.cached = outcome.cached
        self.attempts = outcome.attempts
        self.seconds = outcome.seconds
        self.finished = time.monotonic()
        self.done_event.set()

    def envelope(self, deduped: bool = False) -> dict:
        """The wire response describing this record's current state."""
        body = {
            "schema": WIRE_SCHEMA_VERSION,
            "job": self.digest,
            "label": self.spec.label(),
            "kind": self.spec.kind,
            "status": self.status,
            "cached": self.cached,
            "deduped": deduped,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
        }
        if self.status == DONE:
            body["value"] = self.value
        if self.error is not None:
            body["error"] = self.error
            body["error_class"] = self.error_class
        return body


class JobRegistry:
    """Digest-keyed records: in-flight jobs plus a bounded history."""

    def __init__(self, retained: int = COMPLETED_RETAINED) -> None:
        self.records: Dict[str, JobRecord] = {}
        self._finished: Deque[str] = collections.deque()
        self._retained = retained

    def get(self, digest: str) -> Optional[JobRecord]:
        return self.records.get(digest)

    def add(self, record: JobRecord) -> None:
        self.records[record.digest] = record

    def settle(self, record: JobRecord) -> List[JobRecord]:
        """Move a finished record into the bounded history.

        Returns the records evicted from the history so the caller can
        release anything keyed off them (the event bus's label map).
        """
        dropped: List[JobRecord] = []
        self._finished.append(record.digest)
        while len(self._finished) > self._retained:
            victim = self._finished.popleft()
            existing = self.records.get(victim)
            # Only drop records that are still settled — a digest can be
            # resubmitted and live again under the same key.
            if existing is not None and existing.settled:
                dropped.append(existing)
                del self.records[victim]
        return dropped

    @property
    def pending(self) -> int:
        return sum(
            1 for record in self.records.values() if not record.settled
        )

    @property
    def running(self) -> int:
        """Jobs currently executing in a dispatched batch."""
        return sum(
            1 for record in self.records.values() if record.status == RUNNING
        )

    @property
    def sse_subscribers(self) -> int:
        """Live SSE client queues across every record."""
        return sum(
            len(record.subscribers) for record in self.records.values()
        )


class EventBus:
    """Routes telemetry events to per-job buffers and SSE subscribers.

    The engine runs in a worker thread and its telemetry sink calls
    :meth:`publish` from there; the bus hops onto the event loop so all
    record mutation stays single-threaded.  Events are attributed via
    their ``job`` field (the spec label the engine stamps on everything a
    job emits, including events ingested from pool workers).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, registry: JobRegistry) -> None:
        self._loop = loop
        self._registry = registry
        #: spec label -> digest, maintained by the daemon at admission.
        self.labels: Dict[str, str] = {}

    def publish(self, event: dict) -> None:
        """Thread-safe: accept one telemetry event from any thread."""
        try:
            self._loop.call_soon_threadsafe(self._dispatch, event)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _dispatch(self, event: dict) -> None:
        label = event.get("job")
        if label is None:
            return
        digest = self.labels.get(label)
        if digest is None:
            return
        record = self._registry.get(digest)
        if record is None:
            return
        event_id = record.next_event_id
        record.next_event_id += 1
        record.events.append((event_id, event))
        for queue in record.subscribers:
            try:
                queue.put_nowait((event_id, event))
            except asyncio.QueueFull:
                # A slow SSE client loses events rather than stalling the
                # daemon; the buffered replay still has the recent tail.
                pass

    def subscribe(self, record: JobRecord, maxsize: int = 256) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        record.subscribers.append(queue)
        return queue

    def unsubscribe(self, record: JobRecord, queue: asyncio.Queue) -> None:
        try:
            record.subscribers.remove(queue)
        except ValueError:  # pragma: no cover - double unsubscribe
            pass
