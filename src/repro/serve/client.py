"""A stdlib HTTP client for the co-design daemon.

Used by the smoke harness, the serve fuzz oracle and the benchmark —
anything in-repo that talks to a running daemon.  It is deliberately thin:
one :class:`http.client.HTTPConnection` per call (the daemon supports
keep-alive, but independent connections keep concurrent benchmark threads
trivial), JSON in/out, and a generator for the SSE stream.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator, Optional, Tuple

from ..errors import ReproError
from .wire import WIRE_SCHEMA_VERSION


class ServeClientError(ReproError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, body: dict) -> None:
        self.status = status
        self.body = body
        error = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"HTTP {status}: {error.get('code', 'error')}: "
            f"{error.get('message', body)}"
        )


class ServeClient:
    """Talk to one daemon at ``(host, port)``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Tuple[int, dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"error": {"code": "bad-response",
                                     "message": raw.decode("utf-8", "replace")}}
            return response.status, decoded
        finally:
            connection.close()

    # -- endpoints ---------------------------------------------------------

    def submit(self, kind: str, params: Optional[dict] = None,
               seed: Optional[int] = None, wait: bool = True,
               timeout: Optional[float] = None,
               raise_on_error: bool = True) -> Tuple[int, dict]:
        """POST one job; returns ``(http_status, envelope)``.

        ``raise_on_error=True`` (the default) turns 4xx/5xx responses into
        :class:`ServeClientError`; 200 (settled) and 202 (accepted, still
        running) both return normally.
        """
        payload = {
            "schema": WIRE_SCHEMA_VERSION,
            "kind": kind,
            "params": params or {},
            "wait": wait,
        }
        if seed is not None:
            payload["seed"] = seed
        if timeout is not None:
            payload["timeout"] = timeout
        status, body = self._request("POST", "/v1/jobs", payload)
        if raise_on_error and status >= 400:
            raise ServeClientError(status, body)
        return status, body

    def status(self, digest: str) -> Tuple[int, dict]:
        return self._request("GET", f"/v1/jobs/{digest}")

    def health(self) -> dict:
        status, body = self._request("GET", "/healthz")
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def schema(self) -> dict:
        status, body = self._request("GET", "/v1/schema")
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def events(self, digest: str,
               timeout: Optional[float] = None) -> Iterator[Tuple[str, dict]]:
        """Stream a job's SSE events as ``(event_name, payload)`` pairs.

        The stream ends when the daemon closes it (after the terminal
        ``serve.result`` event) or the socket times out.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            connection.request("GET", f"/v1/jobs/{digest}/events")
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    body = json.loads(raw)
                except ValueError:
                    body = {}
                raise ServeClientError(response.status, body)
            name, data = "message", []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n")
                if line.startswith("event:"):
                    name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data.append(line[len("data:"):].strip())
                elif line == "" and data:
                    try:
                        payload = json.loads("\n".join(data))
                    except ValueError:
                        payload = {"raw": "\n".join(data)}
                    yield name, payload
                    name, data = "message", []
        finally:
            connection.close()
