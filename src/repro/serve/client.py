"""A stdlib HTTP client for the co-design daemon.

Used by the smoke harness, the serve fuzz oracle and the benchmark —
anything in-repo that talks to a running daemon.  It is deliberately thin:
one :class:`http.client.HTTPConnection` per call (the daemon supports
keep-alive, but independent connections keep concurrent benchmark threads
trivial), JSON in/out, and a generator for the SSE stream.

Robustness knobs (all off by default so tests asserting on 429/503 see
the raw response):

- ``connect_timeout`` / ``timeout`` — separate bounds on establishing the
  TCP connection and on each read of an established one.
- ``retries`` — transport errors (refused/reset/timed-out connections)
  and retryable statuses (429 overloaded, 503 draining) are retried up to
  this many times with exponential backoff and full jitter; a
  ``Retry-After`` header, when the daemon sends one, overrides the
  computed delay.
"""

from __future__ import annotations

import datetime
import email.utils
import http.client
import json
import math
import random
import time
from typing import Iterator, Optional, Tuple

from ..errors import ReproError
from .wire import WIRE_SCHEMA_VERSION

#: HTTP statuses worth retrying: the daemon sheds load (429) or is
#: draining (503); both are transient from the client's point of view.
RETRYABLE_STATUSES = (429, 503)


class ServeClientError(ReproError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, body: dict) -> None:
        self.status = status
        self.body = body
        error = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"HTTP {status}: {error.get('code', 'error')}: "
            f"{error.get('message', body)}"
        )


class ServeClient:
    """Talk to one daemon at ``(host, port)``.

    ``retries=0`` (the default) behaves exactly like a bare request:
    transport errors propagate and every status returns as-is.  With
    ``retries=N``, transport errors and 429/503 responses are retried up
    to N times; each wait is ``backoff * 2**attempt`` capped at
    ``max_backoff`` and scaled by a uniform jitter draw (full jitter —
    N clients hammered off one daemon don't re-arrive in lockstep),
    unless the response named its own ``Retry-After``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 60.0,
        connect_timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.1,
        max_backoff: float = 5.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        #: Read timeout: each socket read of an established connection.
        self.timeout = timeout
        #: Connect timeout (defaults to the read timeout).
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self._rng = rng or random.Random()

    # -- plumbing ----------------------------------------------------------

    def _connect(self, timeout: Optional[float] = None) -> http.client.HTTPConnection:
        """An established connection: connect under ``connect_timeout``,
        then rebind the socket to the (possibly longer) read timeout."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        try:
            connection.connect()
            read_timeout = timeout if timeout is not None else self.timeout
            if connection.sock is not None:
                connection.sock.settimeout(read_timeout)
        except Exception:
            connection.close()
            raise
        return connection

    def _delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        if retry_after is not None:
            return max(0.0, min(retry_after, self.max_backoff))
        ceiling = min(self.max_backoff, self.backoff * (2 ** attempt))
        return ceiling * self._rng.random()

    def _request_once(
        self, method: str, path: str, payload: Optional[dict]
    ) -> Tuple[int, dict, dict]:
        connection = self._connect()
        try:
            body = (
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"error": {"code": "bad-response",
                                     "message": raw.decode("utf-8", "replace")}}
            response_headers = {
                key.lower(): value for key, value in response.getheaders()
            }
            return response.status, decoded, response_headers
        finally:
            connection.close()

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Tuple[int, dict]:
        attempts = self.retries + 1
        for attempt in range(attempts):
            final = attempt + 1 >= attempts
            try:
                status, decoded, headers = self._request_once(
                    method, path, payload
                )
            except (OSError, http.client.HTTPException):
                # Connection refused/reset/timed out: the daemon may be
                # restarting; back off and retry unless out of budget.
                if final:
                    raise
                time.sleep(self._delay(attempt))
                continue
            if status in RETRYABLE_STATUSES and not final:
                time.sleep(
                    self._delay(attempt, _parse_retry_after(headers))
                )
                continue
            return status, decoded
        raise AssertionError("unreachable: retry loop exhausted silently")

    # -- endpoints ---------------------------------------------------------

    def submit(self, kind: str, params: Optional[dict] = None,
               seed: Optional[int] = None, wait: bool = True,
               timeout: Optional[float] = None,
               raise_on_error: bool = True) -> Tuple[int, dict]:
        """POST one job; returns ``(http_status, envelope)``.

        ``raise_on_error=True`` (the default) turns 4xx/5xx responses into
        :class:`ServeClientError`; 200 (settled) and 202 (accepted, still
        running) both return normally.
        """
        payload = {
            "schema": WIRE_SCHEMA_VERSION,
            "kind": kind,
            "params": params or {},
            "wait": wait,
        }
        if seed is not None:
            payload["seed"] = seed
        if timeout is not None:
            payload["timeout"] = timeout
        status, body = self._request("POST", "/v1/jobs", payload)
        if raise_on_error and status >= 400:
            raise ServeClientError(status, body)
        return status, body

    def status(self, digest: str) -> Tuple[int, dict]:
        return self._request("GET", f"/v1/jobs/{digest}")

    def health(self) -> dict:
        status, body = self._request("GET", "/healthz")
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def schema(self) -> dict:
        status, body = self._request("GET", "/v1/schema")
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def stats(self) -> dict:
        """The live metric aggregate as JSON (``GET /v1/stats``)."""
        status, body = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def metrics(self) -> str:
        """The raw Prometheus exposition text (``GET /metrics``)."""
        connection = self._connect()
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                try:
                    body = json.loads(raw)
                except ValueError:
                    body = {"error": {"code": "bad-response",
                                      "message": raw.decode("utf-8", "replace")}}
                raise ServeClientError(response.status, body)
            return raw.decode("utf-8")
        finally:
            connection.close()

    def events(self, digest: str,
               timeout: Optional[float] = None,
               last_event_id: Optional[int] = None,
               with_ids: bool = False) -> Iterator[Tuple]:
        """Stream a job's SSE events as ``(event_name, payload)`` pairs.

        ``last_event_id`` resumes a broken stream: the daemon replays only
        buffered events with id > ``last_event_id``.  ``with_ids=True``
        yields ``(event_id, event_name, payload)`` triples instead (the id
        is ``None`` for synthetic events like the terminal
        ``serve.result``) so a caller can remember where it got to.

        The stream ends when the daemon closes it (after the terminal
        ``serve.result`` event) or the socket times out.
        """
        connection = self._connect(timeout=timeout)
        try:
            headers = {}
            if last_event_id is not None:
                headers["Last-Event-ID"] = str(last_event_id)
            connection.request(
                "GET", f"/v1/jobs/{digest}/events", headers=headers
            )
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    body = json.loads(raw)
                except ValueError:
                    body = {}
                raise ServeClientError(response.status, body)
            name, data, event_id = "message", [], None
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n")
                if line.startswith("id:"):
                    try:
                        event_id = int(line[len("id:"):].strip())
                    except ValueError:
                        event_id = None
                elif line.startswith("event:"):
                    name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data.append(line[len("data:"):].strip())
                elif line == "" and data:
                    try:
                        payload = json.loads("\n".join(data))
                    except ValueError:
                        payload = {"raw": "\n".join(data)}
                    if with_ids:
                        yield event_id, name, payload
                    else:
                        yield name, payload
                    name, data, event_id = "message", [], None
        finally:
            connection.close()


def _parse_retry_after(headers: dict) -> Optional[float]:
    """The ``Retry-After`` header in seconds, or ``None``.

    RFC 9110 allows both forms: delta-seconds (``"3"``) and an HTTP-date
    (``"Wed, 21 Oct 2015 07:28:00 GMT"``).  A date in the past clamps to
    zero.  Anything else — garbage, non-finite numbers — yields ``None``
    so the caller falls back to its jittered backoff instead of raising
    mid-retry.
    """
    raw = headers.get("retry-after")
    if raw is None:
        return None
    text = raw.strip() if isinstance(raw, str) else raw
    try:
        seconds = float(text)
    except (TypeError, ValueError):
        pass
    else:
        # float() happily parses "nan"/"inf"; neither is a usable delay.
        return max(0.0, seconds) if math.isfinite(seconds) else None
    if not isinstance(text, str):
        return None
    try:
        when = email.utils.parsedate_to_datetime(text)
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=datetime.timezone.utc)
    now = datetime.datetime.now(datetime.timezone.utc)
    return max(0.0, (when - now).total_seconds())
