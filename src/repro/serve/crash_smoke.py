"""kill -9 recovery smoke: the daemon must survive its own sudden death.

``python -m repro.serve.crash_smoke`` (or ``make crash-smoke``) proves the
journal's whole promise end to end, as real subprocesses:

1. compute a crash-free reference value for every probe job by invoking
   the ``design_run`` runner directly;
2. spawn ``repro serve --journal <wal>`` and submit the probes with
   ``wait=false`` (``--batch-max 1`` so digests settle one at a time);
3. ``SIGKILL`` the daemon the moment the journal shows at least one
   settled digest — mid-stream, with work both settled and in flight;
4. restart a daemon on the same journal and cache, and require that
   every digest settles with the byte-identical reference value;
5. require that digests settled *before* the kill are answered from the
   recovered registry without re-execution (the ``executed`` counter
   must count only the re-enqueued in-flight work).

Exit code 0 = all checks passed; 1 = a check failed (each failure is
printed); 2 = harness error (daemon did not start / kill window missed).
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..runtime.journal import JobJournal
from ..runtime.spec import JobSpec, resolve_job_type
from .client import ServeClient
from .smoke import start_daemon

#: ~1 s per job on a development machine: slow enough that the SIGKILL
#: reliably lands while later probes are still in flight, fast enough
#: that the whole smoke stays under a minute.
PROBE_PARAMS = {
    "spec": {
        "name": "crash-smoke",
        "finger_count": 32,
        "quadrant_count": 4,
        "rows_per_quadrant": 4,
    },
    "design_seed": 3,
    "grid": 32,
    "initial_temp": 1.0,
    "final_temp": 0.01,
    "cooling": 0.9,
    "moves_per_temp": 250,
}

#: Distinct seeds = distinct digests = one probe job each.
PROBE_SEEDS = (7, 11, 13, 17)


def _journal_settled(path: str) -> Dict[str, dict]:
    """Read-only replay of the journal's settled records ({} if absent).

    The file may be mid-append under the live daemon; replay tolerates
    the torn tail that implies.
    """
    if not Path(path).exists():
        return {}
    journal = JobJournal(path, compact_bytes=None)
    try:
        return journal.settled_records()
    finally:
        journal.close()


def run_crash_smoke(verbose: bool = True) -> List[str]:
    """All crash-recovery checks; returns failure messages."""
    problems: List[str] = []

    def check(ok: bool, message: str) -> None:
        if verbose:
            print(("ok  " if ok else "FAIL") + f" {message}", flush=True)
        if not ok:
            problems.append(message)

    runner = resolve_job_type("design_run")
    reference = {}
    for seed in PROBE_SEEDS:
        digest = JobSpec("design_run", PROBE_PARAMS, seed=seed).digest()
        reference[digest] = runner(dict(PROBE_PARAMS), seed)
    if verbose:
        print(f"reference: {len(reference)} crash-free values", flush=True)

    with tempfile.TemporaryDirectory(prefix="repro-crash-smoke-") as tmp:
        journal_path = str(Path(tmp) / "jobs.wal")
        cache_dir = str(Path(tmp) / "cache")
        daemon_args = [
            "--journal", journal_path,
            "--batch-max", "1",
            "--batch-window", "0",
        ]

        # -- phase 1: submit, then SIGKILL mid-stream ----------------------
        process, port = start_daemon(
            cache_dir, workers=1, extra_args=daemon_args
        )
        killed_cleanly = False
        try:
            client = ServeClient(port=port, timeout=60.0, retries=3)
            digests = []
            for seed in PROBE_SEEDS:
                status, envelope = client.submit(
                    "design_run", PROBE_PARAMS, seed=seed, wait=False
                )
                digests.append(envelope["job"])
            check(
                sorted(digests) == sorted(reference),
                "daemon digests match the reference digests",
            )
            deadline = time.monotonic() + 120.0
            settled_before: Dict[str, dict] = {}
            while time.monotonic() < deadline:
                settled_before = _journal_settled(journal_path)
                if settled_before:
                    break
                time.sleep(0.05)
            if not settled_before:
                raise RuntimeError(
                    "no digest settled within 120s; cannot place the kill"
                )
            process.send_signal(signal.SIGKILL)
            returncode = process.wait(timeout=30)
            killed_cleanly = True
            check(
                returncode == -signal.SIGKILL,
                f"daemon died of SIGKILL (returncode {returncode})",
            )
        finally:
            if not killed_cleanly:
                process.kill()
                process.wait(timeout=30)

        # The journal is now the only truth: re-read it post-mortem.
        settled_before = _journal_settled(journal_path)
        inflight_at_kill = [
            digest for digest in reference if digest not in settled_before
        ]
        if verbose:
            print(
                f"killed with {len(settled_before)} settled, "
                f"{len(inflight_at_kill)} in flight", flush=True,
            )
        check(
            len(settled_before) >= 1,
            "at least one digest settled before the kill",
        )
        for digest, record in settled_before.items():
            check(
                record.get("value") == reference[digest],
                f"pre-kill settled value is the reference value "
                f"({digest[:12]})",
            )

        # -- phase 2: restart on the same journal + cache ------------------
        process, port = start_daemon(
            cache_dir, workers=1, extra_args=daemon_args
        )
        try:
            client = ServeClient(port=port, timeout=60.0, retries=3)
            deadline = time.monotonic() + 180.0
            for digest in reference:
                envelope = {}
                while time.monotonic() < deadline:
                    status, envelope = client.status(digest)
                    if status == 200 and envelope.get("status") == "done":
                        break
                    if envelope.get("status") == "failed":
                        break
                    time.sleep(0.1)
                check(
                    envelope.get("status") == "done",
                    f"digest {digest[:12]} settles after restart "
                    f"(got {envelope.get('status')}: {envelope.get('error')})",
                )
                same = json.dumps(
                    envelope.get("value"), sort_keys=True
                ) == json.dumps(reference[digest], sort_keys=True)
                check(
                    same,
                    f"recovered value for {digest[:12]} is byte-identical "
                    f"to the crash-free reference",
                )
            health = client.health()
            executed = health.get("counters", {}).get("executed", -1)
            check(
                executed == len(inflight_at_kill),
                f"restart re-executed only the in-flight work "
                f"(executed={executed}, expected {len(inflight_at_kill)})",
            )
            # A resubmit of a pre-kill digest must dedup, not re-run.
            probe = next(iter(settled_before))
            probe_seed = next(
                seed for seed in PROBE_SEEDS
                if JobSpec("design_run", PROBE_PARAMS, seed=seed).digest()
                == probe
            )
            status, envelope = client.submit(
                "design_run", PROBE_PARAMS, seed=probe_seed, wait=True
            )
            check(
                status == 200 and envelope.get("deduped"),
                f"resubmitted pre-kill digest dedups against the recovered "
                f"registry (status={status}, deduped={envelope.get('deduped')})",
            )
            executed_after = client.health()["counters"]["executed"]
            check(
                executed_after == executed,
                "resubmit did not trigger a re-execution",
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                returncode = process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                returncode = process.wait()
                problems.append("daemon did not exit within 30s of SIGTERM")
        check(
            returncode == 128 + signal.SIGTERM,
            f"second daemon drains cleanly on SIGTERM (got {returncode})",
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    try:
        problems = run_crash_smoke(verbose=not args.quiet)
    except RuntimeError as exc:
        print(f"crash smoke harness error: {exc}", file=sys.stderr)
        return 2
    if problems:
        print(f"crash smoke: {len(problems)} failure(s)", file=sys.stderr)
        return 1
    print("crash smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
