"""repro.serve — the long-running co-design service.

Turns the batch :class:`~repro.runtime.JobEngine` into a daemon
(``repro serve``): a stdlib asyncio HTTP front-end with a versioned JSON
wire schema (``wire``), digest-based request dedup + micro-batching over
a warm persistent worker pool (``daemon``/``state``), SSE progress
streaming fed by the :mod:`repro.obs` telemetry, bounded-queue
backpressure, and a graceful SIGTERM drain.  ``client`` is the stdlib
HTTP client used by the smoke harness (``smoke``), the serve fuzz oracle
and the benchmark.
"""

from .client import ServeClient, ServeClientError
from .daemon import ServeApp, ServeConfig, ServeHandle, serve_main
from .state import JobRecord, JobRegistry
from .wire import (
    MAX_BODY_BYTES,
    WIRE_SCHEMA_VERSION,
    SubmitRequest,
    WireError,
    error_body,
    parse_request,
    validate_request,
)

__all__ = [
    "MAX_BODY_BYTES",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeHandle",
    "SubmitRequest",
    "JobRecord",
    "JobRegistry",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "error_body",
    "parse_request",
    "serve_main",
    "validate_request",
]
