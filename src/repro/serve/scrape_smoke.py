"""Telemetry-plane smoke: scrape a loaded daemon and validate /metrics.

``python -m repro.serve.scrape_smoke`` (or ``make scrape-smoke``) is the
observability twin of :mod:`repro.serve.smoke`:

1. spawn ``repro serve --port 0`` as a real subprocess;
2. submit a small ``design_run`` job so the request histograms, queue
   gauges, and worker-pool metrics have something to show;
3. ``GET /metrics`` and run the exposition through
   :func:`repro.obs.live.validate_exposition` (the promtool-style
   grammar/semantics checker);
4. require the load to be visible: a nonzero ``repro_serve_request_seconds``
   histogram, the queue/in-flight gauges, and the serve counters;
5. ``GET /v1/stats`` and cross-check its JSON against ``/healthz``;
6. SIGTERM the daemon and require exit code 143.

Exit code 0 = all checks passed; 1 = a check failed; 2 = harness error.
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import tempfile
from typing import List, Optional

from ..obs.live import validate_exposition
from .client import ServeClient
from .smoke import SMOKE_PARAMS, start_daemon


def run_scrape_smoke(workers: int = 1, verbose: bool = True) -> List[str]:
    """All scrape checks against one daemon; returns failure messages."""
    problems: List[str] = []

    def check(ok: bool, message: str) -> None:
        if verbose:
            print(("ok  " if ok else "FAIL") + f" {message}")
        if not ok:
            problems.append(message)

    with tempfile.TemporaryDirectory(prefix="repro-scrape-smoke-") as tmp:
        process, port = start_daemon(tmp, workers=workers)
        try:
            client = ServeClient(
                port=port, timeout=120.0, connect_timeout=10.0, retries=3
            )

            # An empty-registry scrape must already be valid exposition.
            empty = client.metrics()
            check(
                not validate_exposition(empty),
                "pre-load scrape is valid exposition",
            )

            status, envelope = client.submit(
                "design_run", SMOKE_PARAMS, seed=7, raise_on_error=False
            )
            check(
                status == 200 and envelope.get("status") == "done",
                f"load job settles done (HTTP {status}, "
                f"{envelope.get('status')})",
            )

            text = client.metrics()
            grammar_problems = validate_exposition(text)
            check(
                not grammar_problems,
                "loaded scrape passes the exposition validator"
                + (f" ({'; '.join(grammar_problems[:3])})"
                   if grammar_problems else ""),
            )

            def sample_value(needle: str) -> Optional[float]:
                for line in text.splitlines():
                    if line.startswith("#") or not line.strip():
                        continue
                    if line.startswith(needle):
                        try:
                            return float(line.rsplit(None, 1)[-1])
                        except ValueError:
                            return None
                return None

            request_count = sum(
                float(line.rsplit(None, 1)[-1])
                for line in text.splitlines()
                if line.startswith("repro_serve_request_seconds_count")
            )
            check(
                request_count >= 2,
                f"request-latency histogram counted the traffic "
                f"(count={request_count:g})",
            )
            check(
                'endpoint="/v1/jobs"' in text,
                "histogram is labeled by normalized endpoint",
            )
            check(
                sample_value("repro_serve_queue_depth") is not None,
                "queue-depth gauge is exported",
            )
            check(
                (sample_value("repro_serve_executed_total") or 0) >= 1,
                "serve counters mirror into the registry",
            )

            stats = client.stats()
            check(
                stats.get("health", {}).get("status") == "ok",
                "/v1/stats embeds a healthy /healthz snapshot",
            )
            check(
                "repro_serve_request_seconds" in stats.get("metrics", {}),
                "/v1/stats carries the metric families as JSON",
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                returncode = process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                returncode = process.wait()
                problems.append("daemon did not exit within 30s of SIGTERM")
        check(
            returncode == 128 + signal.SIGTERM,
            f"SIGTERM exits 143 (got {returncode})",
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    try:
        problems = run_scrape_smoke(workers=args.workers,
                                    verbose=not args.quiet)
    except (RuntimeError, subprocess.SubprocessError) as exc:
        print(f"scrape smoke harness error: {exc}", file=sys.stderr)
        return 2
    if problems:
        print(f"scrape smoke: {len(problems)} failure(s)", file=sys.stderr)
        return 1
    print("scrape smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
