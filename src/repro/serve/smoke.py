"""End-to-end smoke of the daemon as a real subprocess.

``python -m repro.serve.smoke`` (or ``make serve-smoke``) exercises the
full deployment path, not the in-process harness:

1. spawn ``repro serve --port 0`` and parse the ``serve.listening``
   announcement for the ephemeral port;
2. POST a small ``design_run`` job and require HTTP 200 with a ``done``
   envelope;
3. POST the identical job again and require the answer to come back
   from the cache or the in-memory registry (``cached``/``deduped``),
   never as a second execution;
4. check ``/healthz`` accounting;
5. SIGTERM the daemon and require a clean drain with exit code 143.

Exit code 0 = all checks passed; 1 = a check failed (each failure is
printed); 2 = harness error (daemon did not start).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

from .client import ServeClient

#: Small but non-trivial: a real two-step co-design run that finishes in
#: a few seconds and is deterministic under its pinned seed.
SMOKE_PARAMS = {
    "spec": {
        "name": "serve-smoke",
        "finger_count": 16,
        "quadrant_count": 4,
        "rows_per_quadrant": 2,
    },
    "design_seed": 3,
    "grid": 16,
    "initial_temp": 1.0,
    "final_temp": 0.4,
    "cooling": 0.5,
    "moves_per_temp": 2,
}


def start_daemon(cache_dir: str, workers: int = 1, timeout: float = 30.0,
                 extra_args: Optional[List[str]] = None):
    """Spawn ``repro serve --port 0``; returns ``(process, port)``."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", str(workers),
            "--cache-dir", cache_dir,
            "--drain-deadline", "20",
            *(extra_args or []),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise RuntimeError(
                    f"daemon exited {process.returncode} before listening: "
                    f"{process.stderr.read()[-2000:]}"
                )
            time.sleep(0.05)
            continue
        try:
            message = json.loads(line)
        except ValueError:
            continue
        if message.get("event") == "serve.listening":
            return process, int(message["port"])
    process.kill()
    raise RuntimeError(f"daemon did not announce a port within {timeout}s")


def run_smoke(workers: int = 1, verbose: bool = True) -> List[str]:
    """All smoke checks against one daemon; returns failure messages."""
    problems: List[str] = []

    def check(ok: bool, message: str) -> None:
        if verbose:
            print(("ok  " if ok else "FAIL") + f" {message}")
        if not ok:
            problems.append(message)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        process, port = start_daemon(tmp, workers=workers)
        try:
            # Retries with backoff ride out the daemon's startup window
            # and transient 429/503 shedding (Retry-After honored).
            client = ServeClient(
                port=port, timeout=120.0, connect_timeout=10.0, retries=3
            )

            health = client.health()
            check(health.get("status") == "ok", "healthz reports ok")

            status, first = client.submit(
                "design_run", SMOKE_PARAMS, seed=7, raise_on_error=False
            )
            check(status == 200, f"first submit returns 200 (got {status})")
            check(
                first.get("status") == "done",
                f"first submit settles done (got {first.get('status')}: "
                f"{first.get('error')})",
            )
            check(
                not first.get("cached") and not first.get("deduped"),
                "first submit actually executed",
            )

            status, second = client.submit(
                "design_run", SMOKE_PARAMS, seed=7, raise_on_error=False
            )
            check(status == 200, f"second submit returns 200 (got {status})")
            check(
                bool(second.get("cached")) or bool(second.get("deduped")),
                "identical second submit is served without re-executing "
                f"(cached={second.get('cached')} deduped={second.get('deduped')})",
            )
            check(
                second.get("value") == first.get("value"),
                "second submit returns the identical value",
            )

            health = client.health()
            counters = health.get("counters", {})
            check(
                counters.get("executed", 0) <= 1,
                f"daemon executed exactly one job (executed="
                f"{counters.get('executed')})",
            )
            check(
                counters.get("requests", 0) >= 3,
                "request counter advanced",
            )
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                returncode = process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                returncode = process.wait()
                problems.append("daemon did not exit within 30s of SIGTERM")
        check(
            returncode == 128 + signal.SIGTERM,
            f"SIGTERM exits 143 (got {returncode})",
        )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    try:
        problems = run_smoke(workers=args.workers, verbose=not args.quiet)
    except RuntimeError as exc:
        print(f"smoke harness error: {exc}", file=sys.stderr)
        return 2
    if problems:
        print(f"serve smoke: {len(problems)} failure(s)", file=sys.stderr)
        return 1
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
