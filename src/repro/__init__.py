"""repro — Package routability- and IR-drop-aware finger/pad planning.

A faithful, from-scratch reproduction of:

    C.-H. Lu, H.-M. Chen, C.-N. J. Liu, W.-Y. Shih,
    "Package routability- and IR-drop-aware finger/pad assignment in
    chip-package co-design", DATE 2009
    (journal extension: INTEGRATION, the VLSI Journal 46, 2012).

Public API overview
-------------------
``repro.package``
    BGA package model: nets, bump balls, fingers, quadrants, stacking.
``repro.assign``
    Finger/pad assignment: random baseline, IFA, DFA, legality checks.
``repro.routing``
    Monotonic two-layer router, congestion estimation, wirelength.
``repro.power``
    Power-grid IR-drop: finite-difference solver and compact proxy.
``repro.exchange``
    SA-based finger/pad exchange (IR-drop, density, bonding wires).
``repro.circuits``
    Table-1 test circuits, figure examples, the Fig.-6 real-chip proxy.
``repro.flow``
    Two-step co-design flow, assigner comparison, paper-style reports.
"""

from . import (
    assign,
    circuits,
    exchange,
    flow,
    geometry,
    kernels,
    package,
    power,
    routing,
    runtime,
)
from . import api
from .api import (
    AssignResult,
    EvaluateResult,
    ExchangeOutcome,
    RunResult,
    evaluate,
    load_design,
    run,
)
from .assign import Assignment, DFAAssigner, IFAAssigner, RandomAssigner
from .exchange import CostWeights, FingerPadExchanger, SAParams
from .flow import CoDesignFlow, compare_assigners
from .package import (
    BumpArray,
    FingerRow,
    Net,
    NetList,
    NetType,
    PackageDesign,
    PackageTechnology,
    Quadrant,
    StackingConfig,
    quadrant_from_rows,
)
from .power import FDSolver, IRDropAnalyzer, PowerGridConfig
from .routing import MonotonicRouter, density_map, max_density, total_flyline_length

__version__ = "1.0.0"

__all__ = [
    "AssignResult",
    "Assignment",
    "BumpArray",
    "EvaluateResult",
    "ExchangeOutcome",
    "RunResult",
    "CoDesignFlow",
    "CostWeights",
    "DFAAssigner",
    "FDSolver",
    "FingerPadExchanger",
    "FingerRow",
    "IFAAssigner",
    "IRDropAnalyzer",
    "MonotonicRouter",
    "Net",
    "NetList",
    "NetType",
    "PackageDesign",
    "PackageTechnology",
    "PowerGridConfig",
    "Quadrant",
    "RandomAssigner",
    "SAParams",
    "StackingConfig",
    "__version__",
    "api",
    "compare_assigners",
    "density_map",
    "evaluate",
    "load_design",
    "max_density",
    "quadrant_from_rows",
    "run",
    "total_flyline_length",
]
