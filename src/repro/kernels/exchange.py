"""Array-backed exchange kernel: O(1) adjacent-swap deltas for the SA loop.

``CachedExchangeCost`` re-derives a dirtied side's pad fractions, section
runs and omega groups on every ``total()`` call — O(rows * n) per move,
which caps the annealer near the paper's 448-finger circuits.  This kernel
mirrors the object model as flat arrays (see :mod:`.state`) and keeps every
Eq.-3 ingredient incrementally:

* **IR term** — the compact proxy is the sum of squared circular gaps
  between supply-pad ring positions.  All ring positions live on the
  uniform grid ``(g - 0.5) / N``, so gaps are *integers* in slot units and
  the proxy is ``sum(gap^2) / N^2`` exactly.  A doubly-linked ring over the
  occupied positions per supply network turns a pad move into a four-gap
  integer update — no floating-point accumulation, hence no drift, ever.
* **density term (Eq. 2)** — an adjacent swap crosses at most one via of
  one watched line, moving one wire between two neighbouring runs.  A flat
  run-delta array plus a histogram over delta values maintains
  ``max_c (I_c_new - I_c_ini)`` in O(1) amortized.
* **bonding term (omega)** — tier bitmasks per finger group; a swap only
  re-ORs the (at most) two groups it straddles, O(psi).
* **wirelength guard** (optional) — per-net flyline lengths recomputed
  from static finger/via coordinates, four ``hypot`` calls per move, with
  a periodic vectorized resync to keep float accumulation below 1e-12.

Move proposal replicates :class:`~repro.exchange.moves.MoveGenerator`
call-for-call (same candidate ordering, same ``rng`` consumption, same
legality rule), so a shared seed yields the *identical* accept/reject
trace and final assignment as the object backend —
``tests/test_kernels.py`` proves it on every Table-2/Table-3 circuit and
cross-checks kernel totals against ``verify.checkers``' exact Eq.-3
re-derivation to 1e-9.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..assign import Assignment
from ..errors import ExchangeError
from ..exchange.bonding import omega_of_design
from ..exchange.cost import CostWeights
from ..package import NetType
from ..power import compact_ir_cost, supply_pad_fractions
from .state import SideArrays, build_side_arrays

#: How many swaps between vectorized wirelength resyncs (float-drift guard;
#: the integer-backed IR/density/omega terms never drift and never resync).
WL_RESYNC_INTERVAL = 4096


class ArrayExchangeKernel:
    """Drop-in move source + cost for :class:`SimulatedAnnealer`.

    Construct from a design and its baseline (post-assignment)
    ``{side: Assignment}``; the kernel starts *at* the baseline.  Feed
    ``propose`` / ``apply`` / ``undo`` / ``cost`` / ``snapshot`` straight
    into ``SimulatedAnnealer.optimize``.
    """

    def __init__(
        self,
        design,
        baseline_assignments: Dict,
        weights: Optional[CostWeights] = None,
        net_type: Optional[NetType] = NetType.POWER,
        ir_proxy=None,
        track_all_rows: bool = True,
        split_networks: bool = False,
        power_only: Optional[bool] = None,
        max_attempts: int = 16,
        wl_resync_interval: Optional[int] = None,
    ) -> None:
        if ir_proxy is not None:
            raise ExchangeError(
                "the array kernel implements the paper's compact gap-spread "
                "proxy only; use backend='object' to inject a custom ir_proxy"
            )
        self.design = design
        self.weights = weights or CostWeights()
        self.net_type = net_type
        self.split_networks = split_networks
        self.psi = design.stacking.tier_count
        self.max_attempts = max_attempts
        if wl_resync_interval is not None and wl_resync_interval < 1:
            raise ExchangeError(
                f"wl_resync_interval must be >= 1, got {wl_resync_interval}"
            )
        #: None = follow the module-level ``WL_RESYNC_INTERVAL`` (read at
        #: swap time, so tests can monkeypatch it); an int pins it per
        #: kernel — the fuzzer uses tiny values to force drift resyncs.
        self.wl_resync_interval = wl_resync_interval
        power_only = (self.psi == 1) if power_only is None else power_only
        self.power_only = power_only

        # -- normalizers: the exact model's own code paths, so both
        # backends divide by bit-identical constants.
        if split_networks:
            raw = sum(
                compact_ir_cost(
                    supply_pad_fractions(design, baseline_assignments, net_type=nt)
                )
                for nt in (NetType.POWER, NetType.GROUND)
            )
        else:
            raw = compact_ir_cost(
                supply_pad_fractions(design, baseline_assignments, net_type=net_type)
            )
        self._ir_initial = max(raw, 1e-12)
        self._omega_initial = max(omega_of_design(baseline_assignments, self.psi), 1)
        self._track_wl = self.weights.wirelength > 0
        self._wl_initial = 1.0
        if self._track_wl:
            from ..routing.wirelength import total_flyline_length_of_design

            self._wl_initial = max(
                total_flyline_length_of_design(baseline_assignments), 1e-12
            )

        # -- flat state, one block per side in design ring order
        self.sides: List[SideArrays] = []
        run_base = 0
        for side in design.sides:
            arrays = build_side_arrays(
                design,
                side,
                baseline_assignments[side],
                net_type,
                split_networks,
                track_all_rows,
                run_base,
            )
            run_base += sum(wr.run_count for wr in arrays.watched)
            self.sides.append(arrays)
        self._total_runs = run_base
        self._ring = design.ring_slot_count()
        self._ring_sq = float(self._ring) * float(self._ring)
        self._class_count = 2 if split_networks else 1

        # candidate pool for propose(), mirroring MoveGenerator exactly:
        # (side, net) pairs in design order, supply-only for 2-D ICs
        self._candidates: List[Tuple[int, int]] = []
        for q, arrays in enumerate(self.sides):
            for index, net in enumerate(arrays.quadrant.netlist):
                if power_only and not net.net_type.is_supply:
                    continue
                self._candidates.append((q, index))

        if self._track_wl:
            self._build_wirelength_tables()
        #: Observability counters (read by the exchanger's ``kernel.stats``
        #: telemetry event): total ``_swap`` calls and wirelength resyncs.
        self.swap_count = 0
        self.resync_count = 0
        self._rebuild()

    # -- state (re)construction ---------------------------------------------

    def _rebuild(self) -> None:
        """Recompute every incremental structure from the slot arrays."""
        self._rebuild_ir()
        self._rebuild_density()
        if self.psi > 1:
            self._rebuild_bonding()
        if self._track_wl:
            self._wl_total = self._exact_wirelength()
            self._wl_since_resync = 0

    def _rebuild_ir(self) -> None:
        ring = self._ring
        # per network class: pad count, integer sum of squared gaps, and a
        # doubly-linked circular list over occupied global ring positions
        self._pad_count = [0] * self._class_count
        self._sumsq = [0] * self._class_count
        self._nxt = [np.zeros(ring + 1, dtype=np.int64) for _ in range(self._class_count)]
        self._prv = [np.zeros(ring + 1, dtype=np.int64) for _ in range(self._class_count)]
        for cls in range(self._class_count):
            positions = np.sort(
                np.concatenate(
                    [
                        arrays.ring_offset
                        + arrays.net_slot[arrays.supply_class == cls]
                        + 1
                        for arrays in self.sides
                    ]
                )
            )
            count = len(positions)
            self._pad_count[cls] = count
            if count == 0:
                raise ExchangeError(
                    "design has no supply pads of the requested type"
                )
            nxt, prv = self._nxt[cls], self._prv[cls]
            if count == 1:
                position = int(positions[0])
                nxt[position] = prv[position] = position
                self._sumsq[cls] = ring * ring
                continue
            nxt[positions[:-1]] = positions[1:]
            nxt[positions[-1]] = positions[0]
            prv[positions[1:]] = positions[:-1]
            prv[positions[0]] = positions[-1]
            gaps = np.diff(positions)
            wrap = ring - int(positions[-1]) + int(positions[0])
            self._sumsq[cls] = int(np.sum(gaps * gaps)) + wrap * wrap

    def _rebuild_density(self) -> None:
        from .state import row_run_counts

        deltas = np.zeros(self._total_runs, dtype=np.int64)
        for arrays in self.sides:
            for wr in arrays.watched:
                counts = row_run_counts(
                    arrays.net_slot, arrays.rows, wr.via_nets, wr.row
                )
                deltas[wr.run_base : wr.run_base + wr.run_count] = (
                    counts - wr.baseline_counts
                )
        self._run_delta = deltas
        values, counts = np.unique(deltas, return_counts=True)
        self._hist: Dict[int, int] = {
            int(value): int(count) for value, count in zip(values, counts)
        }
        self._max_delta = int(values[-1]) if len(values) else 0

    def _rebuild_bonding(self) -> None:
        psi = self.psi
        self._group_zeros: List[np.ndarray] = []
        total = 0
        for arrays in self.sides:
            tier_bits = np.left_shift(1, arrays.tiers[arrays.slot_net] - 1)
            group_count = -(-arrays.slot_count // psi)
            zeros = np.empty(group_count, dtype=np.int64)
            for group in range(group_count):
                mask = int(
                    np.bitwise_or.reduce(tier_bits[group * psi : (group + 1) * psi])
                )
                zeros[group] = psi - bin(mask).count("1")
            self._group_zeros.append(zeros)
            total += int(zeros.sum())
        self._omega_total = total

    def _build_wirelength_tables(self) -> None:
        self._finger_x: List[np.ndarray] = []
        self._finger_y: List[float] = []
        self._via_x: List[np.ndarray] = []
        self._via_y: List[np.ndarray] = []
        self._wl_base: List[np.ndarray] = []
        for arrays in self.sides:
            quadrant = arrays.quadrant
            fingers = quadrant.fingers
            self._finger_x.append(
                np.array(
                    [
                        fingers.slot_position(slot).x
                        for slot in range(1, arrays.slot_count + 1)
                    ]
                )
            )
            self._finger_y.append(fingers.y)
            vx = np.empty(arrays.slot_count)
            vy = np.empty(arrays.slot_count)
            base = np.empty(arrays.slot_count)
            for index, net in enumerate(arrays.quadrant.netlist):
                via = quadrant.bumps.via_position(net.id)
                ball = quadrant.bumps.ball_position(net.id)
                vx[index] = via.x
                vy[index] = via.y
                base[index] = via.euclidean(ball)
            self._via_x.append(vx)
            self._via_y.append(vy)
            self._wl_base.append(base)

    # -- annealer interface ---------------------------------------------------

    def propose(self, rng: random.Random) -> Optional[Tuple[int, int]]:
        """One random legal adjacent swap ``(side_index, lo_slot_1based)``.

        Byte-compatible with ``MoveGenerator.propose``: identical candidate
        ordering and rng consumption, so shared seeds walk both backends
        through the same move sequence.
        """
        if not self._candidates:
            return None
        for __ in range(self.max_attempts):
            q, net = rng.choice(self._candidates)
            arrays = self.sides[q]
            slot = int(arrays.net_slot[net]) + 1
            direction = rng.choice((-1, 1))
            neighbour = slot + direction
            count = arrays.slot_count
            if not (1 <= neighbour <= count):
                neighbour = slot - direction
                if not (1 <= neighbour <= count):
                    continue
            lo = slot if slot < neighbour else neighbour
            net_lo = int(arrays.slot_net[lo - 1])
            net_hi = int(arrays.slot_net[lo])
            if arrays.rows[net_lo] != arrays.rows[net_hi]:
                return (q, lo)
        return None

    def apply(self, move: Tuple[int, int]) -> None:
        self._swap(move[0], move[1])

    def undo(self, move: Tuple[int, int]) -> None:
        # adjacent swaps are involutions; integer terms revert exactly
        self._swap(move[0], move[1])

    def cost(self) -> float:
        """Current Eq.-3 total, recomposed from the integer state in O(1)."""
        raw = self._sumsq[0]
        for cls in range(1, self._class_count):
            raw += self._sumsq[cls]
        total = self.weights.ir * (raw / self._ring_sq / self._ir_initial)
        total += self.weights.density * float(self._max_delta)
        if self.psi > 1:
            total += self.weights.bonding * (self._omega_total / self._omega_initial)
        if self._track_wl:
            total += self.weights.wirelength * (self._wl_total / self._wl_initial)
        return total

    def snapshot(self) -> List[np.ndarray]:
        """Cheap copy of the current per-side slot->net arrays."""
        return [arrays.slot_net.copy() for arrays in self.sides]

    def restore(self, snapshot: List[np.ndarray]) -> None:
        """Jump back to a snapshot and rebuild the incremental state."""
        for arrays, slots in zip(self.sides, snapshot):
            arrays.slot_net[:] = slots
            arrays.net_slot[arrays.slot_net] = np.arange(
                arrays.slot_count, dtype=np.int64
            )
        self._rebuild()

    # -- checkpoint/resume -------------------------------------------------

    def checkpoint_state(self) -> dict:
        """JSON-able full kernel state for crash-safe SA checkpointing.

        The integer terms (IR, density, omega) rebuild exactly from the
        slot arrays, but the wirelength guard is a *float accumulator*
        with deliberate drift between resyncs — restoring via
        :meth:`restore` alone would reset it to the exact value and
        desynchronize a resumed run's accept trace from the uninterrupted
        one.  The accumulator, its resync phase, and the swap counters are
        therefore part of the state.  (JSON round-trips Python floats
        exactly, so the restored accumulator is bit-identical.)
        """
        state = {
            "slots": [arrays.slot_net.tolist() for arrays in self.sides],
            "swap_count": self.swap_count,
            "resync_count": self.resync_count,
        }
        if self._track_wl:
            state["wl_total"] = self._wl_total
            state["wl_since_resync"] = self._wl_since_resync
        return state

    def restore_checkpoint(self, state: dict) -> None:
        """Resume from :meth:`checkpoint_state`, bit-identically."""
        self.restore(
            [np.asarray(slots, dtype=np.int64) for slots in state["slots"]]
        )
        self.swap_count = int(state.get("swap_count", 0))
        self.resync_count = int(state.get("resync_count", 0))
        if self._track_wl and "wl_total" in state:
            self._wl_total = float(state["wl_total"])
            self._wl_since_resync = int(state.get("wl_since_resync", 0))

    # -- hot path --------------------------------------------------------------

    def _swap(self, q: int, lo: int) -> None:
        self.swap_count += 1
        arrays = self.sides[q]
        slot_net = arrays.slot_net
        i = lo - 1
        j = lo
        net_a = int(slot_net[i])
        net_b = int(slot_net[j])
        slot_net[i] = net_b
        slot_net[j] = net_a
        arrays.net_slot[net_a] = j
        arrays.net_slot[net_b] = i

        # IR: at most one pad per tracked network moves by one ring slot
        class_a = int(arrays.supply_class[net_a])
        class_b = int(arrays.supply_class[net_b])
        if class_a != class_b:
            position = arrays.ring_offset + i + 1
            if class_a >= 0:
                self._move_pad(class_a, position, position + 1)
            if class_b >= 0:
                self._move_pad(class_b, position + 1, position)

        # density: the passing net crosses one via of the higher row
        row_a = int(arrays.rows[net_a])
        row_b = int(arrays.rows[net_b])
        if row_a > row_b:
            via, leftward = net_a, True
        else:
            via, leftward = net_b, False
        base = int(arrays.net_run_base[via])
        if base >= 0:
            k = base + int(arrays.via_index[via])
            if leftward:
                # via sat left; the passing wire moved from run k+1 to run k
                self._bump_run(k, 1)
                self._bump_run(k + 1, -1)
            else:
                self._bump_run(k, -1)
                self._bump_run(k + 1, 1)

        # bonding: only group-straddling swaps change any OR-mask
        if self.psi > 1:
            psi = self.psi
            group_i = i // psi
            group_j = j // psi
            if group_i != group_j:
                self._refresh_group(q, group_i)
                self._refresh_group(q, group_j)

        if self._track_wl:
            self._wl_total += (
                self._flyline(q, net_a, j)
                + self._flyline(q, net_b, i)
                - self._flyline(q, net_a, i)
                - self._flyline(q, net_b, j)
            )
            self._wl_since_resync += 1
            interval = (
                self.wl_resync_interval
                if self.wl_resync_interval is not None
                else WL_RESYNC_INTERVAL
            )
            if self._wl_since_resync >= interval:
                self._wl_total = self._exact_wirelength()
                self._wl_since_resync = 0
                self.resync_count += 1

    def _move_pad(self, cls: int, position: int, new_position: int) -> None:
        nxt = self._nxt[cls]
        prv = self._prv[cls]
        if self._pad_count[cls] == 1:
            nxt[new_position] = prv[new_position] = new_position
            return
        left = int(prv[position])
        right = int(nxt[position])
        ring = self._ring
        old_l = (position - left) % ring
        old_r = (right - position) % ring
        new_l = (new_position - left) % ring
        new_r = (right - new_position) % ring
        self._sumsq[cls] += new_l * new_l + new_r * new_r - old_l * old_l - old_r * old_r
        nxt[left] = new_position
        prv[right] = new_position
        nxt[new_position] = right
        prv[new_position] = left

    def _bump_run(self, run: int, step: int) -> None:
        old = int(self._run_delta[run])
        new = old + step
        self._run_delta[run] = new
        hist = self._hist
        remaining = hist[old] - 1
        if remaining:
            hist[old] = remaining
        else:
            del hist[old]
        hist[new] = hist.get(new, 0) + 1
        if new > self._max_delta:
            self._max_delta = new
        elif old == self._max_delta and old not in hist:
            peak = self._max_delta - 1
            while peak not in hist:
                peak -= 1
            self._max_delta = peak

    def _refresh_group(self, q: int, group: int) -> None:
        arrays = self.sides[q]
        psi = self.psi
        start = group * psi
        stop = min(start + psi, arrays.slot_count)
        mask = 0
        slot_net = arrays.slot_net
        tiers = arrays.tiers
        for slot in range(start, stop):
            mask |= 1 << (int(tiers[slot_net[slot]]) - 1)
        zeros = psi - bin(mask).count("1")
        group_zeros = self._group_zeros[q]
        self._omega_total += zeros - int(group_zeros[group])
        group_zeros[group] = zeros

    def _flyline(self, q: int, net: int, slot: int) -> float:
        # math.hypot, matching Point.euclidean bit for bit
        return (
            math.hypot(
                float(self._finger_x[q][slot]) - float(self._via_x[q][net]),
                self._finger_y[q] - float(self._via_y[q][net]),
            )
            + float(self._wl_base[q][net])
        )

    def _exact_wirelength(self) -> float:
        total = 0.0
        for q, arrays in enumerate(self.sides):
            slot_of_net = arrays.net_slot
            dx = self._finger_x[q][slot_of_net] - self._via_x[q]
            dy = self._finger_y[q] - self._via_y[q]
            total += float(np.sum(np.hypot(dx, dy) + self._wl_base[q]))
        return total

    # -- zero-temperature polish ------------------------------------------------

    def polish(self, passes: int) -> None:
        """Greedy sweep of every legal adjacent swap (see ``_polish``).

        Semantically identical to the object backend's polish: same side
        and slot order, same strict-improvement threshold, so both
        backends converge to the same local optimum.
        """
        current = self.cost()
        for __ in range(passes):
            improved = False
            for q, arrays in enumerate(self.sides):
                rows = arrays.rows
                slot_net = arrays.slot_net
                for lo in range(1, arrays.slot_count):
                    if rows[int(slot_net[lo - 1])] == rows[int(slot_net[lo])]:
                        continue
                    self._swap(q, lo)
                    candidate = self.cost()
                    if candidate < current - 1e-12:
                        current = candidate
                        improved = True
                    else:
                        self._swap(q, lo)
            if not improved:
                break

    # -- boundary conversions ----------------------------------------------------

    def orders(self, snapshot: Optional[List[np.ndarray]] = None) -> Dict:
        """``{side: [net ids in slot order]}`` of a snapshot (or the state)."""
        slots = snapshot if snapshot is not None else [a.slot_net for a in self.sides]
        return {
            arrays.side: [int(net_id) for net_id in arrays.net_ids[slot_net]]
            for arrays, slot_net in zip(self.sides, slots)
        }

    def assignments(self) -> Dict:
        """Materialize the current state as ``{side: Assignment}``."""
        return {
            arrays.side: Assignment(arrays.quadrant, order)
            for (arrays, order) in (
                (arrays, self.orders()[arrays.side]) for arrays in self.sides
            )
        }

    def self_check(self, baseline_assignments: Dict):
        """Cross-check the kernel total against the exact Eq.-3 model.

        Returns the :class:`~repro.verify.diagnostics.VerificationReport`
        of :func:`repro.verify.check_exchange_total`.
        """
        from ..verify import check_exchange_total

        return check_exchange_total(
            self.design,
            baseline_assignments,
            self.assignments(),
            self.cost(),
            weights=self.weights,
            net_type=self.net_type,
            split_networks=self.split_networks,
        )
