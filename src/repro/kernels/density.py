"""Array-backed pre-route congestion estimation (ROADMAP item 1, stage b).

``repro.routing.density`` walks Python objects: for every watched line it
re-collects the passing nets, sorts their slots and splits them at the via
slots — O(rows * n log n) with large constants.  This kernel computes the
identical run/interval structure with three vectorized passes over flat
int arrays (slot permutation, ball rows, via order), sharing the
``searchsorted`` + ``bincount`` core that ``kernels.state.row_run_counts``
already proved against the object model.

Values are *identical* (they are integer counts), which the
``density_parity`` fuzz oracle and ``tests/test_kernels.py`` assert run for
run against :func:`repro.routing.density.density_map`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..package import Quadrant

__all__ = [
    "quadrant_run_arrays",
    "max_density_of_order",
    "design_max_density",
]


def _flatten(quadrant: Quadrant, order) -> Tuple[np.ndarray, np.ndarray]:
    """``(slot_of, ball_row)`` keyed by net index, from a finger order.

    ``order`` is the assignment's net-id list, leftmost slot first.  Net
    indices follow netlist order, matching ``kernels.state``.
    """
    netlist = list(quadrant.netlist)
    index_of = {net.id: k for k, net in enumerate(netlist)}
    count = len(netlist)
    slot_of = np.empty(count, dtype=np.int64)
    for slot, net_id in enumerate(order):
        slot_of[index_of[net_id]] = slot
    rows = np.fromiter(
        (quadrant.ball_row(net.id) for net in netlist),
        dtype=np.int64,
        count=count,
    )
    return slot_of, rows


def quadrant_run_arrays(
    quadrant: Quadrant, order
) -> List[Tuple[int, np.ndarray, np.ndarray]]:
    """Per watched line: ``(row, wire_counts, interval_counts)`` arrays.

    Mirrors :func:`repro.routing.density.run_partition` for every line
    ``2 .. row_count``: one leftmost run, ``m - 1`` interior runs (one
    interval each) and the rightmost run with two intervals (the free via
    candidate splits it).
    """
    slot_of, rows = _flatten(quadrant, order)
    index_of = {net.id: k for k, net in enumerate(quadrant.netlist)}
    result: List[Tuple[int, np.ndarray, np.ndarray]] = []
    for row in range(2, quadrant.row_count + 1):
        via_nets = np.fromiter(
            (index_of[net_id] for net_id in quadrant.row_nets(row)),
            dtype=np.int64,
        )
        via_slots = np.sort(slot_of[via_nets])
        passing_slots = slot_of[rows < row]
        run_of = np.searchsorted(via_slots, passing_slots, side="left")
        counts = np.bincount(run_of, minlength=len(via_nets) + 1)
        intervals = np.ones(len(via_nets) + 1, dtype=np.int64)
        intervals[-1] = 2
        result.append((row, counts.astype(np.int64), intervals))
    return result


def max_density_of_order(quadrant: Quadrant, order) -> int:
    """Maximum run density of one quadrant order (paper Table 2's metric)."""
    peak = 0
    for _row, counts, intervals in quadrant_run_arrays(quadrant, order):
        if counts.size:
            # ceil(w / i) for integer counts, vectorized.
            densities = -(-counts // intervals)
            peak = max(peak, int(densities.max()))
    return peak


def design_max_density(assignments: Dict) -> int:
    """Maximum density across every quadrant of a design (array backend)."""
    return max(
        max_density_of_order(assignment.quadrant, assignment.order)
        for assignment in assignments.values()
    )
