"""Flat-array mirror of a design + assignment (the kernel's state).

The object model (``PackageDesign`` / ``Assignment``) is convenient but
dict-keyed: every hot-loop query pays a hash lookup and an attribute chase.
This module flattens one design side into contiguous NumPy int arrays —
net ids, ball rows, tiers, supply classes, slot<->net permutations and the
static section bookkeeping of Eq. 2 — so the exchange kernel can answer
every per-move question with O(1) array indexing.

Net *indices* (0-based positions in the quadrant's netlist) replace net ids
everywhere inside the kernel; ``net_ids`` maps back out at the boundary.
Slots are 0-based internally (the object model is 1-based).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..errors import ExchangeError
from ..geometry import Side
from ..package import NetType, Quadrant


@dataclass(frozen=True)
class WatchedRow:
    """Static section structure of one watched horizontal line (Eq. 2).

    ``via_nets`` are the net indices of the row's own balls in ball order
    (monotonic legality keeps their slots sorted), ``run_base`` is this
    row's offset into the kernel's flat run-delta array, and
    ``baseline_counts`` records the wire count of every run right after the
    congestion-driven assignment — the ``I_c_ini`` of Eq. 2.
    """

    row: int
    via_nets: np.ndarray
    run_base: int
    baseline_counts: np.ndarray

    @property
    def run_count(self) -> int:
        return len(self.via_nets) + 1


@dataclass
class SideArrays:
    """One quadrant of the design, flattened."""

    side: Side
    quadrant: Quadrant
    #: net id by net index (netlist order)
    net_ids: np.ndarray
    #: ball row by net index (1 = outermost)
    rows: np.ndarray
    #: die tier by net index (stacking ICs)
    tiers: np.ndarray
    #: IR network class by net index (-1 = untracked)
    supply_class: np.ndarray
    #: position of each net within its own ball row (its via index)
    via_index: np.ndarray
    #: run-delta offset of the net's own row, -1 when the row is unwatched
    net_run_base: np.ndarray
    #: global ring index of this side's slot 0 (slot s maps to offset + s + 1)
    ring_offset: int
    #: net index by 0-based slot (the assignment, mutable)
    slot_net: np.ndarray
    #: 0-based slot by net index (inverse permutation, mutable)
    net_slot: np.ndarray
    watched: List[WatchedRow] = field(default_factory=list)

    @property
    def slot_count(self) -> int:
        return len(self.slot_net)


def _class_of(net, net_type, split_networks: bool) -> int:
    """IR network class of one net under the cost configuration.

    Mirrors ``CachedExchangeCost``'s fraction collection: with
    ``split_networks`` POWER is class 0 and GROUND class 1; with
    ``net_type=None`` every supply net lands in class 0; otherwise only the
    requested network is tracked.
    """
    if split_networks:
        if net.net_type is NetType.POWER:
            return 0
        if net.net_type is NetType.GROUND:
            return 1
        return -1
    if net_type is None:
        return 0 if net.net_type.is_supply else -1
    return 0 if net.net_type is net_type else -1


def watched_rows_of(quadrant: Quadrant, all_rows: bool) -> List[int]:
    """The horizontal lines the density tracker watches (see sections.py)."""
    if all_rows:
        return list(range(2, quadrant.row_count + 1)) or [quadrant.row_count]
    return [quadrant.row_count]


def build_side_arrays(
    design,
    side: Side,
    assignment,
    net_type,
    split_networks: bool,
    all_rows: bool,
    run_base: int,
) -> SideArrays:
    """Flatten one side of *design* under its baseline *assignment*.

    ``run_base`` is the first free index of the kernel's flat run-delta
    array; the side claims one contiguous block per watched row.
    """
    quadrant = design.quadrants[side]
    netlist = list(quadrant.netlist)
    count = len(netlist)
    id_to_index: Dict[int, int] = {net.id: k for k, net in enumerate(netlist)}
    if len(id_to_index) != count:
        raise ExchangeError(f"{side.value}: duplicate net ids in netlist")

    net_ids = np.fromiter((net.id for net in netlist), dtype=np.int64, count=count)
    rows = np.fromiter(
        (quadrant.ball_row(net.id) for net in netlist), dtype=np.int64, count=count
    )
    tiers = np.fromiter((net.tier for net in netlist), dtype=np.int64, count=count)
    supply_class = np.fromiter(
        (_class_of(net, net_type, split_networks) for net in netlist),
        dtype=np.int64,
        count=count,
    )

    via_index = np.zeros(count, dtype=np.int64)
    for row in range(1, quadrant.row_count + 1):
        for position, net_id in enumerate(quadrant.row_nets(row)):
            via_index[id_to_index[net_id]] = position

    order = assignment.order
    slot_net = np.fromiter(
        (id_to_index[net_id] for net_id in order), dtype=np.int64, count=count
    )
    net_slot = np.empty(count, dtype=np.int64)
    net_slot[slot_net] = np.arange(count, dtype=np.int64)

    # ring offset: nets of earlier sides (design ring order) come first
    offset = 0
    for ring_side in design.sides:
        if ring_side is side:
            break
        offset += design.quadrants[ring_side].net_count

    net_run_base = np.full(count, -1, dtype=np.int64)
    watched: List[WatchedRow] = []
    next_base = run_base
    for row in watched_rows_of(quadrant, all_rows):
        via_nets = np.fromiter(
            (id_to_index[net_id] for net_id in quadrant.row_nets(row)),
            dtype=np.int64,
        )
        counts = row_run_counts(net_slot, rows, via_nets, row)
        watched.append(
            WatchedRow(
                row=row,
                via_nets=via_nets,
                run_base=next_base,
                baseline_counts=counts,
            )
        )
        net_run_base[rows == row] = next_base
        next_base += len(via_nets) + 1

    return SideArrays(
        side=side,
        quadrant=quadrant,
        net_ids=net_ids,
        rows=rows,
        tiers=tiers,
        supply_class=supply_class,
        via_index=via_index,
        net_run_base=net_run_base,
        ring_offset=offset,
        slot_net=slot_net,
        net_slot=net_slot,
        watched=watched,
    )


def row_run_counts(
    net_slot: np.ndarray,
    rows: np.ndarray,
    via_nets: np.ndarray,
    row: int,
) -> np.ndarray:
    """Wire count of every run on line *row* (vectorized ``run_partition``).

    The row's own nets terminate at vias and split the slot sequence into
    ``m + 1`` runs; every net whose ball lies in a lower row crosses the
    line inside the run its finger slot falls into.
    """
    via_slots = np.sort(net_slot[via_nets])
    passing_slots = net_slot[rows < row]
    run_of = np.searchsorted(via_slots, passing_slots, side="left")
    return np.bincount(run_of, minlength=len(via_nets) + 1).astype(np.int64)
