"""Array-backed IFA/DFA assignment kernels (ROADMAP item 1, stage a).

The object assigners are correct but Python-shaped: IFA pays a
``list.insert`` per net (O(n^2) total) and DFA pays four Fenwick queries
plus Python bookkeeping per net.  Both are order-*identical* here — the
kernels compute the same slot for every net, proven by the ``assign_parity``
fuzz oracle and the Table-2/3 regression tests — but on flat int arrays:

``ifa_order``
    IFA's "insert before the anchor ball of the row above" is a pure
    linked-list operation once the anchor can be found in O(1).  The kernel
    keeps ``next``/``prev`` arrays keyed by net index, so every insertion
    (front, before-anchor, append) is O(1) and the whole pass is O(n).

``dfa_order``
    DFA's per-net Fenwick walk ("the (EN+1)-th unassigned slot after the
    previous pick, leaving room for the rest of the row") collapses into a
    closed-form prefix recurrence over *row-start* free ranks.  Writing
    ``t_x`` for the rank (among the slots free when the row started) of the
    x-th pick minus ``(x-1)``, the object code's ``skipped`` count equals
    ``t_{x-1}`` exactly, and ``_pick_slot``'s clamp chain reduces to

        t_x = min(max(EN_x, t_{x-1}), F - m)         t_0 = 0

    where ``F`` is the free-slot count at row start and ``m`` the row's net
    count.  The strictly-after-previous-pick constraint needs no ``+1``
    term: it lives in the final ``rank_x = t_x + (x-1)`` (``t`` is
    non-decreasing, so ranks strictly increase).  Because ``t`` is clamped
    at ``F - m``, the object code's "no unassigned finger slot left" error
    can only fire when ``F - m < 0`` — the reserve clamp keeps every later
    net of a feasible row feasible.  Since ``EN_x >= 0``, the uncapped
    recurrence is a plain running maximum — one ``np.maximum.accumulate`` —
    and ranks map to slot indices with one vectorized rank-select per row
    (``np.flatnonzero`` of the free mask), replacing every Fenwick query:
    O(n) per row, O(n * rows) total.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import AssignmentError
from ..package import Quadrant

__all__ = ["dfa_order", "ifa_order"]


def ifa_order(quadrant: Quadrant) -> List[int]:
    """The exact IFA finger order of *quadrant*, in O(n) (paper Fig. 9)."""
    rows_top_down = quadrant.bumps.rows_top_down()
    if not rows_top_down:
        raise AssignmentError("quadrant has no bump rows")

    count = quadrant.net_count
    index_of: Dict[int, int] = {}
    for row in rows_top_down:
        for net_id in quadrant.row_nets(row):
            index_of.setdefault(net_id, len(index_of))

    # Doubly linked list over net indices; ``count`` is the head sentinel,
    # ``count + 1`` the tail sentinel.
    head, tail = count, count + 1
    nxt = [tail] * (count + 2)
    prv = [head] * (count + 2)
    nxt[head], prv[tail] = tail, head

    def link_before(node: int, anchor: int) -> None:
        before = prv[anchor]
        nxt[before], prv[node] = node, before
        nxt[node], prv[anchor] = anchor, node

    top_nets = quadrant.row_nets(rows_top_down[0])
    for net_id in top_nets:
        link_before(index_of[net_id], tail)
    previous_row = top_nets

    for row in rows_top_down[1:]:
        nets = quadrant.row_nets(row)
        m = len(nets)
        # First ball of the row goes to F_1; everything else shifts right.
        link_before(index_of[nets[0]], nxt[head])
        # Middle balls: insert before the same-index ball of the row above;
        # rows longer than the one above send the overflow to the tail.
        for x in range(2, m):
            net = nets[x - 1]
            if x <= len(previous_row):
                link_before(index_of[net], index_of[previous_row[x - 1]])
            else:
                link_before(index_of[net], tail)
        # Last ball of the row is appended at the very end.
        if m > 1:
            link_before(index_of[nets[m - 1]], tail)
        previous_row = nets

    ids = list(index_of)
    order: List[int] = []
    node = nxt[head]
    while node != tail:
        order.append(ids[node])
        node = nxt[node]
    return order


def dfa_order(quadrant: Quadrant, cut_line_n: int = 1) -> List[int]:
    """The exact DFA finger order of *quadrant* (paper Fig. 11), batched.

    Mirrors ``DFAAssigner.assign`` slot for slot, including the feasibility
    clamps and the "no unassigned finger slot left for the row" error on
    over-full rows — see the module docstring for the recurrence.
    """
    if cut_line_n < 1:
        raise AssignmentError(f"cut-line parameter n must be >= 1, got {cut_line_n}")
    rows_top_down = quadrant.bumps.rows_top_down()
    if not rows_top_down:
        raise AssignmentError("quadrant has no bump rows")

    slot_count = quadrant.net_count
    total_via_number = quadrant.bumps.row_size(rows_top_down[0]) + 1
    segments = total_via_number + cut_line_n

    slots = np.full(slot_count, -1, dtype=np.int64)
    free = np.ones(slot_count, dtype=bool)
    remaining = slot_count

    for row in rows_top_down:
        nets = quadrant.row_nets(row)
        m = len(nets)
        if m == 0:
            continue
        cap = remaining - m  # largest admissible row-start free rank - (x-1)
        if cap < 0:
            raise AssignmentError("no unassigned finger slot left for the row")
        density_interval = max(0.0, cap / segments)
        positions = np.arange(m, dtype=np.int64)
        empty_numbers = np.floor(
            np.arange(1, m + 1, dtype=np.float64) * density_interval
        ).astype(np.int64)
        # t_x = min(max(EN_x, t_{x-1}), cap): running max, then reserve clamp.
        t = np.minimum(np.maximum.accumulate(empty_numbers), cap)
        ranks = t + positions
        row_slots = np.flatnonzero(free)[ranks]
        free[row_slots] = False
        slots[row_slots] = nets
        remaining -= m

    assert remaining == 0 and not free.any()
    return slots.tolist()
