"""Array-backed pipeline kernels (``repro.kernels``).

High-throughput mirrors of the object-model pipeline stages: flat NumPy
state plus vectorized inner loops, proven move-for-move (exchange),
order-identical (assignment) or value-identical (density, IR solve) to
the object backend.  ``resolve_backend`` implements the ``backend="auto"``
policy used by :class:`~repro.exchange.FingerPadExchanger`;
``resolve_stage_backend`` is the per-stage variant shared by the staged
assignment/density entry points (same ``ARRAY_BACKEND_THRESHOLD``, but
keyed on a plain element count instead of a design).

Stage kernels:

* :mod:`.exchange` — SA finger/pad exchange with O(1) Eq.-3 move deltas;
* :mod:`.assign` — IFA (linked-list O(n)) and DFA (closed-form rank
  recurrence) finger orders;
* :mod:`.density` — run/interval congestion accumulation on int arrays;
* :mod:`.irsolve` — factor-once / re-solve-many FD power-grid solver.
"""

from __future__ import annotations

from ..errors import ExchangeError

try:  # numpy is a hard dependency of the repo, but stay importable without it
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on stripped installs
    HAVE_NUMPY = False

#: Designs with at least this many nets default to the array backend under
#: ``backend="auto"``.  Below it the object backend's per-move cost is
#: already sub-millisecond and its richer diagnostics win.
ARRAY_BACKEND_THRESHOLD = 512

#: Accepted backend names, in documentation order.
BACKENDS = ("auto", "object", "array", "exact")


def resolve_backend(backend: str, design, ir_proxy=None) -> str:
    """Map a requested backend to a concrete one (``object|array|exact``).

    ``auto`` picks ``array`` for large supply-routed designs (>=
    ``ARRAY_BACKEND_THRESHOLD`` nets) when NumPy is importable and no
    custom ``ir_proxy`` is injected; everything else stays on ``object``.
    Explicitly requesting ``array`` with a custom ``ir_proxy`` is an
    error — the kernel hard-codes the paper's compact gap-spread proxy.
    """
    if backend not in BACKENDS:
        raise ExchangeError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend == "array":
        if not HAVE_NUMPY:
            raise ExchangeError("backend='array' requires numpy")
        if ir_proxy is not None:
            raise ExchangeError(
                "backend='array' does not support a custom ir_proxy; "
                "use backend='object'"
            )
        return "array"
    if backend != "auto":
        return backend
    if (
        HAVE_NUMPY
        and ir_proxy is None
        and design.total_net_count >= ARRAY_BACKEND_THRESHOLD
    ):
        return "array"
    return "object"


def resolve_stage_backend(backend: str, size: int) -> str:
    """Per-stage ``backend=`` policy for assignment and density estimation.

    Returns ``"object"`` or ``"array"``.  ``auto`` picks ``array`` for
    stages touching at least ``ARRAY_BACKEND_THRESHOLD`` elements (nets)
    when NumPy is importable; ``"exact"`` — meaningful only to the
    exchange cost machinery — degrades to ``"object"`` so one flow-level
    ``backend=`` keyword can drive every stage.
    """
    if backend not in BACKENDS:
        raise ExchangeError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend == "array":
        if not HAVE_NUMPY:
            raise ExchangeError("backend='array' requires numpy")
        return "array"
    if backend in ("object", "exact"):
        return "object"
    if HAVE_NUMPY and size >= ARRAY_BACKEND_THRESHOLD:
        return "array"
    return "object"


if HAVE_NUMPY:
    from .assign import dfa_order, ifa_order
    from .density import design_max_density, max_density_of_order
    from .exchange import WL_RESYNC_INTERVAL, ArrayExchangeKernel
    from .irsolve import GridFactorization, factorize_grid
    from .state import SideArrays, WatchedRow, build_side_arrays, row_run_counts

    __all__ = [
        "ARRAY_BACKEND_THRESHOLD",
        "BACKENDS",
        "HAVE_NUMPY",
        "resolve_backend",
        "resolve_stage_backend",
        "ArrayExchangeKernel",
        "WL_RESYNC_INTERVAL",
        "SideArrays",
        "WatchedRow",
        "build_side_arrays",
        "row_run_counts",
        "dfa_order",
        "ifa_order",
        "design_max_density",
        "max_density_of_order",
        "GridFactorization",
        "factorize_grid",
    ]
else:  # pragma: no cover
    __all__ = [
        "ARRAY_BACKEND_THRESHOLD",
        "BACKENDS",
        "HAVE_NUMPY",
        "resolve_backend",
        "resolve_stage_backend",
    ]
