"""Array-backed exchange kernels (``repro.kernels``).

High-throughput mirrors of the object-model cost evaluators: flat NumPy
state plus O(1) incremental Eq.-3 deltas, proven move-for-move identical
to the object backend under shared seeds.  ``resolve_backend`` implements
the ``backend="auto"`` policy used by :class:`~repro.exchange.FingerPadExchanger`.
"""

from __future__ import annotations

from ..errors import ExchangeError

try:  # numpy is a hard dependency of the repo, but stay importable without it
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on stripped installs
    HAVE_NUMPY = False

#: Designs with at least this many nets default to the array backend under
#: ``backend="auto"``.  Below it the object backend's per-move cost is
#: already sub-millisecond and its richer diagnostics win.
ARRAY_BACKEND_THRESHOLD = 512

#: Accepted backend names, in documentation order.
BACKENDS = ("auto", "object", "array", "exact")


def resolve_backend(backend: str, design, ir_proxy=None) -> str:
    """Map a requested backend to a concrete one (``object|array|exact``).

    ``auto`` picks ``array`` for large supply-routed designs (>=
    ``ARRAY_BACKEND_THRESHOLD`` nets) when NumPy is importable and no
    custom ``ir_proxy`` is injected; everything else stays on ``object``.
    Explicitly requesting ``array`` with a custom ``ir_proxy`` is an
    error — the kernel hard-codes the paper's compact gap-spread proxy.
    """
    if backend not in BACKENDS:
        raise ExchangeError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend == "array":
        if not HAVE_NUMPY:
            raise ExchangeError("backend='array' requires numpy")
        if ir_proxy is not None:
            raise ExchangeError(
                "backend='array' does not support a custom ir_proxy; "
                "use backend='object'"
            )
        return "array"
    if backend != "auto":
        return backend
    if (
        HAVE_NUMPY
        and ir_proxy is None
        and design.total_net_count >= ARRAY_BACKEND_THRESHOLD
    ):
        return "array"
    return "object"


if HAVE_NUMPY:
    from .exchange import WL_RESYNC_INTERVAL, ArrayExchangeKernel
    from .state import SideArrays, WatchedRow, build_side_arrays, row_run_counts

    __all__ = [
        "ARRAY_BACKEND_THRESHOLD",
        "BACKENDS",
        "HAVE_NUMPY",
        "resolve_backend",
        "ArrayExchangeKernel",
        "WL_RESYNC_INTERVAL",
        "SideArrays",
        "WatchedRow",
        "build_side_arrays",
        "row_run_counts",
    ]
else:  # pragma: no cover
    __all__ = ["ARRAY_BACKEND_THRESHOLD", "BACKENDS", "HAVE_NUMPY", "resolve_backend"]
