"""Factor-once / re-solve-many FD IR-drop kernel (ROADMAP item 1, stage c).

The grid topology never changes between SA candidate evaluations — only the
pad injection points and (for Fig.-6 style experiments) the current map do.
``FDSolver.solve`` nevertheless re-assembled the sparse system with Python
loops and re-ran a full sparse LU on every call.  This kernel splits that
work honestly:

``factorize_grid(config, pad_nodes)``
    Vectorized assembly of the Dirichlet-reduced Laplacian (one pass of
    ``np`` index arithmetic per neighbour direction instead of a Python
    loop over ``G*G`` nodes) followed by a single factorization.  The
    boundary (pad-at-Vdd) contribution to the right-hand side only depends
    on the pad set, so it is precomputed here too.

``GridFactorization.solve(current_map=None)``
    A cheap pair of triangular backsolves per injection vector — the
    re-solve-many half.  Values match a fresh ``FDSolver`` solve within
    1e-9 (``irsolve_parity`` oracle, hypothesis property in
    ``tests/test_power_grid.py``).

The primary factorization is ``scipy.sparse.linalg.splu``; when scipy is
absent a pure-NumPy banded Cholesky takes over (the reduced system is SPD
with bandwidth <= G under the natural node order, so lower-banded storage
is exact, not an approximation).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..errors import PowerModelError
from ..power.grid import PowerGridConfig

try:  # pragma: no cover - exercised via both lanes in tests
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    HAVE_SCIPY = False

__all__ = ["GridFactorization", "factorize_grid", "HAVE_SCIPY"]


def _validated_pads(
    config: PowerGridConfig, pad_nodes: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    g = config.size
    pads = sorted(set((int(x), int(y)) for x, y in pad_nodes))
    if not pads:
        raise PowerModelError("at least one power pad node is required")
    for x, y in pads:
        if not (0 <= x < g and 0 <= y < g):
            raise PowerModelError(f"pad node ({x},{y}) outside {g}x{g} grid")
    return pads


class _BandedCholesky:
    """Lower-banded Cholesky of an SPD matrix (scipy-free fallback).

    ``band[i, j]`` stores ``A[j + i, j]`` for ``0 <= i <= bandwidth``.
    Factor cost is O(n * b^2); each solve is two O(n * b) substitutions.
    """

    def __init__(self, band: np.ndarray) -> None:
        band = band.astype(np.float64, copy=True)
        width, n = band.shape
        b = width - 1
        for j in range(n):
            pivot = band[0, j]
            if pivot <= 0.0:
                raise PowerModelError("grid system is not positive definite")
            root = np.sqrt(pivot)
            band[0, j] = root
            m = min(b, n - 1 - j)
            if m:
                band[1 : m + 1, j] /= root
                for k in range(1, m + 1):
                    band[: m - k + 1, j + k] -= band[k, j] * band[k : m + 1, j]
        self._band = band
        self._n = n
        self._b = b

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        band, n, b = self._band, self._n, self._b
        x = rhs.astype(np.float64, copy=True)
        for j in range(n):  # forward: L y = rhs
            x[j] /= band[0, j]
            m = min(b, n - 1 - j)
            if m:
                x[j + 1 : j + m + 1] -= band[1 : m + 1, j] * x[j]
        for j in range(n - 1, -1, -1):  # backward: L^T x = y
            m = min(b, n - 1 - j)
            if m:
                x[j] -= band[1 : m + 1, j] @ x[j + 1 : j + m + 1]
            x[j] /= band[0, j]
        return x


class GridFactorization:
    """Prefactorized Dirichlet-reduced power grid for one pad set.

    Reusable across every injection vector: :meth:`solve` performs only the
    right-hand-side build and the triangular backsolves.
    """

    def __init__(
        self, config: PowerGridConfig, pad_nodes: Iterable[Tuple[int, int]]
    ) -> None:
        from ..power.fdsolver import IRDropResult  # circular at module scope

        self._result_type = IRDropResult
        self.config = config
        #: Injection map used when ``solve()`` gets none; ``FDSolver.factorize``
        #: points this at the owning solver's ``current_map``.
        self.default_current_map: Optional[np.ndarray] = None
        self.pad_nodes = _validated_pads(config, pad_nodes)
        g = config.size
        pad_flat = np.zeros(g * g, dtype=bool)
        for x, y in self.pad_nodes:
            pad_flat[x * g + y] = True
        unknown_ids = np.flatnonzero(~pad_flat)
        self._unknown_ids = unknown_ids
        n = len(unknown_ids)
        self.unknown_count = n
        if n == 0:
            self._lu = None
            self._dirichlet = np.zeros(0)
            return

        index_of = np.full(g * g, -1, dtype=np.int64)
        index_of[unknown_ids] = np.arange(n, dtype=np.int64)
        ux, uy = unknown_ids // g, unknown_ids % g
        gx, gy = 1.0 / config.r_sx, 1.0 / config.r_sy

        diagonal = np.zeros(n)
        dirichlet = np.zeros(n)
        row_parts: List[np.ndarray] = []
        col_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        all_rows = np.arange(n, dtype=np.int64)
        for dx, dy, conductance in (
            (1, 0, gx),
            (-1, 0, gx),
            (0, 1, gy),
            (0, -1, gy),
        ):
            nx, ny = ux + dx, uy + dy
            inside = (0 <= nx) & (nx < g) & (0 <= ny) & (ny < g)
            neighbour = nx[inside] * g + ny[inside]
            rows = all_rows[inside]
            diagonal[rows] += conductance
            is_pad = pad_flat[neighbour]
            dirichlet[rows[is_pad]] += conductance * config.vdd
            free_rows = rows[~is_pad]
            row_parts.append(free_rows)
            col_parts.append(index_of[neighbour[~is_pad]])
            val_parts.append(np.full(len(free_rows), -conductance))
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        vals = np.concatenate(val_parts)
        self._dirichlet = dirichlet

        if HAVE_SCIPY:
            matrix = csc_matrix(
                (
                    np.concatenate([vals, diagonal]),
                    (
                        np.concatenate([rows, all_rows]),
                        np.concatenate([cols, all_rows]),
                    ),
                ),
                shape=(n, n),
            )
            self._lu = splu(matrix)
        else:
            lower = rows > cols
            width = int((rows[lower] - cols[lower]).max()) + 1 if lower.any() else 1
            band = np.zeros((width, n))
            band[0, :] = diagonal
            band[rows[lower] - cols[lower], cols[lower]] = vals[lower]
            self._lu = _BandedCholesky(band)

    def _rhs(self, current_map: Optional[np.ndarray]) -> np.ndarray:
        config = self.config
        if current_map is None:
            rhs = np.full(self.unknown_count, -config.j0)
        else:
            current_map = np.asarray(current_map, dtype=float)
            expected = (config.size, config.size)
            if current_map.shape != expected:
                raise PowerModelError(
                    f"current map shape {current_map.shape} != grid {expected}"
                )
            if (current_map < 0).any():
                raise PowerModelError("current map entries must be >= 0")
            rhs = -current_map.reshape(-1)[self._unknown_ids]
        return rhs + self._dirichlet

    def solve(self, current_map: Optional[np.ndarray] = None):
        """Re-solve for one injection vector — backsolves only, no refactor."""
        if current_map is None:
            current_map = self.default_current_map
        config = self.config
        g = config.size
        voltage = np.full((g, g), config.vdd, dtype=float)
        if self.unknown_count:
            solution = self._lu.solve(self._rhs(current_map))
            voltage.reshape(-1)[self._unknown_ids] = solution
        return self._result_type(
            config=config, voltage=voltage, pad_nodes=self.pad_nodes
        )


def factorize_grid(
    config: PowerGridConfig, pad_nodes: Iterable[Tuple[int, int]]
) -> GridFactorization:
    """Assemble + factor the grid once for *pad_nodes*; re-solve cheaply."""
    return GridFactorization(config, pad_nodes)
