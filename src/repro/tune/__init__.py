"""SA auto-tuning: schedule sweeps, Pareto fronts, parallel tempering.

``repro tune sweep`` fans a schedule grid out as cached engine jobs and
reports the Pareto front over (final Eq.-3 cost, wall-clock);
``repro run --tempering K`` runs replica-exchange parallel tempering
through the same engine.  See ``docs/tuning.md``.
"""

from .pareto import dominates, knee_point, pareto_front, render_pareto_svg
from .sweep import (
    SweepGrid,
    aggregate_cells,
    build_report,
    run_sweep,
    sweep_specs,
    write_report,
)
from .tempering import TemperingConfig, chain_temperatures, run_tempering

__all__ = [
    "SweepGrid",
    "TemperingConfig",
    "aggregate_cells",
    "build_report",
    "chain_temperatures",
    "dominates",
    "knee_point",
    "pareto_front",
    "render_pareto_svg",
    "run_sweep",
    "run_tempering",
    "sweep_specs",
    "write_report",
]
