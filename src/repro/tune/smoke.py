"""Tuning-stack smoke test: ``make tune-smoke`` (the CI check).

A tiny 2x2x1 sweep on circuit1 run twice against a throwaway cache —
the second pass must replay >= 90% of its cells from cache and produce a
byte-identical report — followed by a K=2 tempering run whose trace
(including the ``sa.swap`` events) must validate against the telemetry
schema.  Everything runs in-process against a temp directory; the whole
check takes a few seconds.

Run with::

    PYTHONPATH=src python -m repro.tune.smoke
"""

from __future__ import annotations

import json
import os
import sys
import tempfile


def main() -> int:
    from ..exchange import SAParams
    from ..obs.schema import SCHEMA_VERSION, validate_trace
    from ..runtime import JobEngine, JsonlSink, ResultCache, Telemetry
    from . import SweepGrid, TemperingConfig, run_sweep, run_tempering, write_report

    failures = []
    grid = SweepGrid(
        initial_temps=(0.03, 0.1),
        coolings=(0.8, 0.9),
        moves=(10,),
        final_temp=0.01,
        replicates=1,
    )
    with tempfile.TemporaryDirectory(prefix="repro-tune-smoke-") as tmp:
        cache_dir = os.path.join(tmp, "cache")

        def sweep_once(out_name):
            engine = JobEngine(
                jobs=2, cache=ResultCache(cache_dir), telemetry=Telemetry()
            )
            try:
                report, outcomes = run_sweep(engine, 1, grid=grid, seed=0)
            finally:
                engine.close()
            paths = write_report(report, os.path.join(tmp, out_name))
            return outcomes, paths

        first_outcomes, first_paths = sweep_once("first")
        second_outcomes, second_paths = sweep_once("second")
        hits = sum(1 for outcome in second_outcomes if outcome.cached)
        ratio = hits / len(second_outcomes)
        print(f"sweep re-run: {hits}/{len(second_outcomes)} cache hits")
        if ratio < 0.9:
            failures.append(
                f"second sweep replayed only {ratio:.0%} from cache (< 90%)"
            )
        for path_a, path_b in zip(first_paths, second_paths):
            with open(path_a, "rb") as a, open(path_b, "rb") as b:
                if a.read() != b.read():
                    failures.append(
                        f"sweep re-run artifact differs: "
                        f"{os.path.basename(path_a)}"
                    )

        trace_path = os.path.join(tmp, "tempering.jsonl")
        with JsonlSink(trace_path) as sink:
            telemetry = Telemetry(sink=sink)
            telemetry.emit(
                "trace.meta", schema=SCHEMA_VERSION, tool="repro",
                command="tune-smoke",
            )
            engine = JobEngine(jobs=2, telemetry=telemetry)
            try:
                result = run_tempering(
                    engine,
                    1,
                    config=TemperingConfig(chains=2, swap_stride=2),
                    schedule=SAParams(
                        initial_temp=0.03,
                        final_temp=0.005,
                        cooling=0.8,
                        moves_per_temp=10,
                    ),
                    seed=3,
                    polish_passes=2,
                )
            finally:
                engine.close()
        with open(trace_path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle if line.strip()]
        swaps = [event for event in events if event.get("event") == "sa.swap"]
        print(
            f"tempering: best {result['sa']['best_cost']:.4f}, "
            f"{len(swaps)} sa.swap event(s)"
        )
        if not swaps:
            failures.append("tempering trace carries no sa.swap events")
        report = validate_trace(events, subject="tempering trace")
        if not report.ok:
            failures.append(f"tempering trace invalid: {report.render()}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("tune-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
