"""SA schedule auto-tuning: grid sweeps as cached engine jobs.

Every (initial_temp, cooling, moves_per_temp, replicate) cell of the grid
becomes one ``tune_cell`` :class:`~repro.runtime.spec.JobSpec` run through
the ordinary :class:`~repro.runtime.engine.JobEngine` — so cells fan out
over the process pool, land in the disk cache, and a re-run of the same
sweep replays ≥90% from cache (wall-clock is measured *inside* the job and
cached with it, which also makes the report byte-deterministic on re-run).

The output is a JSON report + SVG scatter of the (wall-clock, final Eq.-3
cost) plane with the Pareto front and its knee highlighted; the knee
schedules of the Table-1 circuits are what ships as
``repro.presets.TUNED_SCHEDULES``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.spec import JobSpec
from .pareto import knee_point, pareto_front, render_pareto_svg

#: Default sweep grid: a coarse cube around the paper's hand-picked
#: schedule (T0=0.03, alpha=0.95, 150 moves/temp).
DEFAULT_INITIAL_TEMPS = (0.01, 0.03, 0.1)
DEFAULT_COOLINGS = (0.85, 0.9, 0.95)
DEFAULT_MOVES = (40, 80, 150)


@dataclass(frozen=True)
class SweepGrid:
    """The swept schedule axes; the cross product defines the cells."""

    initial_temps: Tuple[float, ...] = DEFAULT_INITIAL_TEMPS
    coolings: Tuple[float, ...] = DEFAULT_COOLINGS
    moves: Tuple[int, ...] = DEFAULT_MOVES
    final_temp: float = 1e-4
    replicates: int = 2

    def cell_count(self) -> int:
        return (
            len(self.initial_temps)
            * len(self.coolings)
            * len(self.moves)
            * self.replicates
        )


def sweep_specs(
    circuit: int,
    grid: SweepGrid,
    seed: int = 0,
    tiers: int = 1,
    backend: str = "auto",
) -> List[JobSpec]:
    """One ``tune_cell`` spec per grid cell, in deterministic order.

    Replicate *r* of every schedule runs under seed ``seed + r`` so
    replicates decorrelate while the whole sweep stays a pure function of
    *seed* (the cache key includes the pinned seed).
    """
    specs: List[JobSpec] = []
    for initial_temp in grid.initial_temps:
        for cooling in grid.coolings:
            for moves_per_temp in grid.moves:
                for replicate in range(grid.replicates):
                    params = {
                        "circuit": int(circuit),
                        "tiers": int(tiers),
                        "initial_temp": float(initial_temp),
                        "final_temp": float(grid.final_temp),
                        "cooling": float(cooling),
                        "moves_per_temp": int(moves_per_temp),
                        "replicate": int(replicate),
                    }
                    if backend != "auto":
                        params["backend"] = backend
                    specs.append(
                        JobSpec("tune_cell", params, seed=seed + replicate)
                    )
    return specs


def aggregate_cells(values: Sequence[Dict]) -> List[Dict]:
    """Mean cost/wall-clock per schedule across its replicates."""
    grouped: Dict[tuple, List[Dict]] = {}
    for value in values:
        schedule = value["schedule"]
        key = (
            schedule["initial_temp"],
            schedule["cooling"],
            schedule["moves_per_temp"],
        )
        grouped.setdefault(key, []).append(value)
    cells: List[Dict] = []
    for key in sorted(grouped):
        members = grouped[key]
        cells.append(
            {
                "schedule": dict(members[0]["schedule"]),
                "cost": sum(m["final_cost"] for m in members) / len(members),
                "seconds": round(
                    sum(m["seconds"] for m in members) / len(members), 6
                ),
                "replicates": len(members),
            }
        )
    return cells


def build_report(
    circuit_name: str, seed: int, grid: SweepGrid, values: Sequence[Dict]
) -> Dict:
    """The sweep's self-describing JSON document."""
    cells = aggregate_cells(values)
    front = pareto_front(cells)
    return {
        "schema": 1,
        "circuit": circuit_name,
        "seed": seed,
        "grid": {
            "initial_temps": list(grid.initial_temps),
            "coolings": list(grid.coolings),
            "moves": list(grid.moves),
            "final_temp": grid.final_temp,
            "replicates": grid.replicates,
        },
        "cells": cells,
        "front": front,
        "knee": knee_point(front),
    }


def write_report(report: Dict, out_dir) -> List[str]:
    """``tune_pareto_<circuit>.json`` + ``.svg`` under *out_dir*."""
    os.makedirs(out_dir, exist_ok=True)
    label = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in report["circuit"]
    ) or "design"
    json_path = os.path.join(os.fspath(out_dir), f"tune_pareto_{label}.json")
    svg_path = os.path.join(os.fspath(out_dir), f"tune_pareto_{label}.svg")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(svg_path, "w", encoding="utf-8") as handle:
        handle.write(render_pareto_svg(report))
    return [json_path, svg_path]


def run_sweep(
    engine,
    circuit: int,
    grid: Optional[SweepGrid] = None,
    seed: int = 0,
    tiers: int = 1,
    backend: str = "auto",
) -> Tuple[Dict, List]:
    """Run the full sweep through *engine*; returns (report, outcomes).

    Failed cells abort the sweep with a summary — a report built from a
    partial grid would silently bias the front.
    """
    grid = grid or SweepGrid()
    specs = sweep_specs(circuit, grid, seed=seed, tiers=tiers, backend=backend)
    telemetry = engine.telemetry
    telemetry.emit(
        "tune.begin", circuit=f"circuit{int(circuit)}", cells=len(specs)
    )
    outcomes = engine.run(specs)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)}/{len(outcomes)} sweep cells failed; first: "
            f"{first.error_class}: {first.error}"
        )
    for outcome in outcomes:
        telemetry.emit(
            "tune.cell",
            circuit=outcome.value["circuit"],
            cost=outcome.value["final_cost"],
            seconds=outcome.value["seconds"],
            cached=outcome.cached,
        )
    report = build_report(
        outcomes[0].value["circuit"],
        seed,
        grid,
        [outcome.value for outcome in outcomes],
    )
    telemetry.emit(
        "tune.end", cells=len(outcomes), front=len(report["front"])
    )
    return report, outcomes
