"""Pareto-front math and rendering for the schedule-tuning sweep.

A sweep cell is a dict with at least ``cost`` (mean final Eq.-3 cost) and
``seconds`` (mean anneal wall-clock).  Both objectives are minimized, so
the front is the set of cells no other cell beats on both axes, and the
recommended schedule is the front's *knee*: the point closest (in
normalized objective space) to the utopia corner (min cost, min seconds).

Rendering follows the stdlib-SVG discipline of :mod:`repro.obs.curves` —
no plotting dependency to gate on.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def dominates(a: Dict, b: Dict) -> bool:
    """True when *a* is at least as good on both axes and better on one."""
    return (
        a["cost"] <= b["cost"]
        and a["seconds"] <= b["seconds"]
        and (a["cost"] < b["cost"] or a["seconds"] < b["seconds"])
    )


def pareto_front(cells: Sequence[Dict]) -> List[Dict]:
    """The non-dominated subset of *cells*, fastest first.

    Duplicate objective pairs are collapsed to one representative (the
    first in input order) so the front is a strict staircase.
    """
    front: List[Dict] = []
    seen = set()
    for cell in cells:
        if any(dominates(other, cell) for other in cells if other is not cell):
            continue
        key = (cell["cost"], cell["seconds"])
        if key in seen:
            continue
        seen.add(key)
        front.append(cell)
    front.sort(key=lambda cell: (cell["seconds"], cell["cost"]))
    return front


def knee_point(front: Sequence[Dict]) -> Optional[Dict]:
    """The front cell nearest the utopia corner in normalized space.

    Each axis is scaled to [0, 1] over the front's own range; a degenerate
    axis (all equal) contributes zero, so a single-point front is its own
    knee.  Ties break toward the faster cell (front order).
    """
    if not front:
        return None
    costs = [cell["cost"] for cell in front]
    times = [cell["seconds"] for cell in front]
    cost_span = max(costs) - min(costs)
    time_span = max(times) - min(times)

    def distance(cell: Dict) -> float:
        dc = (cell["cost"] - min(costs)) / cost_span if cost_span > 0 else 0.0
        dt = (cell["seconds"] - min(times)) / time_span if time_span > 0 else 0.0
        return math.hypot(dc, dt)

    return min(front, key=distance)


def _scale(values: Sequence[float], lo: float, hi: float,
           out_lo: float, out_hi: float) -> List[float]:
    span = hi - lo
    if span <= 0:
        return [(out_lo + out_hi) / 2.0 for _ in values]
    k = (out_hi - out_lo) / span
    return [out_lo + (v - lo) * k for v in values]


def _schedule_label(cell: Dict) -> str:
    schedule = cell.get("schedule", {})
    return (
        f'T0={schedule.get("initial_temp")} '
        f'a={schedule.get("cooling")} '
        f'm={schedule.get("moves_per_temp")}'
    )


def render_pareto_svg(report: Dict, width: int = 720, height: int = 420) -> str:
    """The sweep's (wall-clock, cost) scatter as a standalone SVG.

    Every cell is a gray dot; the Pareto front is the red staircase; the
    knee (the shipped tuned default) is the filled red ring with its
    schedule labelled.
    """
    cells = report["cells"]
    front = report["front"]
    knee = report.get("knee")
    margin = 56
    x0, x1 = margin, width - margin
    y0, y1 = height - margin, margin  # SVG y grows downward
    times = [cell["seconds"] for cell in cells] or [0.0, 1.0]
    costs = [cell["cost"] for cell in cells] or [0.0, 1.0]
    t_lo, t_hi = min(times), max(times)
    c_lo, c_hi = min(costs), max(costs)
    xs = _scale(times, t_lo, t_hi, x0, x1)
    ys = _scale(costs, c_lo, c_hi, y0, y1)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-family="monospace" font-size="13">'
        f'tune sweep: {report.get("circuit", "?")} '
        f"({len(cells)} cells, front {len(front)})</text>",
        f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#444"/>',
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#444"/>',
        f'<text x="{x0}" y="{y0 + 16}" font-family="monospace" '
        f'font-size="10">{t_lo:.3g}s</text>',
        f'<text x="{x1}" y="{y0 + 16}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{t_hi:.3g}s wall-clock</text>',
        f'<text x="{x0 - 4}" y="{y1}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{c_hi:.5g}</text>',
        f'<text x="{x0 - 4}" y="{y0}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{c_lo:.5g}</text>',
    ]
    for x, y in zip(xs, ys):
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="#9aa0a6"/>'
        )
    if front:
        fx = _scale([cell["seconds"] for cell in front], t_lo, t_hi, x0, x1)
        fy = _scale([cell["cost"] for cell in front], c_lo, c_hi, y0, y1)
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(fx, fy))
        parts.append(
            f'<polyline fill="none" stroke="#d62728" stroke-width="1.5" '
            f'points="{coords}"/>'
        )
        for x, y in zip(fx, fy):
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="#d62728"/>'
            )
    if knee is not None:
        (kx,) = _scale([knee["seconds"]], t_lo, t_hi, x0, x1)
        (ky,) = _scale([knee["cost"]], c_lo, c_hi, y0, y1)
        parts.extend(
            [
                f'<circle cx="{kx:.1f}" cy="{ky:.1f}" r="7" fill="none" '
                f'stroke="#d62728" stroke-width="2"/>',
                f'<text x="{kx + 10:.1f}" y="{ky - 8:.1f}" '
                f'font-family="monospace" font-size="10" fill="#d62728">'
                f"knee: {_schedule_label(knee)}</text>",
            ]
        )
    parts.append("</svg>")
    return "\n".join(parts)
