"""Replica-exchange parallel tempering over the job engine.

K chains anneal the same DFA baseline at staggered temperatures
(``T0 * ladder_ratio**k`` for chain *k*; chain 0 is the paper's schedule).
Every ``swap_stride`` temperature tiers the coordinator collects the
chains' serialized states from the pool and proposes Metropolis swaps
between adjacent ladder neighbours (alternating even/odd pairings per
round, the standard replica-exchange sweep).  An accepted swap exchanges
the *configurations* (kernel state + current cost) while each slot keeps
its temperature, rng stream and best-so-far bookkeeping — so per-chain
accept traces are a pure function of (seed, K) no matter how the engine
fans the segment jobs out.

``swap_stride=0`` degenerates to multi-start SA: the K chains run their
whole schedule as one segment each and never exchange states.

Chain seeds and the dedicated swap rng are derived from the run seed by
hashing, so a tempering run is seed-deterministic at fixed K and adding
chains never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..exchange import SAParams, swap_accept
from ..runtime.spec import JobSpec


@dataclass(frozen=True)
class TemperingConfig:
    """Ladder shape and swap cadence of one tempering run."""

    chains: int = 4
    swap_stride: int = 2
    ladder_ratio: float = 1.25

    def __post_init__(self) -> None:
        if self.chains < 1:
            raise ValueError("tempering needs at least one chain")
        if self.swap_stride < 0:
            raise ValueError("swap_stride must be >= 0 (0 = multi-start)")
        if self.ladder_ratio <= 1.0:
            raise ValueError("ladder_ratio must be > 1")


def _derived_seed(seed: int, tag: str) -> int:
    """A decorrelated 63-bit stream seed for one role of the run."""
    digest = hashlib.sha256(f"{seed}:{tag}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def chain_temperatures(schedule: SAParams, config: TemperingConfig) -> List[float]:
    """Chain *k* starts at ``T0 * ratio**k``; chain 0 is the base schedule."""
    return [
        schedule.initial_temp * config.ladder_ratio**k
        for k in range(config.chains)
    ]


def run_tempering(
    engine,
    circuit: int,
    config: Optional[TemperingConfig] = None,
    schedule: Optional[SAParams] = None,
    seed: int = 0,
    tiers: int = 1,
    grid: int = 32,
    polish_passes: int = 20,
    backend_grid: str = "auto",
) -> Dict:
    """One parallel-tempering co-design run; returns the Table-3 row dict.

    The result carries the same keys as the ``codesign`` job type (so the
    existing workload renderers apply unchanged) plus a ``tempering``
    block with the ladder, swap statistics and per-chain accept traces.
    """
    from ..obs.curves import CurveRecorder

    config = config or TemperingConfig()
    schedule = schedule or SAParams()
    telemetry = engine.telemetry
    total_steps = schedule.temperature_steps()
    stride = config.swap_stride if config.swap_stride > 0 else total_steps
    temperatures = chain_temperatures(schedule, config)

    base_params = {"circuit": int(circuit), "tiers": int(tiers)}
    swap_rng = random.Random(_derived_seed(seed, "swap"))
    chain_seeds = [
        _derived_seed(seed, f"chain:{k}") for k in range(config.chains)
    ]
    states: List[Optional[Dict]] = [None] * config.chains
    accept_traces: List[List[int]] = [[] for _ in range(config.chains)]
    recorders = [CurveRecorder() for _ in range(config.chains)]
    swaps_proposed = swaps_accepted = 0
    circuit_name = None

    telemetry.emit(
        "tempering.begin",
        chains=config.chains,
        steps=total_steps,
        swap_stride=config.swap_stride,
        ladder_ratio=config.ladder_ratio,
        mode="tempering" if config.swap_stride > 0 else "multi-start",
    )
    steps_done = 0
    round_index = 0
    while steps_done < total_steps or (total_steps == 0 and round_index == 0):
        steps = min(stride, total_steps - steps_done) if total_steps else 0
        specs = []
        for k in range(config.chains):
            params = dict(base_params)
            params["steps"] = steps
            params["moves_per_temp"] = schedule.moves_per_temp
            params["cooling"] = schedule.cooling
            if states[k] is None:
                params["temperature"] = temperatures[k]
            else:
                params["chain"] = states[k]
            specs.append(JobSpec("tempering", params, seed=chain_seeds[k]))
        outcomes = engine.run(specs)
        for k, outcome in enumerate(outcomes):
            if not outcome.ok:
                raise RuntimeError(
                    f"tempering chain {k} failed at round {round_index}: "
                    f"{outcome.error_class}: {outcome.error}"
                )
            states[k] = outcome.value["chain"]
            accept_traces[k].extend(outcome.value["accept_trace"])
            for sample in outcome.value["samples"]:
                recorders[k].observe(*sample)
            circuit_name = outcome.value["circuit"]
        steps_done += steps
        if steps_done < total_steps and config.swap_stride > 0:
            # Alternate even/odd adjacent pairings: (0,1)(2,3)... then
            # (1,2)(3,4)...; chain a is always the colder slot.
            for a in range(round_index % 2, config.chains - 1, 2):
                b = a + 1
                swaps_proposed += 1
                accepted, _uniform = swap_accept(
                    swap_rng,
                    states[a]["current_cost"],
                    states[b]["current_cost"],
                    states[a]["temperature"],
                    states[b]["temperature"],
                )
                telemetry.emit(
                    "sa.swap",
                    round=round_index,
                    chain_a=a,
                    chain_b=b,
                    accepted=accepted,
                    cost_a=states[a]["current_cost"],
                    cost_b=states[b]["current_cost"],
                    temp_a=states[a]["temperature"],
                    temp_b=states[b]["temperature"],
                )
                if accepted:
                    swaps_accepted += 1
                    for key in ("kernel", "current_cost"):
                        states[a][key], states[b][key] = (
                            states[b][key],
                            states[a][key],
                        )
        round_index += 1
        if total_steps == 0:
            break

    for k, recorder in enumerate(recorders):
        if recorder.observed:
            recorder.emit(telemetry, circuit=f"{circuit_name}@chain{k}")

    best_chain = min(
        range(config.chains), key=lambda k: states[k]["best_cost"]
    )
    result = _finalize(
        base_params,
        states[best_chain],
        grid=grid,
        polish_passes=polish_passes,
        backend=backend_grid,
    )
    result["tempering"] = {
        "chains": config.chains,
        "swap_stride": config.swap_stride,
        "ladder_ratio": config.ladder_ratio,
        "ladder": temperatures,
        "rounds": round_index,
        "swaps_proposed": swaps_proposed,
        "swaps_accepted": swaps_accepted,
        "best_chain": best_chain,
        "chain_best_costs": [state["best_cost"] for state in states],
        "accept_traces": accept_traces,
    }
    telemetry.emit(
        "tempering.end",
        best_cost=states[best_chain]["best_cost"],
        chains=config.chains,
        swaps_proposed=swaps_proposed,
        swaps_accepted=swaps_accepted,
    )
    return result


def _finalize(
    base_params: Dict,
    state: Dict,
    grid: int,
    polish_passes: int,
    backend: str,
) -> Dict:
    """Measure the winning chain's best configuration like ``codesign``.

    Rebuilds the kernel at the shared DFA baseline, restores the best
    snapshot, applies the zero-temperature polish and reports through the
    object model — the same discipline as
    :meth:`FingerPadExchanger._run_array`.
    """
    from ..assign import DFAAssigner, assign_design, check_legal
    from ..exchange import CachedExchangeCost, omega_of_design
    from ..exchange.checkpoint import decode_arrays
    from ..flow.metrics import improvement_ratio, measure
    from ..kernels import ArrayExchangeKernel
    from ..power import PowerGridConfig
    from ..runtime.jobs import _build_circuit_design

    design = _build_circuit_design(base_params)
    baseline = assign_design(
        DFAAssigner(), design, seed=int(base_params.get("assign_seed", 0))
    )
    kernel = ArrayExchangeKernel(design, baseline)
    kernel.restore(decode_arrays(state["best"]))
    if polish_passes:
        kernel.polish(polish_passes)
    after = kernel.assignments()
    for assignment in after.values():
        check_legal(assignment)

    grid_config = PowerGridConfig(size=int(grid))
    metrics_initial = measure(design, baseline, grid_config=grid_config)
    metrics_final = measure(design, after, grid_config=grid_config)
    cost = CachedExchangeCost(design, baseline)
    psi = design.stacking.tier_count
    omega_before = omega_of_design(baseline, psi)
    omega_after = omega_of_design(after, psi)
    breakdown_after = cost.breakdown(after)
    proposed = int(state["proposed"])
    accepted = int(state["accepted"])
    return {
        "circuit": design.name,
        "tiers": int(base_params.get("tiers", 1)),
        "density_after_assignment": metrics_initial.max_density,
        "density_after_exchange": metrics_final.max_density,
        "ir_improvement": improvement_ratio(
            metrics_initial.max_ir_drop, metrics_final.max_ir_drop
        ),
        "bonding_improvement": improvement_ratio(omega_before, omega_after)
        if omega_before > 0
        else 0.0,
        "max_ir_drop_initial": metrics_initial.max_ir_drop,
        "max_ir_drop_final": metrics_final.max_ir_drop,
        "final_cost": breakdown_after["total"],
        "sa": {
            "proposed": proposed,
            "accepted": accepted,
            "acceptance_ratio": accepted / proposed if proposed else 0.0,
            "initial_cost": cost.breakdown(baseline)["total"],
            "best_cost": float(state["best_cost"]),
        },
    }
