"""2-D point/vector primitive used throughout the package model."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point (or vector) in micrometres.

    Ordering is lexicographic ``(x, y)`` which is convenient for sorting via
    and bump-ball positions left-to-right, bottom-to-top.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def manhattan(self, other: "Point") -> float:
        """Manhattan (L1) distance to *other*."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Euclidean (L2) distance to *other* — the paper's "direct flyline"."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def chebyshev(self, other: "Point") -> float:
        """Chebyshev (L-inf) distance to *other*."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between ``self`` and *other*."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def norm(self) -> float:
        """Euclidean length when the point is interpreted as a vector."""
        return math.hypot(self.x, self.y)

    def dot(self, other: "Point") -> float:
        """Dot product with *other* (vector interpretation)."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """2-D cross product (z component) with *other*."""
        return self.x * other.y - self.y * other.x

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """True when both coordinates match within *tol*."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol


ORIGIN = Point(0.0, 0.0)
