"""Regular-grid helpers for bump-ball arrays and power-grid meshes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import GeometryError
from .point import Point


@dataclass(frozen=True)
class GridSpec:
    """A uniform rectangular grid of ``cols`` x ``rows`` sites.

    Site ``(col, row)`` with 1-based indices maps to the physical point
    ``origin + ((col-1)*pitch_x, (row-1)*pitch_y)``.  Bump-ball arrays, via
    candidate sites and the FD power mesh are all instances of this.
    """

    cols: int
    rows: int
    pitch_x: float
    pitch_y: float
    origin_x: float = 0.0
    origin_y: float = 0.0

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise GeometryError(f"grid must be at least 1x1, got {self.cols}x{self.rows}")
        if self.pitch_x <= 0 or self.pitch_y <= 0:
            raise GeometryError(
                f"grid pitch must be positive, got {self.pitch_x}x{self.pitch_y}"
            )

    @property
    def site_count(self) -> int:
        return self.cols * self.rows

    @property
    def width(self) -> float:
        """Physical width spanned by the site centres."""
        return (self.cols - 1) * self.pitch_x

    @property
    def height(self) -> float:
        """Physical height spanned by the site centres."""
        return (self.rows - 1) * self.pitch_y

    def point_at(self, col: int, row: int) -> Point:
        """Physical location of site ``(col, row)`` (1-based indices)."""
        self._check(col, row)
        return Point(
            self.origin_x + (col - 1) * self.pitch_x,
            self.origin_y + (row - 1) * self.pitch_y,
        )

    def _check(self, col: int, row: int) -> None:
        if not (1 <= col <= self.cols and 1 <= row <= self.rows):
            raise GeometryError(
                f"site ({col},{row}) outside grid {self.cols}x{self.rows}"
            )

    def sites(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(col, row)`` indices, row-major, bottom-up."""
        for row in range(1, self.rows + 1):
            for col in range(1, self.cols + 1):
                yield (col, row)

    def row_sites(self, row: int) -> List[Tuple[int, int]]:
        """All site indices of one row, left to right."""
        self._check(1, row)
        return [(col, row) for col in range(1, self.cols + 1)]

    def nearest_site(self, point: Point) -> Tuple[int, int]:
        """The grid site whose centre is nearest to *point* (clamped)."""
        col = round((point.x - self.origin_x) / self.pitch_x) + 1
        row = round((point.y - self.origin_y) / self.pitch_y) + 1
        col = min(max(col, 1), self.cols)
        row = min(max(row, 1), self.rows)
        return (int(col), int(row))
