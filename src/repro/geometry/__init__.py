"""Geometry primitives: points, rectangles, segments, grids and transforms."""

from .grid import GridSpec
from .point import ORIGIN, Point
from .rect import Rect
from .segment import Segment
from .transform import Side, canonical_to_side, rotate_quarters, side_to_canonical

__all__ = [
    "ORIGIN",
    "GridSpec",
    "Point",
    "Rect",
    "Segment",
    "Side",
    "canonical_to_side",
    "rotate_quarters",
    "side_to_canonical",
]
