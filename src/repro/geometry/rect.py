"""Axis-aligned rectangle primitive (die outlines, finger shapes, ...)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError
from .point import Point


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle defined by its lower-left corner and size."""

    llx: float
    lly: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise GeometryError(
                f"Rect size must be non-negative, got {self.width}x{self.height}"
            )

    @classmethod
    def from_corners(cls, lower_left: Point, upper_right: Point) -> "Rect":
        """Build a rectangle from two opposite corners (any order)."""
        llx = min(lower_left.x, upper_right.x)
        lly = min(lower_left.y, upper_right.y)
        urx = max(lower_left.x, upper_right.x)
        ury = max(lower_left.y, upper_right.y)
        return cls(llx, lly, urx - llx, ury - lly)

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Build a rectangle centred on *center*."""
        return cls(center.x - width / 2.0, center.y - height / 2.0, width, height)

    @property
    def urx(self) -> float:
        return self.llx + self.width

    @property
    def ury(self) -> float:
        return self.lly + self.height

    @property
    def center(self) -> Point:
        return Point(self.llx + self.width / 2.0, self.lly + self.height / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def lower_left(self) -> Point:
        return Point(self.llx, self.lly)

    @property
    def upper_right(self) -> Point:
        return Point(self.urx, self.ury)

    def contains(self, point: Point, tol: float = 0.0) -> bool:
        """True when *point* lies inside (or on the border of) the rectangle."""
        return (
            self.llx - tol <= point.x <= self.urx + tol
            and self.lly - tol <= point.y <= self.ury + tol
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles overlap (border contact counts)."""
        return not (
            self.urx < other.llx
            or other.urx < self.llx
            or self.ury < other.lly
            or other.ury < self.lly
        )

    def inflated(self, margin: float) -> "Rect":
        """A copy grown by *margin* on every side (negative shrinks)."""
        new_w = self.width + 2 * margin
        new_h = self.height + 2 * margin
        if new_w < 0 or new_h < 0:
            raise GeometryError(f"inflating by {margin} makes the rect negative")
        return Rect(self.llx - margin, self.lly - margin, new_w, new_h)

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy of this rectangle shifted by ``(dx, dy)``."""
        return Rect(self.llx + dx, self.lly + dy, self.width, self.height)
