"""Quadrant transforms.

The package area is partitioned into four triangular quadrants (paper Fig. 2)
and each quadrant is solved independently in a canonical frame where the
fingers sit at the top and bump-ball rows extend downwards.  These transforms
rotate a canonical-frame point into the physical frame of each side of the
package and back.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

from .point import Point


class Side(enum.Enum):
    """The four sides of the package, i.e. the four triangular quadrants."""

    BOTTOM = "bottom"
    RIGHT = "right"
    TOP = "top"
    LEFT = "left"

    @property
    def rotation_quarters(self) -> int:
        """Number of 90-degree CCW quarter turns from the canonical frame.

        The canonical frame is the BOTTOM quadrant (fingers above, bump rows
        below them, outward = -y).
        """
        order = {Side.BOTTOM: 0, Side.RIGHT: 1, Side.TOP: 2, Side.LEFT: 3}
        return order[self]


def _rot0(p: Point) -> Point:
    return p


def _rot90(p: Point) -> Point:
    return Point(-p.y, p.x)


def _rot180(p: Point) -> Point:
    return Point(-p.x, -p.y)


def _rot270(p: Point) -> Point:
    return Point(p.y, -p.x)


_ROTATIONS: Dict[int, Callable[[Point], Point]] = {
    0: _rot0,
    1: _rot90,
    2: _rot180,
    3: _rot270,
}


def rotate_quarters(point: Point, quarters: int) -> Point:
    """Rotate *point* by ``quarters`` 90-degree CCW turns about the origin."""
    return _ROTATIONS[quarters % 4](point)


def canonical_to_side(point: Point, side: Side, package_center: Point) -> Point:
    """Map a canonical-frame point to the physical frame of *side*.

    The canonical frame places the package centre at the origin; the physical
    frame translates it to *package_center*.
    """
    rotated = rotate_quarters(point, side.rotation_quarters)
    return rotated + package_center


def side_to_canonical(point: Point, side: Side, package_center: Point) -> Point:
    """Inverse of :func:`canonical_to_side`."""
    centered = point - package_center
    return rotate_quarters(centered, -side.rotation_quarters % 4)
