"""Line-segment primitive used for routed wire pieces and flylines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .point import Point


@dataclass(frozen=True)
class Segment:
    """A straight wire piece from :attr:`a` to :attr:`b`."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.euclidean(self.b)

    @property
    def manhattan_length(self) -> float:
        """Manhattan length of the segment."""
        return self.a.manhattan(self.b)

    @property
    def is_horizontal(self) -> bool:
        return self.a.y == self.b.y

    @property
    def is_vertical(self) -> bool:
        return self.a.x == self.b.x

    @property
    def midpoint(self) -> Point:
        return self.a.midpoint(self.b)

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.b, self.a)

    def crosses_horizontal_line(self, y: float) -> bool:
        """True when the segment crosses (or touches) the horizontal line *y*.

        This is the primitive behind the monotonic-routing property: a
        monotonic wire crosses every horizontal grid line at most once.
        """
        lo, hi = sorted((self.a.y, self.b.y))
        return lo <= y <= hi

    def x_at_y(self, y: float) -> Optional[float]:
        """X coordinate where the segment crosses height *y*.

        Returns ``None`` when the segment does not reach *y*, or when the
        segment is horizontal at exactly that height (no unique crossing).
        """
        if not self.crosses_horizontal_line(y):
            return None
        if self.a.y == self.b.y:
            return None
        t = (y - self.a.y) / (self.b.y - self.a.y)
        return self.a.x + t * (self.b.x - self.a.x)
