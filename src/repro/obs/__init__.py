"""repro.obs — the observability layer.

Builds on the :mod:`repro.runtime.telemetry` primitives (event stream,
sinks, the active-telemetry context) and adds everything needed to *see*
a run:

- :mod:`~repro.obs.spans` — hierarchical spans with cross-process
  propagation through pool workers;
- :mod:`~repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms shipped on-trace as versioned ``metrics``
  events;
- :mod:`~repro.obs.schema` — the versioned event schema and its
  validator (surfaced as ``repro.verify.check_trace_events`` and the
  ``repro check-trace`` CLI);
- :mod:`~repro.obs.trace` — trace loading, span-tree reconstruction and
  Chrome ``trace_event`` export (Perfetto / ``chrome://tracing``);
- :mod:`~repro.obs.stats` — the ``repro stats`` report (top spans by
  self-time, phase breakdown, acceptance curve, cache summary);
- :mod:`~repro.obs.profile` — per-job cProfile / sampling profilers
  behind ``--profile``;
- :mod:`~repro.obs.bench` — machine-readable ``BENCH_*.json`` perf
  records and their comparison;
- :mod:`~repro.obs.live` — process-wide live metric aggregation and the
  Prometheus text exposition scrape surface behind ``GET /metrics``;
- :mod:`~repro.obs.curves` — bounded SA convergence-curve capture
  (``sa.curve`` events) and their SVG/JSON rendering;
- :mod:`~repro.obs.ledger` — the append-only perf-regression ledger
  behind ``repro bench run`` / ``repro bench compare``.

Only :mod:`~repro.obs.spans` and :mod:`~repro.obs.metrics` — the pieces
hot code paths touch — are imported eagerly; the analysis-side modules
load on first attribute access so that instrumented modules (the engine,
the annealer) never drag the verify layer into their import graph.
"""

from __future__ import annotations

from . import metrics, spans
from .metrics import (
    METRICS_VERSION,
    NULL_REGISTRY,
    QUEUE_WAIT_BUCKETS,
    SA_DELTA_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    merge_histograms,
)
from .spans import SpanHandle, attached_to, current_span_id, new_span_id, open_span, span

#: Analysis-side submodules resolved lazily (PEP 562).
_LAZY_MODULES = (
    "schema", "trace", "stats", "profile", "bench", "live", "curves",
    "ledger",
)

#: Lazily re-exported names -> owning submodule.
_LAZY_NAMES = {
    "SCHEMA_VERSION": "schema",
    "validate_event": "schema",
    "validate_trace": "schema",
    "known_events": "schema",
    "SpanNode": "trace",
    "load_trace": "trace",
    "build_span_tree": "trace",
    "check_spans": "trace",
    "to_chrome": "trace",
    "write_chrome": "trace",
    "render_stats": "stats",
    "stats_summary": "stats",
    "Profiler": "profile",
    "make_profiler": "profile",
    "write_bench_record": "bench",
    "load_bench_record": "bench",
    "compare_bench_records": "bench",
    "LiveRegistry": "live",
    "validate_exposition": "live",
    "CurveRecorder": "curves",
    "render_curve_svg": "curves",
    "run_ledger": "ledger",
    "compare_ledger": "ledger",
}

__all__ = [
    "METRICS_VERSION",
    "NULL_REGISTRY",
    "QUEUE_WAIT_BUCKETS",
    "SA_DELTA_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanHandle",
    "attached_to",
    "current_span_id",
    "get_metrics",
    "merge_histograms",
    "metrics",
    "new_span_id",
    "open_span",
    "span",
    "spans",
    *sorted(_LAZY_MODULES),
    *sorted(_LAZY_NAMES),
]


def __getattr__(name: str):
    import importlib

    if name in _LAZY_MODULES:
        return importlib.import_module(f".{name}", __name__)
    owner = _LAZY_NAMES.get(name)
    if owner is not None:
        return getattr(importlib.import_module(f".{owner}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
