"""The versioned telemetry event schema and its validator.

Before this module the trace was a convention: every producer invented
field names and every consumer grepped for them.  The schema pins the
contract down — one catalog of event names with required/optional fields
and types, stamped into each trace via the ``trace.meta`` event the CLI
writes first::

    {"event": "trace.meta", "schema": 1, "tool": "repro", ...}

:func:`validate_trace` re-checks a live or on-disk trace against the
catalog and returns an ordinary
:class:`~repro.verify.diagnostics.VerificationReport`, which is how the
validator plugs into ``repro.verify`` (``verify.check_trace_events``) and
the ``repro check-trace`` CLI.

Versioning policy: adding an *optional* field or a new event name is
backward compatible and keeps ``SCHEMA_VERSION``; renaming or retyping a
required field bumps it, and the validator rejects traces stamped with a
newer version than it understands.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Version stamped into ``trace.meta`` and checked by the validator.
SCHEMA_VERSION = 1

_NUM = (int, float)
_STR = (str,)
_BOOL = (bool,)
_LIST = (list,)
_DICT = (dict,)
_OPT_STR = (str, type(None))
_ANY = (object,)

#: ``event name -> {field: allowed types}`` for *required* fields.  Every
#: event additionally requires ``event`` (str) and ``t`` (number >= 0),
#: checked structurally before the catalog lookup.
REQUIRED: Dict[str, Dict[str, tuple]] = {
    "trace.meta": {"schema": _NUM, "tool": _STR},
    "span.begin": {"name": _STR, "span": _STR, "parent": _OPT_STR},
    "span.end": {"name": _STR, "span": _STR, "parent": _OPT_STR, "seconds": _NUM},
    "engine.start": {"jobs": _NUM, "total": _NUM, "cached": _NUM, "pending": _NUM},
    "engine.end": {"total": _NUM, "failures": _NUM, "seconds": _NUM},
    "engine.degraded": {"reason": _STR, "unresolved": _NUM},
    "engine.pool_start": {"workers": _NUM},
    "job.cached": {"job": _STR, "kind": _STR},
    "job.journal": {"job": _STR, "kind": _STR},
    "journal.compact": {"records": _NUM, "bytes": _NUM, "reclaimed": _NUM},
    "checkpoint.saved": {"proposed": _NUM, "bytes": _NUM},
    "checkpoint.resumed": {"proposed": _NUM, "temperature": _NUM},
    "checkpoint.invalid": {"reason": _STR},
    "job.done": {"job": _STR, "kind": _STR, "seconds": _NUM, "attempts": _NUM, "mode": _STR},
    "job.error": {"job": _STR, "kind": _STR, "error": _STR, "attempt": _NUM},
    "job.failed": {"job": _STR, "kind": _STR, "error": _STR},
    "job.timeout": {"job": _STR, "kind": _STR, "timeout": _NUM},
    "job.invalid": {"job": _STR, "kind": _STR, "source": _STR, "codes": _LIST, "error": _STR},
    "cache.invalid": {"job": _STR, "kind": _STR, "reason": _STR},
    "cache.put": {"kind": _STR, "bytes": _NUM},
    "cache.evict": {"kind": _STR, "bytes": _NUM},
    "serve.start": {"host": _STR, "port": _NUM, "workers": _NUM},
    "serve.request": {"method": _STR, "path": _STR, "status": _NUM,
                      "seconds": _NUM},
    "serve.submit": {"job": _STR, "kind": _STR, "dedup": _BOOL},
    "serve.batch": {"size": _NUM, "waited": _NUM},
    "serve.reject": {"reason": _STR, "pending": _NUM},
    "serve.drain": {"pending": _NUM, "seconds": _NUM, "clean": _BOOL},
    "serve.recover": {"settled": _NUM, "inflight": _NUM, "failed": _NUM},
    "serve.stop": {"requests": _NUM, "seconds": _NUM},
    "sa.begin": {"initial_cost": _NUM, "initial_temp": _NUM, "steps": _NUM,
                 "moves_per_temp": _NUM},
    "sa.step": {"temperature": _NUM, "cost": _NUM, "acceptance": _NUM},
    "sa.end": {"final_cost": _NUM, "best_cost": _NUM, "proposed": _NUM,
               "accepted": _NUM, "accepted_uphill": _NUM, "acceptance_ratio": _NUM},
    "sa.nonfinite": {"cost": _STR, "temperature": _NUM},
    "sa.curve": {"points": _LIST, "stride": _NUM, "total_steps": _NUM},
    "sa.swap": {"round": _NUM, "chain_a": _NUM, "chain_b": _NUM,
                "accepted": _BOOL, "cost_a": _NUM, "cost_b": _NUM,
                "temp_a": _NUM, "temp_b": _NUM},
    "tempering.begin": {"chains": _NUM, "steps": _NUM, "swap_stride": _NUM,
                        "mode": _STR},
    "tempering.end": {"best_cost": _NUM, "chains": _NUM,
                      "swaps_proposed": _NUM, "swaps_accepted": _NUM},
    "tune.begin": {"circuit": _STR, "cells": _NUM},
    "tune.cell": {"circuit": _STR, "cost": _NUM, "seconds": _NUM},
    "tune.end": {"cells": _NUM, "front": _NUM},
    "kernel.stats": {"backend": _STR, "proposed": _NUM, "us_per_move": _NUM,
                     "resyncs": _NUM},
    "metrics": {"version": _NUM, "metrics": _DICT},
    "profile": {"mode": _STR, "top": _LIST},
    "verify.violation": {"stage": _STR, "policy": _STR, "codes": _LIST},
    "verify.repair": {"stage": _STR, "moved": _NUM, "ok": _BOOL},
    "verify.degrade": {"stage": _STR, "fallback": _STR},
    "experiment.seed": {"seconds": _NUM, "seed": _NUM},
    "fuzz.begin": {"cases": _NUM, "oracles": _LIST, "seed": _NUM},
    "fuzz.failure": {"oracle": _STR, "case": _STR, "problems": _LIST},
    "fuzz.shrink": {"oracle": _STR, "case": _STR, "evals": _NUM},
    "fuzz.end": {"cases": _NUM, "failures": _NUM, "skipped": _NUM,
                 "seconds": _NUM, "cases_per_s": _NUM},
}

#: Optional fields per event (on top of the always-optional ``span`` /
#: ``job`` attribution tags every event may carry).
OPTIONAL: Dict[str, Dict[str, tuple]] = {
    "trace.meta": {"command": _STR, "workload": _STR, "seed": _NUM, "jobs": _NUM,
                   "backend": _STR, "verify": _STR, "argv": _LIST, "profile": _STR},
    "span.begin": {},
    "span.end": {"status": _STR},
    "engine.end": {"hits": _NUM, "misses": _NUM, "writes": _NUM, "invalid": _NUM,
                   "evicted": _NUM},
    "checkpoint.saved": {"seconds": _NUM, "path": _STR},
    "checkpoint.invalid": {"path": _STR},
    "serve.submit": {"wait": _BOOL},
    "job.done": {"queue_wait": _NUM},
    "job.error": {"error_class": _STR, "traceback": _STR},
    "job.failed": {"error_class": _OPT_STR},
    "sa.end": {"seconds": _NUM, "moves_per_s": _NUM, "nonfinite_rejected": _NUM},
    "sa.curve": {"circuit": _STR, "budget": _NUM},
    "tempering.begin": {"ladder_ratio": _NUM},
    "tune.cell": {"cached": _BOOL},
    "kernel.stats": {"swaps": _NUM, "seconds": _NUM},
    "profile": {"seconds": _NUM},
}

#: Fields any event may carry without being declared per-event.
COMMON_OPTIONAL = ("span", "job", "name", "parent", "status")


def known_events() -> List[str]:
    return sorted(REQUIRED)


def validate_event(event, index: int = 0) -> List[Tuple[str, str]]:
    """Problems with one event as ``(code, message)`` pairs (empty = valid)."""
    problems: List[Tuple[str, str]] = []
    if not isinstance(event, dict):
        return [("trace.not-object", f"event #{index} is not a JSON object")]
    name = event.get("event")
    if not isinstance(name, str) or not name:
        return [("trace.missing-event", f"event #{index} has no 'event' name")]
    t = event.get("t")
    if not isinstance(t, _NUM) or isinstance(t, bool) or t < 0:
        problems.append(
            ("trace.bad-timestamp", f"event #{index} ({name}): 't' must be a number >= 0")
        )
    required = REQUIRED.get(name)
    if required is None:
        problems.append(("trace.unknown-event", f"event #{index}: unknown event {name!r}"))
        return problems
    optional = OPTIONAL.get(name, {})
    for field, types in required.items():
        if field not in event:
            problems.append(
                ("trace.missing-field", f"event #{index} ({name}): missing field {field!r}")
            )
        elif not isinstance(event[field], types) or (
            isinstance(event[field], bool) and bool not in types
        ):
            problems.append(
                ("trace.bad-type",
                 f"event #{index} ({name}): field {field!r} is "
                 f"{type(event[field]).__name__}, expected "
                 f"{'/'.join(t.__name__ for t in types)}")
            )
    for field, value in event.items():
        if field in ("event", "t") or field in required or field in COMMON_OPTIONAL:
            continue
        types = optional.get(field)
        if types is None:
            continue  # extra fields are forward-compatible, not an error
        if not isinstance(value, types) or (isinstance(value, bool) and bool not in types):
            problems.append(
                ("trace.bad-type",
                 f"event #{index} ({name}): optional field {field!r} is "
                 f"{type(value).__name__}, expected "
                 f"{'/'.join(t.__name__ for t in types)}")
            )
    return problems


def validate_trace(events, subject: str = "trace"):
    """Validate a whole event sequence against the schema.

    Returns a :class:`~repro.verify.diagnostics.VerificationReport`:
    structural violations (missing/bad required fields, bad timestamps,
    unsupported schema version) are errors; unknown event names and a
    missing ``trace.meta`` stamp are warnings, so ad-hoc instrumentation
    degrades the report without failing it.
    """
    from ..verify.diagnostics import VerificationReport

    report = VerificationReport(subject=subject)
    events = list(events)
    if not events:
        report.error("trace.empty", "trace contains no events")
        return report
    meta: Optional[dict] = None
    for index, event in enumerate(events):
        for code, message in validate_event(event, index):
            if code == "trace.unknown-event":
                report.warning(code, message)
            else:
                report.error(code, message)
        if meta is None and isinstance(event, dict) and event.get("event") == "trace.meta":
            meta = event
    if meta is None:
        report.warning(
            "trace.no-meta",
            "trace carries no trace.meta stamp; schema version unknown",
        )
    else:
        version = meta.get("schema")
        if isinstance(version, _NUM) and version > SCHEMA_VERSION:
            report.error(
                "trace.schema-version",
                f"trace schema {version} is newer than supported {SCHEMA_VERSION}",
            )
    return report
