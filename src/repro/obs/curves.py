"""Bounded SA convergence-curve capture and rendering.

The annealer's ``sa.step`` events give one sample per temperature tier,
which is enough for the coarse acceptance curve in ``repro stats`` but
loses the intra-step dynamics a tuning harness needs, and a trace consumer
has to re-join them per job.  This module captures the convergence
trajectory *inside* the anneal with a hard point budget and ships it as a
single ``sa.curve`` event:

- :class:`CurveRecorder` — observe ``(move, cost, best_cost, acceptance,
  temperature)`` samples as the schedule cools; when the sample count
  exceeds the budget the recorder drops every other retained point and
  doubles its sampling stride (classic stride-doubling), so memory and
  event size stay O(budget) no matter how many moves a 100k-finger run
  proposes.  The final sample is always retained.
- :func:`extract_curves` — pull the ``sa.curve`` events back out of a
  trace, keyed by circuit / job label.
- :func:`render_curve_svg` / :func:`curve_to_json` — stdlib-only
  rendering for ``repro stats --curves``: cost and best-cost polylines
  against move count with the acceptance ratio on a secondary axis.

Point layout (also the on-trace JSON form)::

    [move, cost, best_cost, acceptance, temperature]
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Sequence

#: Default retained-point budget.  Acceptance criteria cap a rendered
#: curve at 2048 points; stride doubling keeps us in (budget/2, budget].
CURVE_POINT_BUDGET = 1024

#: Index layout of one curve point.
MOVE, COST, BEST, ACCEPTANCE, TEMPERATURE = range(5)


class CurveRecorder:
    """Stride-doubling sampler of one anneal's convergence trajectory."""

    def __init__(self, budget: int = CURVE_POINT_BUDGET) -> None:
        if budget < 2:
            raise ValueError("curve budget must be >= 2")
        self.budget = int(budget)
        self.stride = 1
        self.points: List[List[float]] = []
        self.observed = 0
        self._last: Optional[List[float]] = None

    def observe(self, move: int, cost: float, best_cost: float,
                acceptance: float, temperature: float) -> None:
        """Offer one sample (typically once per temperature step)."""
        point = [
            int(move), float(cost), float(best_cost),
            float(acceptance), float(temperature),
        ]
        self._last = point
        if self.observed % self.stride == 0:
            self.points.append(point)
            if len(self.points) > self.budget:
                # Keep every other point and double the stride; the kept
                # points remain exactly the multiples of the new stride.
                self.points = self.points[::2]
                self.stride *= 2
        self.observed += 1

    def finish(self) -> List[List[float]]:
        """The retained points, guaranteeing the final sample is present."""
        if self._last is not None and (
            not self.points or self.points[-1][MOVE] != self._last[MOVE]
        ):
            self.points.append(self._last)
        return self.points

    def emit(self, telemetry, circuit: Optional[str] = None) -> dict:
        """Emit the finished curve as one ``sa.curve`` event."""
        points = self.finish()
        fields = {
            "points": points,
            "stride": self.stride,
            "total_steps": self.observed,
            "budget": self.budget,
        }
        if circuit:
            fields["circuit"] = circuit
        return telemetry.emit("sa.curve", **fields)


def extract_curves(events: Sequence[dict]) -> List[dict]:
    """Every ``sa.curve`` event of a trace, oldest first, with a stable
    ``name`` derived from the circuit, the job label, or the position."""
    curves = []
    for event in events:
        if not isinstance(event, dict) or event.get("event") != "sa.curve":
            continue
        points = event.get("points")
        if not isinstance(points, list) or not points:
            continue
        name = event.get("circuit")
        if not name:
            label = event.get("job")
            name = label.split("[", 1)[0] if isinstance(label, str) else ""
        curves.append(
            {
                "name": name or f"anneal{len(curves)}",
                "points": points,
                "stride": event.get("stride", 1),
                "total_steps": event.get("total_steps", len(points)),
            }
        )
    return curves


def curve_to_json(curve: dict) -> dict:
    """A self-describing JSON document for one extracted curve."""
    points = curve["points"]
    return {
        "schema": 1,
        "name": curve["name"],
        "columns": ["move", "cost", "best_cost", "acceptance", "temperature"],
        "stride": curve.get("stride", 1),
        "total_steps": curve.get("total_steps", len(points)),
        "points": points,
        "final_cost": points[-1][COST],
        "best_cost": min(p[BEST] for p in points),
    }


def _scale(values: Sequence[float], lo: float, hi: float,
           out_lo: float, out_hi: float) -> List[float]:
    span = hi - lo
    if span <= 0:
        return [(out_lo + out_hi) / 2.0 for _ in values]
    k = (out_hi - out_lo) / span
    return [out_lo + (v - lo) * k for v in values]


def _polyline(xs: Sequence[float], ys: Sequence[float], color: str,
              width: float = 1.5, dash: str = "") -> str:
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    extra = f' stroke-dasharray="{dash}"' if dash else ""
    return (
        f'<polyline fill="none" stroke="{color}" stroke-width="{width}"'
        f'{extra} points="{coords}"/>'
    )


def render_curve_svg(curve: dict, width: int = 720, height: int = 360) -> str:
    """One convergence curve as a standalone SVG document.

    Cost (solid) and best-cost (dashed) polylines on the left axis,
    acceptance ratio (dotted) on the right axis, both against move count.
    Stdlib-only on purpose — no plotting dependency to gate on.
    """
    points = curve["points"]
    margin = 48
    x0, x1 = margin, width - margin
    y0, y1 = height - margin, margin  # SVG y grows downward
    moves = [p[MOVE] for p in points]
    costs = [p[COST] for p in points]
    bests = [p[BEST] for p in points]
    accepts = [min(1.0, max(0.0, p[ACCEPTANCE])) for p in points]
    finite = [v for v in costs + bests if math.isfinite(v)]
    lo, hi = (min(finite), max(finite)) if finite else (0.0, 1.0)
    xs = _scale(moves, min(moves), max(moves), x0, x1)
    cost_ys = _scale(costs, lo, hi, y0, y1)
    best_ys = _scale(bests, lo, hi, y0, y1)
    accept_ys = _scale(accepts, 0.0, 1.0, y0, y1)
    title = curve.get("name", "anneal")
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-family="monospace" font-size="13">'
        f"sa convergence: {title} ({len(points)} pts, "
        f'stride {curve.get("stride", 1)})</text>',
        # axes
        f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#444"/>',
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#444"/>',
        f'<text x="{x0}" y="{y0 + 16}" font-family="monospace" '
        f'font-size="10">{moves[0]}</text>',
        f'<text x="{x1}" y="{y0 + 16}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{moves[-1]} moves</text>',
        f'<text x="{x0 - 4}" y="{y1}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{hi:.4g}</text>',
        f'<text x="{x0 - 4}" y="{y0}" text-anchor="end" '
        f'font-family="monospace" font-size="10">{lo:.4g}</text>',
        _polyline(xs, cost_ys, "#1f77b4"),
        _polyline(xs, best_ys, "#2ca02c", dash="6,3"),
        _polyline(xs, accept_ys, "#d62728", width=1.0, dash="2,3"),
        f'<text x="{x1}" y="{y1 - 6}" text-anchor="end" '
        f'font-family="monospace" font-size="10" fill="#1f77b4">cost</text>',
        f'<text x="{x1 - 50}" y="{y1 - 6}" text-anchor="end" '
        f'font-family="monospace" font-size="10" fill="#2ca02c">best</text>',
        f'<text x="{x1 - 100}" y="{y1 - 6}" text-anchor="end" '
        f'font-family="monospace" font-size="10" '
        f'fill="#d62728">acceptance</text>',
        "</svg>",
    ]
    return "\n".join(parts)


def write_curves(events: Sequence[dict], out_dir,
                 width: int = 720, height: int = 360) -> List[str]:
    """Render every curve of a trace to ``sa_curve_<name>.svg`` + ``.json``
    under *out_dir*; returns the written paths (``repro stats --curves``)."""
    curves = extract_curves(events)
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    seen: Dict[str, int] = {}
    used: set = set()
    for curve in curves:
        label = "".join(
            ch if ch.isalnum() or ch in "-_" else "_" for ch in curve["name"]
        ) or "anneal"
        # Deterministic per (label, occurrence): occurrence 0 keeps the bare
        # label, occurrence n gets `_n` — but never a name another curve
        # already claimed.  Without the `used` check, a trace holding both a
        # literal "c1_1" curve and two "c1" curves would render the second
        # "c1" as "c1_1" and silently overwrite the real one.
        count = seen.get(label, 0)
        base = label if count == 0 else f"{label}_{count}"
        while base in used:
            count += 1
            base = f"{label}_{count}"
        seen[label] = count + 1
        used.add(base)
        svg_path = os.path.join(os.fspath(out_dir), f"sa_curve_{base}.svg")
        json_path = os.path.join(os.fspath(out_dir), f"sa_curve_{base}.json")
        with open(svg_path, "w", encoding="utf-8") as handle:
            handle.write(render_curve_svg(curve, width=width, height=height))
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(curve_to_json(curve), handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.extend([svg_path, json_path])
    return written
