"""Machine-readable perf records: ``results/BENCH_*.json``.

Each benchmark run writes one self-describing JSON document — what was
measured, on which git revision, with which seed — so the performance
trajectory of the repo is tracked in-tree instead of living in CI logs.
``repro stats --compare old.json new.json`` diffs two records metric by
metric and flags regressions.

Record layout (``BENCH_SCHEMA = 1``)::

    {
      "schema": 1,
      "name": "kernel",
      "git_rev": "f4e168d...",          # best effort; null outside git
      "seed": 2009,
      "timestamp": "2026-08-06T12:00:00+00:00",
      "metrics": {"us_per_move": 1.9, "speedup": 740.0, ...},
      "context": {...}                   # free-form provenance
    }
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from typing import Dict, Optional

#: Version of the bench-record layout.
BENCH_SCHEMA = 1


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` when unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def make_bench_record(
    name: str,
    metrics: Dict[str, float],
    seed: Optional[int] = None,
    context: Optional[dict] = None,
) -> dict:
    """Assemble a bench record; all metric values must be numbers."""
    bad = {k: v for k, v in metrics.items() if not isinstance(v, (int, float))}
    if bad:
        raise ValueError(f"bench metrics must be numeric, got {bad!r}")
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "git_rev": git_revision(),
        "seed": seed,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "metrics": {k: metrics[k] for k in sorted(metrics)},
        "context": context or {},
    }


def write_bench_record(
    path,
    name: str,
    metrics: Dict[str, float],
    seed: Optional[int] = None,
    context: Optional[dict] = None,
) -> dict:
    """Write a record to *path* (JSON, trailing newline); returns it."""
    record = make_bench_record(name, metrics, seed=seed, context=context)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return record


def load_bench_record(path) -> dict:
    """Load and minimally validate one bench record."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if not isinstance(record, dict) or not isinstance(record.get("metrics"), dict):
        raise ValueError(f"{path}: not a bench record (missing 'metrics' object)")
    schema = record.get("schema")
    if isinstance(schema, (int, float)) and schema > BENCH_SCHEMA:
        raise ValueError(
            f"{path}: bench schema {schema} is newer than supported {BENCH_SCHEMA}"
        )
    return record


def compare_bench_records(old: dict, new: dict) -> dict:
    """Metric-by-metric diff of two records.

    Returns ``{"name", "old_rev", "new_rev", "rows": [...]}`` where each
    row carries the metric name, both values and the relative change
    (``None`` for metrics present on only one side).
    """
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    rows = []
    for key in sorted(set(old_metrics) | set(new_metrics)):
        a = old_metrics.get(key)
        b = new_metrics.get(key)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) and a:
            change = round((b - a) / abs(a), 4)
        else:
            change = None
        rows.append({"metric": key, "old": a, "new": b, "rel_change": change})
    return {
        "name": new.get("name") or old.get("name"),
        "old_rev": old.get("git_rev"),
        "new_rev": new.get("git_rev"),
        "old_timestamp": old.get("timestamp"),
        "new_timestamp": new.get("timestamp"),
        "rows": rows,
    }


def render_compare(diff: dict) -> str:
    """Human-readable table for :func:`compare_bench_records` output."""
    lines = [
        f"bench {diff.get('name') or '?'}: "
        f"{(diff.get('old_rev') or 'unknown')[:12]} -> "
        f"{(diff.get('new_rev') or 'unknown')[:12]}"
    ]
    width = max((len(r["metric"]) for r in diff["rows"]), default=6)
    for row in diff["rows"]:
        old = "-" if row["old"] is None else f"{row['old']:.6g}"
        new = "-" if row["new"] is None else f"{row['new']:.6g}"
        if row["rel_change"] is None:
            change = ""
        else:
            change = f"  ({row['rel_change']:+.1%})"
        lines.append(f"  {row['metric']:<{width}}  {old:>12} -> {new:>12}{change}")
    return "\n".join(lines)
