"""Per-job profiling hooks behind ``--profile cprofile|sample``.

Both profilers share one contract: ``start()`` / ``stop()`` bracketing a
job body, and ``top(n)`` returning aggregated hot spots as plain dicts
that travel on the trace as a ``profile`` event.  The engine builds one
profiler per executed job (parent or worker process alike), so profiles
compose with parallelism without shared state.

- ``cprofile`` wraps :mod:`cProfile` — deterministic, exact call counts,
  meaningful overhead.  Entries report cumulative and total (self) time.
- ``sample`` is a daemon thread polling :func:`sys._current_frames` for
  the caller's stack every few milliseconds — statistical, low overhead,
  counts samples per ``file:line:function``.

Neither is importable cost when profiling is off: :func:`make_profiler`
returns ``None`` for mode ``None`` and the engine skips the whole path.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

#: Accepted ``--profile`` values.
PROFILE_MODES = ("cprofile", "sample")

#: Default sampling period for the statistical profiler (seconds).
SAMPLE_PERIOD = 0.005


def _short_path(path: str) -> str:
    """Trim a source path to its last two components for readable reports."""
    if path.startswith("<"):
        return path
    parts = path.replace(os.sep, "/").split("/")
    return "/".join(parts[-2:])


class CProfiler:
    """Deterministic profiler over :mod:`cProfile`."""

    mode = "cprofile"

    def __init__(self) -> None:
        self._profile = cProfile.Profile()
        self._running = False

    def start(self) -> None:
        self._profile.enable()
        self._running = True

    def stop(self) -> None:
        if self._running:
            self._profile.disable()
            self._running = False

    def top(self, n: int = 10) -> List[dict]:
        """Hot functions by cumulative time, as JSON-ready dicts."""
        stats = pstats.Stats(self._profile).stats  # type: ignore[attr-defined]
        rows = []
        for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.items():
            rows.append(
                {
                    "function": f"{_short_path(filename)}:{lineno}:{func}",
                    "calls": int(nc),
                    "total_s": round(tt, 6),
                    "cumulative_s": round(ct, 6),
                }
            )
        rows.sort(key=lambda r: r["cumulative_s"], reverse=True)
        return rows[:n]


class SamplingProfiler:
    """Statistical profiler: a daemon thread sampling the target's stack."""

    mode = "sample"

    def __init__(self, period: float = SAMPLE_PERIOD) -> None:
        self.period = period
        self.samples = 0
        self._counts: Dict[Tuple[str, int, str], int] = {}
        self._target: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._target = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.period):
            frame = sys._current_frames().get(self._target)
            while frame is not None:
                code = frame.f_code
                key = (code.co_filename, frame.f_lineno, code.co_name)
                self._counts[key] = self._counts.get(key, 0) + 1
                frame = frame.f_back
            self.samples += 1

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=1.0)
            self._thread = None

    def top(self, n: int = 10) -> List[dict]:
        """Hot frames by sample count (all stack levels, not just leaves)."""
        rows = [
            {
                "function": f"{_short_path(filename)}:{lineno}:{func}",
                "samples": count,
                "fraction": round(count / self.samples, 4) if self.samples else 0.0,
            }
            for (filename, lineno, func), count in self._counts.items()
        ]
        rows.sort(key=lambda r: r["samples"], reverse=True)
        return rows[:n]


#: Union type for annotations without an ABC.
Profiler = CProfiler


def make_profiler(mode: Optional[str]):
    """Build a profiler for *mode*, or ``None`` when profiling is off."""
    if mode is None:
        return None
    if mode == "cprofile":
        return CProfiler()
    if mode == "sample":
        return SamplingProfiler()
    raise ValueError(f"unknown profile mode {mode!r}; expected one of {PROFILE_MODES}")


def profile_to_event(profiler, seconds: Optional[float] = None, n: int = 10) -> dict:
    """The ``profile`` telemetry event payload for a stopped profiler."""
    payload = {"mode": profiler.mode, "top": profiler.top(n)}
    if seconds is not None:
        payload["seconds"] = round(seconds, 6)
    return payload


def merge_profile_events(events: List[dict], n: int = 10) -> List[dict]:
    """Aggregate ``profile`` events from many jobs into one top-N table.

    Sums the per-function figures (calls/total/cumulative for cprofile,
    samples for sample mode) across events; mixed modes aggregate by
    whatever numeric fields they share.
    """
    merged: Dict[str, dict] = {}
    for event in events:
        for row in event.get("top", []):
            name = row.get("function")
            if not isinstance(name, str):
                continue
            bucket = merged.setdefault(name, {"function": name})
            for key, value in row.items():
                if key != "function" and isinstance(value, (int, float)):
                    bucket[key] = round(bucket.get(key, 0) + value, 6)
    rows = list(merged.values())
    rows.sort(
        key=lambda r: (r.get("cumulative_s", 0.0), r.get("samples", 0)),
        reverse=True,
    )
    return rows[:n]
