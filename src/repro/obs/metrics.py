"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The raw :class:`~repro.runtime.telemetry.Telemetry` counters are a flat
``name -> float`` dict; good for totals, useless for distributions.  The
registry adds typed instruments with a versioned on-trace form: calling
:meth:`MetricsRegistry.flush` emits one ``metrics`` event carrying a
snapshot of every instrument, so metric series survive the trip from pool
workers to the parent trace like any other event.

Instruments are cheap, lock-free (CPython-atomic) objects designed for hot
loops; the *disabled* path is a single attribute lookup because
``telemetry.metrics`` returns :data:`NULL_REGISTRY` on the no-op
telemetry, whose instruments discard everything.

Histograms use **fixed buckets** declared at creation: recording is a
bisect over the bound list and the snapshot is bounded in size no matter
how many values were recorded — exactly what a 16k-move SA delta series
needs.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

#: Schema version of the ``metrics`` event payload.
METRICS_VERSION = 1

#: Default histogram bounds for SA cost deltas (costs are normalized near
#: 1.0, so genuine Eq.-3 deltas land between 1e-4 and 1e-1 in magnitude).
SA_DELTA_BUCKETS = (
    -0.1, -0.03, -0.01, -0.003, -0.001, -0.0001, 0.0,
    0.0001, 0.001, 0.003, 0.01, 0.03, 0.1,
)

#: Default bounds for engine queue-wait seconds.
QUEUE_WAIT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_registry")
    kind = "counter"

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0.0
        self._registry = registry

    def inc(self, amount: float = 1) -> None:
        self.value += amount
        self._registry.dirty = True

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-write-wins measurement (plus running min/max)."""

    __slots__ = ("name", "value", "min", "max", "_registry")
    kind = "gauge"

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value: Optional[float] = None
        self.min = math.inf
        self.max = -math.inf
        self._registry = registry

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._registry.dirty = True

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "value": self.value,
            "min": self.min if self.value is not None else None,
            "max": self.max if self.value is not None else None,
        }


class Histogram:
    """Fixed-bucket distribution: ``len(bounds) + 1`` counts.

    ``counts[i]`` covers ``bounds[i-1] < v <= bounds[i]``; the final bucket
    is the overflow above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max", "_registry")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float],
                 registry: "MetricsRegistry") -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._registry = registry

    def record(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._registry.dirty = True

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named instruments attached to one telemetry object.

    Instruments are memoized by name; asking for the same name with a
    different instrument type is a programming error and raises.
    :meth:`flush` emits a ``metrics`` event with the full snapshot — only
    when something was recorded since the previous flush, so redundant
    flush points (annealer end, worker exit, engine end) cost nothing.
    """

    def __init__(self, telemetry=None) -> None:
        self._telemetry = telemetry
        self._instruments: Dict[str, object] = {}
        self.dirty = False

    def _get(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name, self), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name, self), "gauge")

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds, self), "histogram")

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def flush(self, **fields) -> Optional[dict]:
        """Emit the registry snapshot as one ``metrics`` event.

        No-op (returns ``None``) when nothing was recorded since the last
        flush or no telemetry is attached.
        """
        if not self.dirty or self._telemetry is None:
            return None
        self.dirty = False
        return self._telemetry.emit(
            "metrics", version=METRICS_VERSION, metrics=self.snapshot(), **fields
        )


class _NullInstrument:
    """Accepts every record and keeps nothing."""

    __slots__ = ()
    kind = "null"

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - trivial
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry(MetricsRegistry):
    """The registry of the no-op telemetry: every instrument discards."""

    def __init__(self) -> None:
        super().__init__(telemetry=None)

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float]):
        return _NULL_INSTRUMENT

    def flush(self, **fields) -> None:
        return None


NULL_REGISTRY = _NullRegistry()


def get_metrics() -> MetricsRegistry:
    """The active telemetry's registry (the null registry when disabled)."""
    from ..runtime.telemetry import get_telemetry

    return get_telemetry().metrics


def merge_histograms(snapshots: Sequence[dict]) -> Optional[dict]:
    """Sum histogram snapshots with identical bounds into one.

    Used by the trace analyser to combine per-job ``metrics`` events into a
    run-wide distribution; returns ``None`` for an empty input and raises
    on mismatched bounds.
    """
    merged: Optional[dict] = None
    for snap in snapshots:
        if merged is None:
            merged = {
                "kind": "histogram",
                "bounds": list(snap["bounds"]),
                "counts": list(snap["counts"]),
                "count": snap["count"],
                "sum": snap["sum"],
                "min": snap["min"],
                "max": snap["max"],
            }
            continue
        if list(snap["bounds"]) != merged["bounds"]:
            raise ValueError("cannot merge histograms with different bounds")
        merged["counts"] = [a + b for a, b in zip(merged["counts"], snap["counts"])]
        merged["count"] += snap["count"]
        merged["sum"] += snap["sum"]
        for key, pick in (("min", min), ("max", max)):
            values = [v for v in (merged[key], snap[key]) if v is not None]
            merged[key] = pick(values) if values else None
    return merged
