"""The append-only perf-regression ledger: ``repro bench run`` / ``compare``.

:mod:`repro.obs.bench` gave each benchmark a one-off ``BENCH_*.json``
snapshot; this module strings them into a *trajectory* and gates on it:

- **Registration.**  A benchmark module under ``benchmarks/`` opts in by
  exposing ``ledger_metrics() -> Dict[str, float]`` (a quick, deterministic
  measurement pass), optionally ``LEDGER_GATED: Dict[str, str]`` mapping
  metric names to ``"lower"``/``"higher"`` (which direction is *better*;
  ungated metrics are recorded but never fail a compare) and
  ``LEDGER_SEED``.
- **History.**  ``run_ledger`` executes every registered module and
  appends one schema-versioned record per bench — git revision, seed,
  host fingerprint, metrics — to ``results/BENCH_history.jsonl``.
- **Gating.**  ``compare_ledger`` diffs the latest record per bench
  against a committed baseline (``results/BENCH_baseline.json``) or an
  earlier history revision (``--against <rev>``) and reports regressions
  beyond the gate percentage; the CLI exits non-zero on any.

Baseline metric specs (``results/BENCH_baseline.json``)::

    {"schema": 1, "benches": {"obs": {"metrics": {
        "overhead": {"max": 0.05},                       # absolute bound
        "us_per_move": {"value": 2.1, "direction": "lower", "gate": 50}
    }}}}

Absolute ``max``/``min`` bounds suit machine-independent ratios and
counts; relative ``value``+``direction`` specs suit raw timings, with an
optional per-metric ``gate`` override of the CLI-wide percentage.
"""

from __future__ import annotations

import importlib.util
import json
import os
import platform
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .bench import BENCH_SCHEMA, make_bench_record

#: Version of one history line (extends the bench record with ``host``).
LEDGER_SCHEMA = BENCH_SCHEMA

#: Default history location, relative to the repo root.
DEFAULT_HISTORY = Path("results") / "BENCH_history.jsonl"

#: Default committed baseline location.
DEFAULT_BASELINE = Path("results") / "BENCH_baseline.json"

_SPARK = "▁▂▃▄▅▆▇█"


def host_fingerprint() -> dict:
    """Where a record was measured — regressions are only comparable
    within one machine class, so every record carries its host."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


# -- discovery -------------------------------------------------------------


def discover_benches(bench_dir) -> List[Tuple[str, Path]]:
    """``(name, path)`` of every ``bench_*.py`` under *bench_dir*."""
    root = Path(bench_dir)
    out = []
    for path in sorted(root.glob("bench_*.py")):
        out.append((path.stem[len("bench_"):], path))
    return out


def load_bench_module(name: str, path: Path):
    """Import one benchmark file as a throwaway module."""
    spec = importlib.util.spec_from_file_location(f"repro_ledger.{name}", path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load bench module {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def registered_benches(bench_dir) -> List[Tuple[str, object]]:
    """Every bench module exposing a callable ``ledger_metrics``."""
    out = []
    for name, path in discover_benches(bench_dir):
        try:
            module = load_bench_module(name, path)
        except Exception as exc:  # noqa: BLE001 - skip, don't abort the run
            print(f"ledger: skipping {path.name}: {type(exc).__name__}: {exc}")
            continue
        if callable(getattr(module, "ledger_metrics", None)):
            out.append((name, module))
    return out


# -- history ---------------------------------------------------------------


def append_history(path, record: dict) -> None:
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path) -> List[dict]:
    """Every parseable record of a history file, oldest first."""
    records = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and isinstance(
                    record.get("metrics"), dict
                ):
                    records.append(record)
    except FileNotFoundError:
        pass
    return records


def latest_by_name(records: Sequence[dict]) -> Dict[str, dict]:
    """The newest record per bench name (file order == time order)."""
    latest: Dict[str, dict] = {}
    for record in records:
        name = record.get("name")
        if isinstance(name, str):
            latest[name] = record
    return latest


def run_ledger(
    bench_dir,
    history_path=None,
    only: Optional[Sequence[str]] = None,
) -> List[dict]:
    """Execute every registered bench and append records to the history."""
    history_path = history_path or DEFAULT_HISTORY
    wanted = set(only) if only else None
    written = []
    for name, module in registered_benches(bench_dir):
        if wanted is not None and name not in wanted:
            continue
        print(f"ledger: running bench_{name} ...", flush=True)
        metrics = module.ledger_metrics()
        record = make_bench_record(
            name,
            metrics,
            seed=getattr(module, "LEDGER_SEED", None),
            context={
                "host": host_fingerprint(),
                "gated": dict(getattr(module, "LEDGER_GATED", {})),
            },
        )
        append_history(history_path, record)
        written.append(record)
        print(f"ledger: bench_{name}: {len(metrics)} metrics recorded")
    return written


# -- comparison / gating ---------------------------------------------------


def load_baseline(path) -> Dict[str, dict]:
    """``bench name -> {metric -> spec}`` from a committed baseline."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    benches = doc.get("benches") if isinstance(doc, dict) else None
    if not isinstance(benches, dict):
        raise ValueError(f"{path}: not a ledger baseline (missing 'benches')")
    return {
        name: entry.get("metrics", {})
        for name, entry in benches.items()
        if isinstance(entry, dict)
    }


def _check_spec(metric: str, value: float, spec: dict,
                gate_pct: float) -> Tuple[str, Optional[str]]:
    """``(description, failure-or-None)`` for one metric vs its spec."""
    if "max" in spec:
        bound = float(spec["max"])
        status = None if value <= bound else (
            f"{metric}: {value:.6g} exceeds absolute max {bound:.6g}"
        )
        return f"{metric}: {value:.6g} (max {bound:.6g})", status
    if "min" in spec:
        bound = float(spec["min"])
        status = None if value >= bound else (
            f"{metric}: {value:.6g} below absolute min {bound:.6g}"
        )
        return f"{metric}: {value:.6g} (min {bound:.6g})", status
    base = float(spec.get("value", 0.0))
    direction = spec.get("direction", "lower")
    pct = float(spec.get("gate", gate_pct))
    if base == 0.0:
        return f"{metric}: {value:.6g} (no baseline value)", None
    change = (value - base) / abs(base) * 100.0
    regressed = change > pct if direction == "lower" else change < -pct
    text = (
        f"{metric}: {base:.6g} -> {value:.6g} ({change:+.1f}%, "
        f"{direction} is better, gate {pct:g}%)"
    )
    failure = (
        f"{metric}: regression {change:+.1f}% beyond gate {pct:g}% "
        f"({base:.6g} -> {value:.6g}, {direction} is better)"
        if regressed
        else None
    )
    return text, failure


def _specs_from_record(record: dict, gate_pct: float) -> Dict[str, dict]:
    """Turn an old history record into relative specs for its gated
    metrics (``--against <rev>`` mode)."""
    gated = record.get("context", {}).get("gated", {})
    metrics = record.get("metrics", {})
    specs = {}
    for metric, direction in gated.items():
        value = metrics.get(metric)
        if isinstance(value, (int, float)):
            specs[metric] = {
                "value": value,
                "direction": direction,
                "gate": gate_pct,
            }
    return specs


def compare_ledger(
    history_path=None,
    baseline_path=None,
    against: Optional[str] = None,
    gate_pct: float = 20.0,
) -> dict:
    """Gate the latest history records; returns ``{"rows", "failures"}``.

    ``against`` selects an earlier history revision (prefix-matched git
    rev) as the baseline; otherwise the committed baseline file is used.
    """
    history_path = history_path or DEFAULT_HISTORY
    records = load_history(history_path)
    if not records:
        return {
            "rows": [],
            "failures": [f"no ledger history at {history_path}; "
                         f"run `repro bench run` first"],
        }
    latest = latest_by_name(records)
    if against:
        baseline_specs = {
            name: _specs_from_record(record, gate_pct)
            for name, record in latest_by_name(
                [
                    r for r in records
                    if isinstance(r.get("git_rev"), str)
                    and r["git_rev"].startswith(against)
                ]
            ).items()
        }
        if not baseline_specs:
            return {
                "rows": [],
                "failures": [f"no history records for rev {against!r}"],
            }
    else:
        baseline_path = baseline_path or DEFAULT_BASELINE
        try:
            baseline_specs = load_baseline(baseline_path)
        except FileNotFoundError:
            return {
                "rows": [],
                "failures": [f"no baseline at {baseline_path}"],
            }
    rows: List[str] = []
    failures: List[str] = []
    for name in sorted(baseline_specs):
        specs = baseline_specs[name]
        record = latest.get(name)
        if record is None:
            rows.append(f"{name}: no history record (baseline only)")
            continue
        rev = (record.get("git_rev") or "unknown")[:12]
        rows.append(f"{name} @ {rev}:")
        metrics = record.get("metrics", {})
        for metric in sorted(specs):
            value = metrics.get(metric)
            if not isinstance(value, (int, float)):
                failures.append(f"{name}.{metric}: missing from latest record")
                rows.append(f"  {metric}: MISSING")
                continue
            text, failure = _check_spec(
                metric, float(value), specs[metric], gate_pct
            )
            rows.append("  " + text + ("  REGRESSION" if failure else ""))
            if failure:
                failures.append(f"{name}.{failure}")
    return {"rows": rows, "failures": failures}


# -- trajectory rendering (repro stats --compare history.jsonl) ------------


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a numeric series (empty-safe)."""
    finite = [v for v in values if isinstance(v, (int, float))]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in values:
        if not isinstance(v, (int, float)):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK[0])
        else:
            index = int((v - lo) / span * (len(_SPARK) - 1))
            chars.append(_SPARK[index])
    return "".join(chars)


def history_table(records: Sequence[dict], width: int = 24) -> str:
    """Per-metric trajectory table over a whole history, newest last.

    One block per bench name; each metric row shows first/last values,
    the overall relative change, and a sparkline of the trajectory
    (rightmost = newest, capped to the last *width* records).
    """
    by_name: Dict[str, List[dict]] = {}
    for record in records:
        name = record.get("name")
        if isinstance(name, str):
            by_name.setdefault(name, []).append(record)
    blocks = []
    for name in sorted(by_name):
        runs = by_name[name][-width:]
        revs = [(r.get("git_rev") or "?")[:7] for r in runs]
        blocks.append(
            f"bench {name}: {len(by_name[name])} runs "
            f"({revs[0]} .. {revs[-1]})"
        )
        metric_names = sorted(
            {m for r in runs for m in r.get("metrics", {})}
        )
        label_width = max((len(m) for m in metric_names), default=6)
        for metric in metric_names:
            series = [r.get("metrics", {}).get(metric) for r in runs]
            numeric = [v for v in series if isinstance(v, (int, float))]
            if not numeric:
                continue
            first, last = numeric[0], numeric[-1]
            change = (
                f"{(last - first) / abs(first):+.1%}" if first else "    -"
            )
            blocks.append(
                f"  {metric:<{label_width}}  {first:>12.6g} -> "
                f"{last:>12.6g}  {change:>8}  {sparkline(series)}"
            )
    return "\n".join(blocks) if blocks else "no ledger records"
