"""Hierarchical spans: who-called-what-and-for-how-long over the event stream.

A *span* is a named, timed region of execution with an id and a parent id;
together they form the tree a trace analyser (``repro stats``) or Perfetto
reconstructs.  Spans ride on the ordinary telemetry event stream as two
events::

    {"event": "span.begin", "name": ..., "span": <id>, "parent": <id|None>, ...}
    {"event": "span.end",   "name": ..., "span": <id>, "parent": ..., "seconds": ...}

so a span-aware trace stays a plain JSONL file every existing consumer can
read.  The ambient parent is tracked in a :mod:`contextvars` variable owned
by :mod:`repro.runtime.telemetry`, which also stamps every *other* emitted
event with the innermost span id — attribution comes for free.

Cross-process propagation: span ids embed the producing process id
(``"<pid-hex>.<n>"``), so ids minted in pool workers never collide with the
parent's.  The engine opens a ``job`` span per pool job, hands its id to
the worker, and the worker roots its local span stack there via
:func:`attached_to` — after the parent ingests the worker's events, the
trace holds one connected tree.

The disabled path is near-free: :func:`span` checks ``telemetry.enabled``
once and yields without minting ids, emitting events or touching the
context variable (proven by ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from typing import Optional

from ..runtime.telemetry import _SPAN, Telemetry, get_telemetry

_counter = itertools.count(1)


def new_span_id() -> str:
    """A process-unique span id (``"<pid-hex>.<n>"``).

    The pid prefix keeps ids from forked pool workers disjoint from the
    parent's even though the counter state is inherited by the fork.
    """
    return f"{os.getpid():x}.{next(_counter)}"


def current_span_id() -> Optional[str]:
    """Id of the innermost active span, or ``None`` outside any span."""
    return _SPAN.get()


@contextmanager
def attached_to(span_id: Optional[str]):
    """Root the ambient span context at *span_id* for a ``with`` block.

    Used by pool workers to parent their local spans under the engine-side
    ``job`` span whose id traveled with the job submission.  Passing
    ``None`` isolates the block from any inherited span context (a forked
    worker inherits the parent's context variable state).
    """
    token = _SPAN.set(span_id)
    try:
        yield
    finally:
        _SPAN.reset(token)


class SpanHandle:
    """An explicitly managed open span (see :func:`open_span`).

    For code whose begin and end do not bracket a single ``with`` block —
    the engine opens a pool job's span at submission and closes it when the
    future resolves, possibly rounds later.  Handle spans do *not* touch
    the ambient context variable; they exist to be passed across an
    asynchronous boundary.
    """

    __slots__ = ("name", "span_id", "parent_id", "_telemetry", "_start", "_fields", "closed")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str],
                 telemetry: Telemetry, fields: dict) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self._telemetry = telemetry
        self._fields = fields
        self._start = time.perf_counter()
        self.closed = False

    def close(self, **fields) -> None:
        """Emit the ``span.end`` event (idempotent)."""
        if self.closed:
            return
        self.closed = True
        merged = dict(self._fields, **fields)
        self._telemetry.emit(
            "span.end",
            name=self.name,
            span=self.span_id,
            parent=self.parent_id,
            seconds=round(time.perf_counter() - self._start, 6),
            **merged,
        )


def open_span(
    name: str,
    telemetry: Optional[Telemetry] = None,
    parent: Optional[str] = None,
    **fields,
) -> Optional[SpanHandle]:
    """Begin a span explicitly; returns ``None`` when telemetry is off.

    ``parent`` defaults to the ambient span.  The caller owns the handle
    and must :meth:`~SpanHandle.close` it on every path.
    """
    t = telemetry if telemetry is not None else get_telemetry()
    if not t.enabled:
        return None
    if parent is None:
        parent = _SPAN.get()
    span_id = new_span_id()
    t.emit("span.begin", name=name, span=span_id, parent=parent, **fields)
    return SpanHandle(name, span_id, parent, t, fields)


@contextmanager
def span(name: str, telemetry: Optional[Telemetry] = None, **fields):
    """Scope a span over a ``with`` block; yields the span id (or ``None``).

    Emits ``span.begin`` / ``span.end`` and installs the id as the ambient
    parent for anything emitted inside the block.  When the telemetry is
    disabled the block runs untouched.
    """
    t = telemetry if telemetry is not None else get_telemetry()
    if not t.enabled:
        yield None
        return
    parent = _SPAN.get()
    span_id = new_span_id()
    t.emit("span.begin", name=name, span=span_id, parent=parent, **fields)
    token = _SPAN.set(span_id)
    start = time.perf_counter()
    try:
        yield span_id
    finally:
        _SPAN.reset(token)
        t.emit(
            "span.end",
            name=name,
            span=span_id,
            parent=parent,
            seconds=round(time.perf_counter() - start, 6),
            **fields,
        )
