"""Live metric aggregation and Prometheus text exposition.

:mod:`repro.obs.metrics` instruments code with per-telemetry registries
whose snapshots ride the trace as ``metrics`` events; :mod:`repro.obs.stats`
merges them *after* a run ends.  This module closes the gap for long-running
processes (the ``repro serve`` daemon): a :class:`LiveRegistry` is a
process-wide, thread-safe aggregate that

- hosts **directly instrumented** series (the daemon's request-latency
  histograms, queue gauges, dedup counters) with per-label-set children —
  ``registry.counter("serve_requests_total", endpoint="/v1/jobs")``;
- **ingests** ``metrics`` events as they arrive from the telemetry sink
  (pool workers flush one snapshot per job; the engine flushes cumulative
  snapshots per batch) and folds them into running totals, so a scrape
  reflects every job finished so far instead of waiting for trace
  post-processing.

Ingest semantics.  A ``metrics`` event is a *cumulative snapshot* of one
source registry, attributed by its ``job`` tag (worker flushes) or untagged
(the host process's own registry).  Folding therefore computes the **delta**
against the previous snapshot from the same source and adds only that, with
Prometheus-style counter-reset detection: a snapshot whose count went
*backwards* means the source restarted (a re-executed job label reuses a
fresh worker telemetry), so the whole snapshot is folded as new.  Histogram
deltas reuse the bucket layout contract of
:func:`repro.obs.metrics.merge_histograms`.

The scrape side is :meth:`LiveRegistry.render_prometheus` — text exposition
format v0.0.4: ``# HELP``/``# TYPE`` lines, escaped label values, and
cumulative ``_bucket``/``_sum``/``_count`` histogram series whose ``+Inf``
bucket equals ``_count``.  :func:`validate_exposition` is a promtool-style
line-grammar checker used by the tests and the scrape smoke harness.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

#: Version of the ``/v1/stats`` live-snapshot payload.
LIVE_SCHEMA = 1

#: Default bounds for HTTP request latency (seconds).
REQUEST_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Sources tracked for delta-folding before the oldest are dropped.  A
#: dropped source that flushes again is treated as a counter reset (its
#: whole snapshot folds), which can only over-count, never lose data.
MAX_SOURCES = 1024

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(raw: str, prefix: str = "repro_") -> str:
    """A valid Prometheus metric name for a repro instrument name.

    ``sa.delta`` -> ``repro_sa_delta``; names already carrying the prefix
    (direct serve instrumentation) pass through unchanged.
    """
    name = _INVALID_CHARS.sub("_", raw)
    if not name.startswith(prefix):
        name = prefix + name
    if not _NAME_RE.match(name):  # pragma: no cover - prefix guarantees it
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, ``\\n``."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def escape_help(text: str) -> str:
    """Escape a HELP string: only ``\\`` and newline are special."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """A sample value in exposition syntax (``+Inf``/``-Inf``/``NaN``)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(items: _LabelItems, extra: Optional[List[Tuple[str, str]]] = None) -> str:
    pairs = list(items) + list(extra or [])
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class LiveCounter:
    """One labeled counter child (monotonic)."""

    __slots__ = ("labels", "value", "_lock")
    kind = "counter"

    def __init__(self, labels: _LabelItems, lock: threading.Lock) -> None:
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class LiveGauge:
    """One labeled gauge child (last write wins)."""

    __slots__ = ("labels", "value", "_lock")
    kind = "gauge"

    def __init__(self, labels: _LabelItems, lock: threading.Lock) -> None:
        self.labels = labels
        self.value: Optional[float] = None
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value = (self.value or 0.0) + amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class LiveHistogram:
    """One labeled fixed-bucket histogram child.

    Bucket ``counts[i]`` covers ``bounds[i-1] < v <= bounds[i]``; the last
    slot is the overflow bucket (rendered as ``+Inf``), exactly matching
    :class:`repro.obs.metrics.Histogram` so snapshots merge losslessly.
    """

    __slots__ = ("labels", "bounds", "counts", "count", "total", "_lock")
    kind = "histogram"

    def __init__(self, labels: _LabelItems, bounds: Sequence[float],
                 lock: threading.Lock) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram bounds must be sorted and non-empty: {bounds!r}"
            )
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._lock = lock

    def record(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_right(self.bounds, value)] += 1
            self.count += 1
            self.total += value

    def add_counts(self, bounds: Sequence[float], counts: Sequence[int],
                   count: int, total: float) -> None:
        """Fold a pre-bucketed delta in (ingest path)."""
        if tuple(float(b) for b in bounds) != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.count += count
            self.total += total

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.total,
            }


class _LiveMetric:
    """One metric family: kind, help text and its labeled children."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = tuple(float(b) for b in bounds) if bounds else None
        self.children: Dict[_LabelItems, object] = {}


class LiveRegistry:
    """Process-wide live metric aggregate with a Prometheus scrape surface.

    Thread-safe throughout: direct instruments are updated from the event
    loop and from engine worker threads; :meth:`ingest` is called from the
    telemetry sink (worker thread); :meth:`render_prometheus` /
    :meth:`snapshot` from HTTP handlers.
    """

    def __init__(self, max_sources: int = MAX_SOURCES) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _LiveMetric] = {}
        #: Last cumulative snapshot seen per (source tag, instrument name),
        #: for delta folding.  Ordered dict semantics via insertion order.
        self._sources: Dict[object, Dict[str, dict]] = {}
        self._max_sources = max(1, int(max_sources))
        self.ingested_events = 0

    # -- family / child management ----------------------------------------

    def _family(self, raw: str, kind: str, help_text: Optional[str],
                bounds: Optional[Sequence[float]] = None) -> _LiveMetric:
        name = metric_name(raw)
        with self._lock:
            family = self._metrics.get(name)
            if family is None:
                family = _LiveMetric(
                    name, kind, help_text or f"repro metric {raw}", bounds
                )
                self._metrics[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested {kind}"
                )
            return family

    def _child(self, family: _LiveMetric, labels: Dict[str, str]):
        for label in labels:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                if family.kind == "counter":
                    child = LiveCounter(key, self._lock)
                elif family.kind == "gauge":
                    child = LiveGauge(key, self._lock)
                else:
                    child = LiveHistogram(key, family.bounds, self._lock)
                family.children[key] = child
            return child

    def counter(self, name: str, help: Optional[str] = None, **labels) -> LiveCounter:
        return self._child(self._family(name, "counter", help), labels)

    def gauge(self, name: str, help: Optional[str] = None, **labels) -> LiveGauge:
        return self._child(self._family(name, "gauge", help), labels)

    def histogram(self, name: str, bounds: Sequence[float],
                  help: Optional[str] = None, **labels) -> LiveHistogram:
        family = self._family(name, "histogram", help, bounds)
        if family.bounds is None:  # registered earlier without bounds
            family.bounds = tuple(float(b) for b in bounds)
        return self._child(family, labels)

    # -- ingest ------------------------------------------------------------

    def ingest(self, event: dict) -> bool:
        """Fold one telemetry event into the aggregate, if it carries
        metrics.  Returns ``True`` when the event was a ``metrics`` event.

        Safe to install directly as (part of) a telemetry sink: non-metric
        events return immediately.
        """
        if event.get("event") != "metrics":
            return False
        snapshots = event.get("metrics")
        if not isinstance(snapshots, dict):
            return False
        source = event.get("job")
        labels = {}
        if isinstance(source, str):
            # Spec labels are "kind[digest12]"; the kind is the useful
            # cardinality-bounded series label, the digest is not.
            kind = source.split("[", 1)[0]
            if kind:
                labels["kind"] = kind
        previous = self._sources.get(source)
        if previous is None:
            previous = {}
            with self._lock:
                self._sources[source] = previous
                while len(self._sources) > self._max_sources:
                    oldest = next(iter(self._sources))
                    del self._sources[oldest]
        for name, snap in snapshots.items():
            if not isinstance(snap, dict):
                continue
            try:
                self._fold(name, snap, previous.get(name), labels)
            except (ValueError, KeyError, TypeError):
                # A malformed or bounds-mismatched snapshot must never
                # break the sink; skip the series and keep serving.
                continue
            previous[name] = snap
        self.ingested_events += 1
        return True

    def _fold(self, name: str, snap: dict, last: Optional[dict],
              labels: Dict[str, str]) -> None:
        kind = snap.get("kind")
        if kind == "counter":
            value = float(snap.get("value", 0.0))
            prior = float(last.get("value", 0.0)) if last else 0.0
            delta = value - prior if value >= prior else value  # reset
            if delta:
                self.counter(name, **labels).inc(delta)
        elif kind == "gauge":
            value = snap.get("value")
            if value is not None:
                self.gauge(name, **labels).set(float(value))
        elif kind == "histogram":
            bounds = snap["bounds"]
            counts = [int(c) for c in snap["counts"]]
            count = int(snap.get("count", sum(counts)))
            total = float(snap.get("sum", 0.0))
            if last and int(last.get("count", 0)) <= count and \
                    list(last.get("bounds", bounds)) == list(bounds):
                # Cumulative re-flush from the same source: fold the delta.
                lcounts = [int(c) for c in last["counts"]]
                counts = [a - b for a, b in zip(counts, lcounts)]
                count -= int(last.get("count", 0))
                total -= float(last.get("sum", 0.0))
                if any(c < 0 for c in counts):
                    # Mixed reset: fall back to folding the full snapshot.
                    counts = [int(c) for c in snap["counts"]]
                    count = int(snap.get("count", sum(counts)))
                    total = float(snap.get("sum", 0.0))
            if count:
                self.histogram(name, bounds, **labels).add_counts(
                    bounds, counts, count, total
                )

    # -- scrape surfaces ---------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every family and child (``/v1/stats``)."""
        with self._lock:
            families = [
                (family, list(family.children.items()))
                for family in self._metrics.values()
            ]
        out: Dict[str, dict] = {}
        for family, children in sorted(families, key=lambda f: f[0].name):
            series = []
            for key, child in sorted(children, key=lambda c: c[0]):
                row = child.snapshot()
                row["labels"] = dict(key)
                series.append(row)
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """The registry in text exposition format v0.0.4."""
        with self._lock:
            families = [
                (family, list(family.children.items()))
                for family in self._metrics.values()
            ]
        lines: List[str] = []
        for family, children in sorted(families, key=lambda f: f[0].name):
            if not children:
                continue
            name = family.name
            lines.append(f"# HELP {name} {escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in sorted(children, key=lambda c: c[0]):
                snap = child.snapshot()
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                        snap["bounds"] + [math.inf],
                        snap["counts"],
                    ):
                        cumulative += count
                        le = "+Inf" if math.isinf(bound) else format_value(bound)
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels(key, [('le', le)])} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{format_value(snap['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {snap['count']}"
                    )
                else:
                    value = snap.get("value")
                    if value is None:
                        continue
                    lines.append(
                        f"{name}{_render_labels(key)} {format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


# -- exposition grammar validation ----------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^ ]+)"
    r"(?:\s+(?P<ts>-?[0-9]+))?$"
)
_VALUE_RE = re.compile(r"^(?:[+-]?Inf|NaN|-?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)$")


def _parse_labels(body: str) -> Optional[Dict[str, str]]:
    """Parse a ``name="value",...`` label body; ``None`` on bad syntax."""
    labels: Dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', body[i:])
        if not match:
            return None
        name = match.group(1)
        i += match.end()
        value = []
        while i < n:
            ch = body[i]
            if ch == "\\":
                if i + 1 >= n or body[i + 1] not in ('\\', '"', "n"):
                    return None
                value.append({"\\": "\\", '"': '"', "n": "\n"}[body[i + 1]])
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                return None
            else:
                value.append(ch)
                i += 1
        else:
            return None
        labels[name] = "".join(value)
        if i < n:
            if body[i] != ",":
                return None
            i += 1
    return labels


def validate_exposition(text: str) -> List[str]:
    """Promtool-style grammar check of one exposition document.

    Checks, per line: comment syntax, sample syntax (metric name, label
    body, value token); per histogram child: bucket count monotonicity
    (cumulative buckets never decrease) and ``+Inf`` bucket == ``_count``;
    per family: samples only after a matching ``# TYPE``.  Returns a list
    of problems (empty = valid).  An empty document is valid.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    # (base name, labelset-minus-le) -> list of (le, cumulative count)
    buckets: Dict[Tuple[str, _LabelItems], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, _LabelItems], float] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    problems.append(f"line {lineno}: malformed {parts[1]} comment")
                elif parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        problems.append(f"line {lineno}: bad TYPE for {parts[2]}")
                    elif parts[2] in types:
                        problems.append(
                            f"line {lineno}: duplicate TYPE for {parts[2]}"
                        )
                    else:
                        types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group("name")
        label_body = match.group("labels")
        labels = _parse_labels(label_body) if label_body is not None else {}
        if labels is None:
            problems.append(f"line {lineno}: malformed labels: {line!r}")
            continue
        if not _VALUE_RE.match(match.group("value")):
            problems.append(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            )
            continue
        value = float(
            match.group("value")
            .replace("+Inf", "inf").replace("-Inf", "-inf").replace("NaN", "nan")
        )
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        declared = types.get(base) or types.get(name)
        if declared is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
            continue
        if declared == "histogram":
            other = _label_key({k: v for k, v in labels.items() if k != "le"})
            if name.endswith("_bucket"):
                le_raw = labels.get("le")
                if le_raw is None:
                    problems.append(f"line {lineno}: histogram bucket without le")
                    continue
                try:
                    le = float(le_raw.replace("+Inf", "inf"))
                except ValueError:
                    problems.append(f"line {lineno}: bad le value {le_raw!r}")
                    continue
                series = buckets.setdefault((base, other), [])
                if series:
                    last_le, last_count = series[-1]
                    if le <= last_le:
                        problems.append(
                            f"line {lineno}: bucket le={le_raw} out of order"
                        )
                    if value < last_count:
                        problems.append(
                            f"line {lineno}: cumulative bucket count decreased "
                            f"({value} < {last_count})"
                        )
                series.append((le, value))
            elif name.endswith("_count"):
                counts[(base, other)] = value
    for key, series in buckets.items():
        if not series:
            continue
        if not math.isinf(series[-1][0]):
            problems.append(f"histogram {key[0]}: missing +Inf bucket")
            continue
        count = counts.get(key)
        if count is not None and series[-1][1] != count:
            problems.append(
                f"histogram {key[0]}: +Inf bucket ({series[-1][1]}) != "
                f"_count ({count})"
            )
    return problems
