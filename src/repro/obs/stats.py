"""The ``repro stats`` report: from a raw trace to where-the-time-went.

:func:`stats_summary` distills an event stream into one JSON-ready dict
(span aggregates, SA acceptance trajectory, cache and job figures, merged
metric histograms); :func:`render_stats` turns that dict into the human
report.  Both operate on already-loaded events so the CLI, tests and the
bench writers share one code path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from .metrics import merge_histograms
from .trace import SpanTree, build_span_tree


def _span_aggregates(tree: SpanTree) -> List[dict]:
    """Per-name span totals, sorted by self-time (descending)."""
    by_name: Dict[str, dict] = {}
    for node in tree.walk():
        row = by_name.setdefault(
            node.name,
            {"name": node.name, "count": 0, "total_s": 0.0, "self_s": 0.0},
        )
        row["count"] += 1
        row["total_s"] += node.seconds or 0.0
        row["self_s"] += node.self_seconds
    rows = sorted(by_name.values(), key=lambda r: r["self_s"], reverse=True)
    for row in rows:
        row["total_s"] = round(row["total_s"], 6)
        row["self_s"] = round(row["self_s"], 6)
        row["mean_s"] = round(row["total_s"] / row["count"], 6) if row["count"] else 0.0
    return rows


def _phase_breakdown(tree: SpanTree) -> List[dict]:
    """Share of the root span's wall time taken by each top-level child."""
    if not tree.roots:
        return []
    root = tree.roots[0]
    total = root.seconds or 0.0
    rows = []
    accounted = 0.0
    for child in root.children:
        seconds = child.seconds or 0.0
        accounted += seconds
        rows.append(
            {
                "phase": child.name,
                "seconds": round(seconds, 6),
                "fraction": round(seconds / total, 4) if total else 0.0,
            }
        )
    if total:
        rows.append(
            {
                "phase": "(untracked)",
                "seconds": round(max(0.0, total - accounted), 6),
                "fraction": round(max(0.0, total - accounted) / total, 4),
            }
        )
    return rows


def _acceptance_curve(events: List[dict], max_points: int = 20) -> List[dict]:
    """The SA acceptance trajectory, downsampled to ``max_points`` steps."""
    steps = [e for e in events if e.get("event") == "sa.step"]
    if not steps:
        return []
    stride = max(1, len(steps) // max_points)
    curve = [
        {
            "temperature": round(float(e.get("temperature", 0.0)), 6),
            "acceptance": round(float(e.get("acceptance", 0.0)), 4),
            "cost": round(float(e.get("cost", 0.0)), 6),
        }
        for e in steps[::stride]
    ]
    last = steps[-1]
    if curve and curve[-1]["temperature"] != round(float(last.get("temperature", 0.0)), 6):
        curve.append(
            {
                "temperature": round(float(last.get("temperature", 0.0)), 6),
                "acceptance": round(float(last.get("acceptance", 0.0)), 4),
                "cost": round(float(last.get("cost", 0.0)), 6),
            }
        )
    return curve


def _merged_metrics(events: List[dict]) -> Dict[str, dict]:
    """Merge per-job ``metrics`` snapshots into run-wide figures.

    A worker may flush several times; only its *last* snapshot per
    attribution tag counts (snapshots are cumulative), keyed by the
    ``job`` tag the engine stamps on ingested events.
    """
    last_per_tag: "OrderedDict[object, dict]" = OrderedDict()
    for event in events:
        if event.get("event") == "metrics" and isinstance(event.get("metrics"), dict):
            last_per_tag[event.get("job")] = event["metrics"]
    merged: Dict[str, dict] = {}
    names = sorted({name for snap in last_per_tag.values() for name in snap})
    for name in names:
        snaps = [snap[name] for snap in last_per_tag.values() if name in snap]
        kinds = {s.get("kind") for s in snaps}
        if kinds == {"counter"}:
            merged[name] = {
                "kind": "counter",
                "value": sum(s.get("value", 0) for s in snaps),
            }
        elif kinds == {"histogram"}:
            try:
                combined = merge_histograms(snaps)
            except (ValueError, KeyError):
                combined = None
            if combined is not None:
                combined["mean"] = (
                    round(combined["sum"] / combined["count"], 6)
                    if combined["count"]
                    else None
                )
                merged[name] = combined
        elif kinds == {"gauge"}:
            values = [s.get("value") for s in snaps if s.get("value") is not None]
            merged[name] = {
                "kind": "gauge",
                "value": values[-1] if values else None,
                "min": min((s["min"] for s in snaps if s.get("min") is not None),
                           default=None),
                "max": max((s["max"] for s in snaps if s.get("max") is not None),
                           default=None),
            }
    return merged


def stats_summary(events: Iterable[dict]) -> dict:
    """Everything ``repro stats`` knows about a trace, as one dict."""
    events = [e for e in events if isinstance(e, dict)]
    tree = build_span_tree(events)
    meta = next((e for e in events if e.get("event") == "trace.meta"), None)

    cached = sum(1 for e in events if e.get("event") == "job.cached")
    done = [e for e in events if e.get("event") == "job.done"]
    failed = sum(1 for e in events if e.get("event") == "job.failed")
    retries = sum(1 for e in events if e.get("event") == "job.error")
    invalid = sum(1 for e in events if e.get("event") == "cache.invalid")
    puts = [e for e in events if e.get("event") == "cache.put"]
    waits = [e.get("queue_wait") for e in done if isinstance(e.get("queue_wait"), (int, float))]

    sa_ends = [e for e in events if e.get("event") == "sa.end"]
    proposed = sum(int(e.get("proposed", 0)) for e in sa_ends)
    accepted = sum(int(e.get("accepted", 0)) for e in sa_ends)
    sa_seconds = sum(
        float(e.get("seconds", 0.0))
        for e in sa_ends
        if isinstance(e.get("seconds"), (int, float))
    )

    kernel = [e for e in events if e.get("event") == "kernel.stats"]

    summary = {
        "meta": {
            k: v for k, v in (meta or {}).items() if k not in ("event", "t", "span")
        },
        "events": len(events),
        "spans": {
            "count": len(tree.nodes),
            "roots": len(tree.roots),
            "orphans": len(tree.orphans),
            "unclosed": len(tree.unclosed),
            "root_seconds": round(tree.roots[0].seconds, 6)
            if tree.roots and tree.roots[0].seconds is not None
            else None,
            "by_name": _span_aggregates(tree),
        },
        "phases": _phase_breakdown(tree),
        "jobs": {
            "done": len(done),
            "cached": cached,
            "failed": failed,
            "retries": retries,
            "mean_seconds": round(
                sum(float(e.get("seconds", 0.0)) for e in done) / len(done), 6
            )
            if done
            else None,
            "mean_queue_wait": round(sum(waits) / len(waits), 6) if waits else None,
            "max_queue_wait": round(max(waits), 6) if waits else None,
        },
        "cache": {
            "hits": cached,
            "misses": len(done),
            "invalid": invalid,
            "writes": len(puts),
            "bytes_written": sum(int(e.get("bytes", 0)) for e in puts),
            "hit_ratio": round(cached / (cached + len(done)), 4)
            if (cached + len(done))
            else None,
        },
        "sa": {
            "runs": len(sa_ends),
            "proposed": proposed,
            "accepted": accepted,
            "acceptance_ratio": round(accepted / proposed, 4) if proposed else None,
            "moves_per_s": round(proposed / sa_seconds, 1) if sa_seconds else None,
            "best_cost": min(
                (float(e.get("best_cost")) for e in sa_ends
                 if isinstance(e.get("best_cost"), (int, float))),
                default=None,
            ),
            "curve": _acceptance_curve(events),
        },
        "kernel": {
            "runs": len(kernel),
            "us_per_move": round(
                sum(float(e.get("us_per_move", 0.0)) for e in kernel) / len(kernel), 3
            )
            if kernel
            else None,
            "resyncs": sum(int(e.get("resyncs", 0)) for e in kernel),
        },
        "metrics": _merged_metrics(events),
    }
    return summary


def _fmt(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}{suffix}"
    return f"{value}{suffix}"


def render_stats(summary: dict, top: int = 10) -> str:
    """The human report for one :func:`stats_summary` result."""
    lines: List[str] = []
    meta = summary.get("meta") or {}
    header = "trace"
    if meta:
        bits = [str(meta.get(k)) for k in ("command", "workload") if meta.get(k)]
        if bits:
            header = f"trace: repro {' '.join(bits)}"
        extras = [
            f"{k}={meta[k]}" for k in ("seed", "jobs", "backend", "schema") if k in meta
        ]
        if extras:
            header += f"  ({', '.join(extras)})"
    lines.append(header)

    spans = summary["spans"]
    lines.append(
        f"events: {summary['events']}  spans: {spans['count']} "
        f"(roots={spans['roots']}, orphans={spans['orphans']}, "
        f"unclosed={spans['unclosed']})"
    )
    if spans["root_seconds"] is not None:
        lines.append(f"wall time (root span): {spans['root_seconds']:.3f} s")

    if spans["by_name"]:
        lines.append("")
        lines.append(f"top spans by self-time (of {len(spans['by_name'])}):")
        width = max(len(r["name"]) for r in spans["by_name"][:top])
        lines.append(f"  {'span':<{width}}  {'count':>5}  {'self(s)':>9}  {'total(s)':>9}  {'mean(s)':>9}")
        for row in spans["by_name"][:top]:
            lines.append(
                f"  {row['name']:<{width}}  {row['count']:>5}  "
                f"{row['self_s']:>9.4f}  {row['total_s']:>9.4f}  {row['mean_s']:>9.4f}"
            )

    if summary["phases"]:
        lines.append("")
        lines.append("phase breakdown (children of the root span):")
        width = max(len(r["phase"]) for r in summary["phases"])
        for row in summary["phases"]:
            bar = "#" * int(round(row["fraction"] * 30))
            lines.append(
                f"  {row['phase']:<{width}}  {row['seconds']:>9.4f} s  "
                f"{row['fraction']:>6.1%}  {bar}"
            )

    jobs = summary["jobs"]
    if jobs["done"] or jobs["cached"] or jobs["failed"]:
        lines.append("")
        lines.append(
            f"jobs: done={jobs['done']} cached={jobs['cached']} "
            f"failed={jobs['failed']} retries={jobs['retries']}  "
            f"mean={_fmt(jobs['mean_seconds'], ' s')}  "
            f"queue wait mean={_fmt(jobs['mean_queue_wait'], ' s')} "
            f"max={_fmt(jobs['max_queue_wait'], ' s')}"
        )

    cache = summary["cache"]
    if cache["hits"] or cache["misses"] or cache["writes"] or cache["invalid"]:
        lines.append(
            f"cache: hits={cache['hits']} misses={cache['misses']} "
            f"invalid={cache['invalid']} writes={cache['writes']} "
            f"({cache['bytes_written']} B)  hit ratio={_fmt(cache['hit_ratio'])}"
        )

    sa = summary["sa"]
    if sa["runs"]:
        lines.append("")
        lines.append(
            f"annealer: runs={sa['runs']} proposed={sa['proposed']} "
            f"accepted={sa['accepted']} "
            f"(ratio={_fmt(sa['acceptance_ratio'])})  "
            f"moves/s={_fmt(sa['moves_per_s'])}  best cost={_fmt(sa['best_cost'])}"
        )
        if sa["curve"]:
            lines.append("acceptance curve (temperature -> acceptance):")
            for point in sa["curve"]:
                bar = "*" * int(round(point["acceptance"] * 30))
                lines.append(
                    f"  T={point['temperature']:<10.4g} "
                    f"acc={point['acceptance']:>6.1%}  {bar}"
                )

    kernel = summary["kernel"]
    if kernel["runs"]:
        lines.append(
            f"kernel: runs={kernel['runs']} "
            f"us/move={_fmt(kernel['us_per_move'])} resyncs={kernel['resyncs']}"
        )

    histograms = {
        name: snap
        for name, snap in (summary.get("metrics") or {}).items()
        if snap.get("kind") == "histogram" and snap.get("count")
    }
    if histograms:
        lines.append("")
        lines.append("metric histograms (merged across jobs):")
        for name, snap in sorted(histograms.items()):
            lines.append(
                f"  {name}: n={snap['count']} mean={_fmt(snap.get('mean'))} "
                f"min={_fmt(snap.get('min'))} max={_fmt(snap.get('max'))}"
            )
    return "\n".join(lines)
