"""Trace loading, span-tree reconstruction and Chrome trace export.

A trace is a JSONL file of telemetry events (see :mod:`repro.obs.schema`).
This module turns the flat stream back into structure:

- :func:`load_trace` — parse the file, tolerating blank lines and
  reporting (not raising on) malformed ones;
- :func:`build_span_tree` — pair ``span.begin`` / ``span.end`` events into
  :class:`SpanNode` objects linked parent→children, and attribute every
  non-span event to its enclosing node;
- :func:`check_spans` — structural invariants of the tree (single root,
  no orphans, no unclosed spans) as a ``VerificationReport``, the second
  half of ``repro check-trace``;
- :func:`to_chrome` — export to the Chrome ``trace_event`` JSON format
  that Perfetto and ``chrome://tracing`` load directly.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple


def load_trace(path) -> Tuple[List[dict], List[str]]:
    """Parse a JSONL trace file.

    Returns ``(events, problems)`` — malformed lines become messages in
    *problems* rather than exceptions, so a trace truncated by a crash is
    still analysable up to the cut.
    """
    events: List[dict] = []
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: not valid JSON ({exc})")
                continue
            if not isinstance(event, dict):
                problems.append(f"line {lineno}: not a JSON object")
                continue
            events.append(event)
    return events, problems


class SpanNode:
    """One reconstructed span: timing, hierarchy and attributed events."""

    __slots__ = (
        "span_id", "name", "parent_id", "begin_t", "end_t", "seconds",
        "fields", "parent", "children", "events",
    )

    def __init__(self, span_id: str, name: str, parent_id: Optional[str]) -> None:
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.begin_t: Optional[float] = None
        self.end_t: Optional[float] = None
        self.seconds: Optional[float] = None
        self.fields: dict = {}
        self.parent: Optional["SpanNode"] = None
        self.children: List["SpanNode"] = []
        self.events: List[dict] = []

    @property
    def closed(self) -> bool:
        return self.seconds is not None

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this span minus its direct children."""
        total = self.seconds or 0.0
        return max(0.0, total - sum(child.seconds or 0.0 for child in self.children))

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanNode({self.name!r}, span={self.span_id!r}, children={len(self.children)})"


_SPAN_META_FIELDS = ("event", "t", "name", "span", "parent", "seconds")


class SpanTree:
    """The reconstructed forest plus everything that didn't fit in it."""

    def __init__(self) -> None:
        self.nodes: Dict[str, SpanNode] = {}
        self.roots: List[SpanNode] = []
        #: Spans whose declared parent never appeared in the trace.
        self.orphans: List[SpanNode] = []
        #: ``span.end`` events with no matching ``span.begin``.
        self.unmatched_ends: List[dict] = []
        #: Duplicate ``span.begin`` ids (second and later occurrences).
        self.duplicate_ids: List[str] = []
        #: Non-span events carrying no / an unknown span id.
        self.unattributed: List[dict] = []

    def walk(self) -> Iterable[SpanNode]:
        for root in self.roots:
            yield from root.walk()
        for orphan in self.orphans:
            yield from orphan.walk()

    @property
    def unclosed(self) -> List[SpanNode]:
        return [node for node in self.nodes.values() if not node.closed]


def build_span_tree(events: Iterable[dict]) -> SpanTree:
    """Reconstruct the span forest from a flat event sequence.

    Tolerant by construction: spans with a missing parent are collected as
    ``orphans`` (still with their own subtrees), unmatched ``span.end``
    events and duplicate ids are recorded for :func:`check_spans` to
    report, and every non-span event is attached to the node named by its
    ``span`` stamp when that node exists.
    """
    tree = SpanTree()
    plain: List[dict] = []
    for event in events:
        if not isinstance(event, dict):
            continue
        kind = event.get("event")
        span_id = event.get("span")
        if kind == "span.begin" and isinstance(span_id, str):
            if span_id in tree.nodes:
                tree.duplicate_ids.append(span_id)
                continue
            node = SpanNode(span_id, str(event.get("name", "?")), event.get("parent"))
            node.begin_t = event.get("t")
            node.fields = {
                k: v for k, v in event.items() if k not in _SPAN_META_FIELDS
            }
            tree.nodes[span_id] = node
        elif kind == "span.end" and isinstance(span_id, str):
            node = tree.nodes.get(span_id)
            if node is None:
                tree.unmatched_ends.append(event)
                continue
            node.end_t = event.get("t")
            node.seconds = event.get("seconds")
            node.fields.update(
                {k: v for k, v in event.items() if k not in _SPAN_META_FIELDS}
            )
        else:
            plain.append(event)
    # Link the hierarchy once all begins are known (ends may arrive rounds
    # after begins when the engine closes job spans asynchronously).
    for node in tree.nodes.values():
        if node.parent_id is None:
            tree.roots.append(node)
        else:
            parent = tree.nodes.get(node.parent_id)
            if parent is None:
                tree.orphans.append(node)
            else:
                node.parent = parent
                parent.children.append(node)
    for bucket in (tree.roots, tree.orphans):
        bucket.sort(key=lambda n: (n.begin_t is None, n.begin_t or 0.0))
    for node in tree.nodes.values():
        node.children.sort(key=lambda n: (n.begin_t is None, n.begin_t or 0.0))
    # Attribute plain events to their enclosing span.
    for event in plain:
        span_id = event.get("span")
        node = tree.nodes.get(span_id) if isinstance(span_id, str) else None
        if node is None:
            tree.unattributed.append(event)
        else:
            node.events.append(event)
    return tree


def check_spans(tree_or_events, subject: str = "trace"):
    """Structural invariants of the span tree as a ``VerificationReport``.

    Errors: orphaned spans, ``span.end`` without a begin, duplicate span
    ids, unclosed spans, and — for a trace that has spans at all —
    multiple roots (a healthy CLI run produces exactly one rooted tree).
    A trace with *no* spans gets a warning, not an error: pre-obs traces
    and bare library use are legal.
    """
    from ..verify.diagnostics import VerificationReport

    tree = (
        tree_or_events
        if isinstance(tree_or_events, SpanTree)
        else build_span_tree(tree_or_events)
    )
    report = VerificationReport(subject=subject)
    if not tree.nodes:
        report.warning("span.none", "trace contains no spans")
        return report
    for node in tree.orphans:
        report.error(
            "span.orphan",
            f"span {node.span_id} ({node.name}) references missing parent "
            f"{node.parent_id}",
        )
    for event in tree.unmatched_ends:
        report.error(
            "span.end-without-begin",
            f"span.end for unknown span {event.get('span')} "
            f"({event.get('name', '?')})",
        )
    for span_id in tree.duplicate_ids:
        report.error("span.duplicate-id", f"span id {span_id} began twice")
    for node in tree.unclosed:
        report.error(
            "span.unclosed",
            f"span {node.span_id} ({node.name}) never ended",
        )
    if len(tree.roots) > 1:
        names = ", ".join(f"{n.name}({n.span_id})" for n in tree.roots[:6])
        report.error(
            "span.multiple-roots",
            f"expected one rooted span tree, found {len(tree.roots)} roots: {names}",
        )
    if report.ok:
        report.info(
            "span.tree",
            f"{len(tree.nodes)} spans in a single rooted tree",
        )
    return report


def to_chrome(events: Iterable[dict]) -> dict:
    """Export a trace to Chrome ``trace_event`` JSON (Perfetto-loadable).

    Closed spans become ``"X"`` (complete) events with microsecond
    timestamps; ``metrics`` snapshots become ``"C"`` (counter) samples for
    the scalar instruments.  Worker events are laid out on one thread row
    per ``job`` tag so parallel jobs render as parallel tracks.
    """
    events = [e for e in events if isinstance(e, dict)]
    tids: Dict[str, int] = {"main": 0}

    def tid_for(event: dict) -> int:
        job = event.get("job")
        key = job if isinstance(job, str) else "main"
        if key not in tids:
            tids[key] = len(tids)
        return tids[key]

    chrome: List[dict] = []
    tree = build_span_tree(events)
    for node in tree.nodes.values():
        if not node.closed or node.begin_t is None:
            continue
        chrome.append(
            {
                "name": node.name,
                "ph": "X",
                "ts": round(node.begin_t * 1e6, 1),
                "dur": round((node.seconds or 0.0) * 1e6, 1),
                "pid": 1,
                "tid": tid_for(node.fields),
                "args": {"span": node.span_id, **node.fields},
            }
        )
    for event in events:
        if event.get("event") != "metrics":
            continue
        ts = round(float(event.get("t", 0.0)) * 1e6, 1)
        for name, snap in sorted(event.get("metrics", {}).items()):
            if not isinstance(snap, dict) or snap.get("kind") not in ("counter", "gauge"):
                continue
            value = snap.get("value")
            if not isinstance(value, (int, float)):
                continue
            chrome.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": ts,
                    "pid": 1,
                    "tid": tid_for(event),
                    "args": {"value": value},
                }
            )
    thread_meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": label},
        }
        for label, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return {
        "traceEvents": thread_meta + sorted(chrome, key=lambda e: e["ts"]),
        "displayTimeUnit": "ms",
    }


def write_chrome(events: Iterable[dict], path) -> dict:
    """Serialize :func:`to_chrome` output to *path*; returns the document."""
    document = to_chrome(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document
