"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric construction (negative sizes, empty grids, ...)."""


class PackageModelError(ReproError):
    """Inconsistent package model (duplicate nets, bad finger counts, ...)."""


class AssignmentError(ReproError):
    """An assignment algorithm was given inconsistent inputs."""


class LegalityError(ReproError):
    """An assignment violates the monotonic routing rule."""


class RoutingError(ReproError):
    """The monotonic router could not realize a (supposedly legal) order."""


class PowerModelError(ReproError):
    """Invalid power-grid configuration (no power pads, bad grid size, ...)."""


class ExchangeError(ReproError):
    """The finger/pad exchange step received an invalid configuration."""


class CircuitSpecError(ReproError):
    """A test-circuit specification is malformed."""


class SerializationError(ReproError):
    """A design could not be written to or read from disk."""
