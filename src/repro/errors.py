"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric construction (negative sizes, empty grids, ...)."""


class PackageModelError(ReproError):
    """Inconsistent package model (duplicate nets, bad finger counts, ...)."""


class AssignmentError(ReproError):
    """An assignment algorithm was given inconsistent inputs."""


class LegalityError(ReproError):
    """An assignment violates the monotonic routing rule."""


class RoutingError(ReproError):
    """The monotonic router could not realize a (supposedly legal) order."""


class PowerModelError(ReproError):
    """Invalid power-grid configuration (no power pads, bad grid size, ...)."""


class ExchangeError(ReproError):
    """The finger/pad exchange step received an invalid configuration."""


class CircuitSpecError(ReproError):
    """A test-circuit specification is malformed."""


class SerializationError(ReproError):
    """A design could not be written to or read from disk."""


class NonFiniteCostError(ExchangeError):
    """An exchange cost evaluated to NaN/inf — the state is untrustworthy."""


class CacheIntegrityError(ReproError):
    """A cache entry failed its digest or schema validation."""


class FlowError(ReproError):
    """A co-design flow result was used in a way its data cannot support."""


class JournalError(ReproError):
    """The job journal could not be read or written."""


class JournalCorruptionError(JournalError):
    """A journal record *before* the final line failed to parse.

    A torn final line is the expected signature of a crash mid-append and
    is tolerated (dropped and counted); garbage in the interior means the
    file was damaged by something other than a crash and replay refuses
    to guess which half of the history to trust.
    """


class CheckpointIntegrityError(ReproError):
    """An SA checkpoint failed its digest, schema, or run-key validation."""


class VerificationError(ReproError):
    """One or more runtime invariants failed (see ``.diagnostics``)."""

    def __init__(self, message: str, diagnostics=None) -> None:
        super().__init__(message)
        #: The :class:`repro.verify.Diagnostic` records behind the failure.
        self.diagnostics = list(diagnostics or [])


#: Machine-readable failure classes, in precedence order: the first
#: matching entry classifies an exception for telemetry and triage.
ERROR_TAXONOMY = (
    ("verification", VerificationError),
    ("cache", CacheIntegrityError),
    ("journal", JournalError),
    ("checkpoint", CheckpointIntegrityError),
    ("nonfinite", NonFiniteCostError),
    ("legality", LegalityError),
    ("assignment", AssignmentError),
    ("routing", RoutingError),
    ("exchange", ExchangeError),
    ("power", PowerModelError),
    ("package", PackageModelError),
    ("circuit", CircuitSpecError),
    ("geometry", GeometryError),
    ("serialization", SerializationError),
    ("flow", FlowError),
    ("repro", ReproError),
)


def classify_error(exc: BaseException) -> str:
    """Map an exception to its taxonomy class.

    Library errors resolve to their :data:`ERROR_TAXONOMY` entry; common
    runtime failures get stable names of their own; anything else is
    ``"unknown"``.  Control-flow exceptions (``KeyboardInterrupt``,
    ``SystemExit``) are deliberately not classified — callers must re-raise
    them, never record them as job failures.
    """
    for name, error_type in ERROR_TAXONOMY:
        if isinstance(exc, error_type):
            return name
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, MemoryError):
        return "resource"
    if isinstance(exc, (OSError, IOError)):
        return "os"
    if isinstance(exc, (TypeError, ValueError, KeyError, AttributeError)):
        return "contract"
    return "unknown"
