"""Finger/pad assignment algorithms: random baseline, IFA and DFA."""

from .base import Assigner, Assignment
from .dfa import DFAAssigner
from .exhaustive import (
    ExhaustiveAssigner,
    exhaustive_best_assignment,
    interleaving_count,
    iter_legal_orders,
)
from .ifa import IFAAssigner
from .partition import (
    Partition,
    PartitionSpec,
    partition_ring,
    partition_to_rows,
)
from .legality import (
    check_legal,
    exchange_range,
    is_legal,
    row_violations,
    swap_is_legal,
)
from .random_assign import BestOfRandomAssigner, RandomAssigner, best_of_random
from .staged import assign_design, assign_quadrant

__all__ = [
    "Assigner",
    "Assignment",
    "assign_design",
    "assign_quadrant",
    "BestOfRandomAssigner",
    "DFAAssigner",
    "ExhaustiveAssigner",
    "IFAAssigner",
    "Partition",
    "PartitionSpec",
    "partition_ring",
    "partition_to_rows",
    "exhaustive_best_assignment",
    "interleaving_count",
    "iter_legal_orders",
    "RandomAssigner",
    "best_of_random",
    "check_legal",
    "exchange_range",
    "is_legal",
    "row_violations",
    "swap_is_legal",
]
