"""Exhaustive optimal assignment for small quadrants.

Every monotonic-legal finger order is an interleaving of the bump rows'
sequences, so small quadrants can be solved *exactly* by enumerating the
multinomial of interleavings.  This is exponential — the paper's 12-net
example already has 27,720 legal orders — but invaluable as ground truth:
it quantifies how far IFA/DFA sit from the true optimum
(``benchmarks/bench_optimality.py``) and anchors property tests.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional

from ..errors import AssignmentError
from ..package import Quadrant
from .base import Assigner, Assignment

#: Refuse enumerations beyond this many interleavings.
DEFAULT_LIMIT = 2_000_000


def interleaving_count(quadrant: Quadrant) -> int:
    """Number of monotonic-legal orders: the multinomial coefficient."""
    total = quadrant.net_count
    count = math.factorial(total)
    for row in range(1, quadrant.row_count + 1):
        count //= math.factorial(quadrant.bumps.row_size(row))
    return count


def iter_legal_orders(quadrant: Quadrant) -> Iterator[List[int]]:
    """Yield every monotonic-legal finger order of *quadrant*."""
    rows = [
        quadrant.row_nets(row) for row in range(1, quadrant.row_count + 1)
    ]
    indices = [0] * len(rows)
    total = quadrant.net_count
    order: List[int] = []

    def backtrack() -> Iterator[List[int]]:
        if len(order) == total:
            yield list(order)
            return
        for row_index, row in enumerate(rows):
            if indices[row_index] < len(row):
                order.append(row[indices[row_index]])
                indices[row_index] += 1
                yield from backtrack()
                indices[row_index] -= 1
                order.pop()

    return backtrack()


def exhaustive_best_assignment(
    quadrant: Quadrant,
    objective: Callable[[Assignment], float],
    limit: int = DEFAULT_LIMIT,
) -> Assignment:
    """The legal assignment minimizing *objective*, by full enumeration.

    Raises :class:`AssignmentError` when the search space exceeds *limit*
    (use IFA/DFA/SA there — that is the paper's point).
    """
    count = interleaving_count(quadrant)
    if count > limit:
        raise AssignmentError(
            f"{count} legal orders exceed the exhaustive limit {limit}"
        )
    best: Optional[Assignment] = None
    best_score: Optional[float] = None
    for order in iter_legal_orders(quadrant):
        candidate = Assignment(quadrant, order)
        score = objective(candidate)
        if best_score is None or score < best_score:
            best, best_score = candidate, score
    assert best is not None
    return best


class ExhaustiveAssigner(Assigner):
    """Exact minimum-density assigner for small quadrants (ground truth)."""

    name = "Exhaustive"

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        self.limit = limit

    def assign(self, quadrant: Quadrant, seed: Optional[int] = None) -> Assignment:
        del seed  # deterministic
        from ..routing.density import max_density

        return exhaustive_best_assignment(
            quadrant, max_density, limit=self.limit
        )
