"""Monotonic-legality checking.

The monotonic routing rule of [10] (adopted by the paper, section 3.1) fixes
each net's via at the bottom-left corner of its bump ball and demands that
the finger order agree with the via order on every horizontal line: for two
nets with balls in the same bump row, the one whose ball is further left must
also own the further-left finger.  An assignment with this property always
admits a legal (detour-free) monotonic routing; one without it never does.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import LegalityError
from .base import Assignment


def row_violations(assignment: Assignment) -> List[Tuple[int, int, int]]:
    """All monotonic-rule violations of *assignment*.

    Returns a list of ``(row, net_left, net_right)`` triples where
    ``net_left``'s ball is left of ``net_right``'s in ``row`` but its finger
    is to the right.  An empty list means the assignment is legal.
    """
    quadrant = assignment.quadrant
    violations = []
    for row in range(1, quadrant.row_count + 1):
        nets = quadrant.row_nets(row)
        for left, right in zip(nets, nets[1:]):
            if assignment.slot_of(left) > assignment.slot_of(right):
                violations.append((row, left, right))
    return violations


def is_legal(assignment: Assignment) -> bool:
    """True when *assignment* satisfies the monotonic routing rule."""
    return not row_violations(assignment)


def check_legal(assignment: Assignment) -> None:
    """Raise :class:`LegalityError` when *assignment* is illegal."""
    violations = row_violations(assignment)
    if violations:
        row, left, right = violations[0]
        raise LegalityError(
            f"monotonic rule violated on row {row}: net {left} (ball left of "
            f"net {right}) sits on finger {assignment.slot_of(left)} > "
            f"{assignment.slot_of(right)}; {len(violations)} violation(s) total"
        )


def swap_is_legal(assignment: Assignment, slot_a: int, slot_b: int) -> bool:
    """Would exchanging two *adjacent* slots keep the assignment legal?

    This is the paper's range constraint specialized to the adjacent swaps
    of the exchange method (Fig. 14): swapping neighbouring fingers is legal
    exactly when the two nets' balls lie in different bump rows, because only
    same-row nets have a mutual order constraint.
    """
    if abs(slot_a - slot_b) != 1:
        raise LegalityError("swap_is_legal only reasons about adjacent slots")
    quadrant = assignment.quadrant
    net_a = assignment.net_at(slot_a)
    net_b = assignment.net_at(slot_b)
    return quadrant.ball_row(net_a) != quadrant.ball_row(net_b)


def exchange_range(assignment: Assignment, net_id: int) -> Tuple[int, int]:
    """The paper's range constraint: slots net *net_id* may legally occupy.

    The net may move anywhere strictly between the fingers of its same-row
    neighbours (the balls immediately left and right of its own ball).  In
    Fig. 5(B)'s example, net 6 at ``F_5`` may move between ``F_3`` and
    ``F_7`` exclusive — i.e. slots 3..7 with the boundaries excluded.
    Returns the inclusive slot range ``(lo, hi)``.
    """
    quadrant = assignment.quadrant
    row = quadrant.ball_row(net_id)
    row_nets = quadrant.row_nets(row)
    index = row_nets.index(net_id)
    lo = 1
    hi = assignment.slot_count
    if index > 0:
        lo = assignment.slot_of(row_nets[index - 1]) + 1
    if index < len(row_nets) - 1:
        hi = assignment.slot_of(row_nets[index + 1]) - 1
    return (lo, hi)
