"""Order-statistic free-slot index (Fenwick / binary indexed tree).

DFA's inner operation is "take the (EN+1)-th unassigned finger slot from
the left, after a minimum index, leaving room for the rest of the row".
A naive scan makes every query O(n) and the whole DFA pass O(n^2); this
Fenwick tree answers prefix-count and k-th-free queries in O(log n),
restoring the paper's stated O(n) (up to the log factor) — measurable in
``benchmarks/bench_scaling.py``.
"""

from __future__ import annotations

from typing import List

from ..errors import AssignmentError


class FreeSlotIndex:
    """Tracks which of ``n`` slots are free, with order-statistic queries."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise AssignmentError(f"index needs size >= 1, got {size}")
        self.size = size
        self._free_count = size
        self._taken = [False] * size
        # Fenwick tree over "free" indicators, 1-based internally.
        self._tree: List[int] = [0] * (size + 1)
        for position in range(1, size + 1):
            self._tree[position] += 1
            parent = position + (position & -position)
            if parent <= size:
                self._tree[parent] += self._tree[position]

    # -- queries -----------------------------------------------------------------

    @property
    def free_count(self) -> int:
        return self._free_count

    def is_free(self, index: int) -> bool:
        """Whether 0-based slot *index* is still free."""
        self._check(index)
        return not self._taken[index]

    def free_before(self, index: int) -> int:
        """Number of free slots with position strictly below *index* (0-based)."""
        if index <= 0:
            return 0
        position = min(index, self.size)
        total = 0
        while position > 0:
            total += self._tree[position]
            position -= position & -position
        return total

    def kth_free(self, k: int) -> int:
        """0-based index of the ``(k+1)``-th free slot from the left."""
        if not (0 <= k < self._free_count):
            raise AssignmentError(
                f"k={k} outside the {self._free_count} free slot(s)"
            )
        target = k + 1
        position = 0
        bit = 1
        while bit * 2 <= self.size:
            bit *= 2
        while bit:
            next_position = position + bit
            if next_position <= self.size and self._tree[next_position] < target:
                position = next_position
                target -= self._tree[position]
            bit //= 2
        return position  # 1-based internal == 0-based external + 1 - 1

    def kth_free_after(self, k: int, min_index: int) -> int:
        """0-based index of the ``(k+1)``-th free slot strictly after *min_index*.

        ``min_index = -1`` means "from the very left".
        """
        skipped = self.free_before(min_index + 1)
        return self.kth_free(skipped + k)

    def free_after(self, min_index: int) -> int:
        """Number of free slots strictly after 0-based *min_index*."""
        return self._free_count - self.free_before(min_index + 1)

    # -- mutation ------------------------------------------------------------------

    def take(self, index: int) -> None:
        """Mark 0-based slot *index* as occupied."""
        self._check(index)
        if self._taken[index]:
            raise AssignmentError(f"slot {index} already taken")
        self._taken[index] = True
        self._free_count -= 1
        position = index + 1
        while position <= self.size:
            self._tree[position] -= 1
            position += position & -position

    def _check(self, index: int) -> None:
        if not (0 <= index < self.size):
            raise AssignmentError(f"slot {index} outside 0..{self.size - 1}")
