"""Design-level staged assignment with per-stage backend dispatch.

This is the replacement spelling for the deprecated
``Assigner.assign_design`` *method*: a module function that owns the
design walk and the per-quadrant seed derivation, and — unlike the ABC
method — can route the deterministic assigners (IFA, DFA) onto the array
kernels of :mod:`repro.kernels.assign` when the quadrant is large enough
to pay for it.  Seed semantics are unchanged: quadrant ``index`` gets
``seed + index`` (or ``None`` when no seed is given), so results are
byte-identical to the legacy method on every backend (the kernels are
order-identical by construction; see the ``assign_parity`` fuzz oracle).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..package import Quadrant
from .base import Assigner, Assignment
from .dfa import DFAAssigner
from .ifa import IFAAssigner

__all__ = ["assign_design", "assign_quadrant"]


def assign_quadrant(
    assigner: Assigner,
    quadrant: Quadrant,
    seed: Optional[int] = None,
    backend: str = "auto",
) -> Assignment:
    """Assign one quadrant, honoring the staged ``backend=`` convention.

    Only the stock deterministic assigners have array twins; subclasses
    and randomized strategies always run their own ``assign`` (their
    behavior is the specification, so there is nothing to vectorize
    against).
    """
    from ..kernels import resolve_stage_backend

    resolved = resolve_stage_backend(backend, quadrant.net_count)
    if resolved == "array":
        from .. import kernels

        if type(assigner) is IFAAssigner:
            return Assignment(quadrant, kernels.ifa_order(quadrant))
        if type(assigner) is DFAAssigner:
            return Assignment(
                quadrant,
                kernels.dfa_order(quadrant, cut_line_n=assigner.cut_line_n),
            )
    return assigner.assign(quadrant, seed=seed)


def assign_design(
    assigner: Assigner,
    design,
    seed: Optional[int] = None,
    backend: str = "auto",
) -> Dict:
    """Assign every quadrant of *design*; returns ``{side: Assignment}``.

    The staged spelling of the paper's step 1 — ``assigner`` is anything
    satisfying the :class:`repro.api.Assigner` protocol.
    """
    results = {}
    for index, (side, quadrant) in enumerate(design):
        sub_seed = None if seed is None else seed + index
        results[side] = assign_quadrant(
            assigner, quadrant, seed=sub_seed, backend=backend
        )
    return results
