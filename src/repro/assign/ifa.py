"""Intuitive-Insertion-based Finger/pad Assignment (IFA, paper Fig. 9).

IFA processes bump rows from the highest horizontal line (nearest the
fingers) outwards.  The highest row is copied to the leftmost fingers
directly.  Every later row is woven in by insertion:

* the row's first net is inserted at the very front (the paper's "shift
  every finger right by one, assign into F_1");
* net ``x`` (for ``2 <= x <= m-1``) is inserted immediately before the finger
  currently holding ball ``x`` of the previously processed row — the rule the
  paper's walk-through applies ("the net name on B_{i,2,y+1} is Net 6,
  therefore net 3 is inserted before net 6");
* the row's last net is appended after all fingers assigned so far.

Insertion can never violate the monotonic rule, because each row is inserted
left-to-right and never reordered.  On the paper's 12-net example this
reproduces the published order ``10,1,11,2,3,6,4,5,9,7,8,0`` exactly.

Complexity is O(n^2) in the net count (each insertion shifts a list).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import AssignmentError
from ..package import Quadrant
from .base import Assigner, Assignment


class IFAAssigner(Assigner):
    """Insertion-based congestion-driven assignment (IFA)."""

    name = "IFA"

    def assign(self, quadrant: Quadrant, seed: Optional[int] = None) -> Assignment:
        del seed  # deterministic
        rows_top_down = quadrant.bumps.rows_top_down()
        if not rows_top_down:
            raise AssignmentError("quadrant has no bump rows")

        top_row = rows_top_down[0]
        order: List[int] = list(quadrant.row_nets(top_row))
        previous_row_nets = list(order)

        for row in rows_top_down[1:]:
            nets = quadrant.row_nets(row)
            order = self._insert_row(order, nets, previous_row_nets)
            previous_row_nets = nets
        return Assignment(quadrant, order)

    @staticmethod
    def _insert_row(
        order: List[int], nets: List[int], previous_row_nets: List[int]
    ) -> List[int]:
        """Weave one bump row into the running finger order."""
        order = list(order)
        m = len(nets)
        # First ball of the row goes to F_1; everything else shifts right.
        order.insert(0, nets[0])
        # Middle balls: insert before the same-index ball of the row above.
        for x in range(2, m):
            net = nets[x - 1]
            if x <= len(previous_row_nets):
                anchor = previous_row_nets[x - 1]
                position = order.index(anchor)
            else:
                # The row above is shorter than this row: no anchor ball
                # exists, so the net joins the tail (keeps within-row order).
                position = len(order)
            order.insert(position, net)
        # Last ball of the row is appended at the very end.
        if m > 1:
            order.append(nets[m - 1])
        return order
