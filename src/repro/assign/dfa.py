"""Density-Interval-based Finger/pad Assignment (DFA, paper Fig. 11).

IFA only reasons about two adjacent rows at a time, which degrades on BGA
packages with three or more bump levels (paper Fig. 13).  DFA instead spreads
every row across the *whole* finger span using a density interval:

    DI = (total non-allocated nets - used via number)
         / (total via number + n),          n >= 1

where the "total via number" is the via-candidate count of the highest
horizontal line (the line that dominates congestion under monotonic routing)
and "used via number" is the number of vias the current row will consume.
Each ball ``x`` of the row computes an empty number ``EN = floor(x * DI)``
and lands on the ``(EN + 1)``-th *unassigned* finger slot counted from the
left.  Processing rows from the highest line outwards keeps the result
monotonic-legal by construction and the whole pass is O(n).

The cut-line parameter ``n`` models the congestion shared by neighbouring
triangular quadrants along the diagonal cut-lines: with ``n = 1`` the
cut-line congestion is ignored; ``n >= 2`` merges the leftmost and rightmost
segments so both quadrants contribute (paper section 3.1.2).

On the paper's 12-net example this reproduces the published order
``10,11,1,2,6,3,4,9,5,7,8,0`` and the published density intervals
(DI = 1.8 then 1.0 then 0.0) exactly.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..errors import AssignmentError
from ..package import Quadrant
from .base import Assigner, Assignment
from .fenwick import FreeSlotIndex


class DFAAssigner(Assigner):
    """Density-interval congestion-driven assignment (DFA)."""

    name = "DFA"

    def __init__(self, cut_line_n: int = 1) -> None:
        if cut_line_n < 1:
            raise AssignmentError(f"cut-line parameter n must be >= 1, got {cut_line_n}")
        self.cut_line_n = cut_line_n

    def assign(self, quadrant: Quadrant, seed: Optional[int] = None) -> Assignment:
        del seed  # deterministic
        rows_top_down = quadrant.bumps.rows_top_down()
        if not rows_top_down:
            raise AssignmentError("quadrant has no bump rows")

        slot_count = quadrant.net_count
        # Via candidates on the highest line: one per ball plus the free
        # rightmost candidate (see BumpArray.via_candidate_xs).
        total_via_number = quadrant.bumps.row_size(rows_top_down[0]) + 1
        segments = total_via_number + self.cut_line_n

        slots: List[Optional[int]] = [None] * slot_count
        free = FreeSlotIndex(slot_count)
        remaining = slot_count

        for row in rows_top_down:
            nets = quadrant.row_nets(row)
            used_via_number = len(nets)
            density_interval = max(0.0, (remaining - used_via_number) / segments)
            previous_index = -1
            for x, net in enumerate(nets, start=1):
                empty_number = math.floor(x * density_interval)
                slot_index = self._pick_slot(
                    free,
                    empty_number,
                    min_index=previous_index,
                    reserve=len(nets) - x,
                )
                free.take(slot_index)
                slots[slot_index] = net
                previous_index = slot_index
            remaining -= used_via_number

        assert all(net is not None for net in slots)
        return Assignment(quadrant, slots)

    @staticmethod
    def _pick_slot(
        free: FreeSlotIndex,
        empty_number: int,
        min_index: int,
        reserve: int,
    ) -> int:
        """Slot for the current net: the ``(EN + 1)``-th unassigned from the left.

        Two feasibility constraints keep irregular bump arrays legal, both
        no-ops on the regular cases the paper walks through:

        * the slot must land strictly after ``min_index`` (the slot of the
          previous net of the same bump row), preserving within-row order;
        * at least ``reserve`` free slots must remain to its right for the
          row's outstanding nets.

        All queries run in O(log n) on the Fenwick free-slot index, making
        the DFA pass O(n log n) — matching the paper's linear-time claim up
        to the log factor.
        """
        admissible_count = free.free_after(min_index)
        if admissible_count <= reserve:
            raise AssignmentError("no unassigned finger slot left for the row")
        # The paper's choice: the (EN+1)-th free slot counted globally,
        # expressed as a rank among the admissible (post-min_index) frees.
        skipped = free.free_before(min_index + 1)
        rank = empty_number - skipped
        # Clamp into the admissible window [first legal, last leaving room].
        rank = min(max(rank, 0), admissible_count - reserve - 1)
        return free.kth_free_after(rank, min_index)

    def density_interval_trace(self, quadrant: Quadrant) -> List[float]:
        """The DI value used for each row, highest line first (for reports).

        The paper's walk-through quotes these values (1.8, 1.0, 0.0 on the
        12-net example); exposing them makes the Fig. 12 bench verifiable.
        """
        rows_top_down = quadrant.bumps.rows_top_down()
        total_via_number = quadrant.bumps.row_size(rows_top_down[0]) + 1
        segments = total_via_number + self.cut_line_n
        remaining = quadrant.net_count
        trace = []
        for row in rows_top_down:
            used = quadrant.bumps.row_size(row)
            trace.append(max(0.0, (remaining - used) / segments))
            remaining -= used
        return trace
