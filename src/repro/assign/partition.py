"""Net-to-quadrant partitioning — the step before finger/pad assignment.

The paper takes the quadrant partition as input (each net's bump ball is
given).  In a full chip-package co-design flow someone must *produce* that
partition from the chip's desired pad ring — the I/O-planning step the same
authors treat in [13].  This module provides it: given the core's preferred
pad order around the die and per-side capacities, cut the ring into four
contiguous arcs (contiguity keeps bonding wires uncrossed) choosing the
rotation that best aligns each net with its preferred die side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import AssignmentError
from ..geometry import Side

_RING_SIDES = (Side.BOTTOM, Side.RIGHT, Side.TOP, Side.LEFT)


@dataclass(frozen=True)
class PartitionSpec:
    """Desired quadrant capacities; ``None`` means "split evenly"."""

    capacities: Optional[Dict[Side, int]] = None

    def resolve(self, net_count: int) -> Dict[Side, int]:
        if self.capacities is not None:
            total = sum(self.capacities.values())
            if total != net_count:
                raise AssignmentError(
                    f"capacities sum to {total}, but there are {net_count} nets"
                )
            if set(self.capacities) - set(_RING_SIDES):
                raise AssignmentError("capacities reference unknown sides")
            return {side: self.capacities.get(side, 0) for side in _RING_SIDES}
        base = net_count // 4
        result = {side: base for side in _RING_SIDES}
        for index in range(net_count - 4 * base):
            result[_RING_SIDES[index]] += 1
        return result


@dataclass
class Partition:
    """A net-to-side partition, in ring order within each side."""

    sides: Dict[Side, List[int]] = field(default_factory=dict)

    @property
    def net_count(self) -> int:
        return sum(len(nets) for nets in self.sides.values())

    def side_of(self, net_id: int) -> Side:
        for side, nets in self.sides.items():
            if net_id in nets:
                return side
        raise AssignmentError(f"net {net_id} not in partition")

    def mismatch(self, preferred: Dict[int, Side]) -> int:
        """How many nets landed on a side other than their preference."""
        wrong = 0
        for side, nets in self.sides.items():
            for net_id in nets:
                if preferred.get(net_id, side) is not side:
                    wrong += 1
        return wrong


def partition_ring(
    ring_order: Sequence[int],
    spec: Optional[PartitionSpec] = None,
    preferred: Optional[Dict[int, Side]] = None,
) -> Partition:
    """Cut a pad ring into four contiguous arcs.

    Parameters
    ----------
    ring_order:
        Net ids in the core's preferred order around the die (the output of
        core-side I/O planning), walking bottom -> right -> top -> left.
    spec:
        Per-side capacities; defaults to an even split.
    preferred:
        Optional ``{net_id: Side}`` preferences.  All rotations of the
        contiguous cut are evaluated and the one with the fewest preference
        mismatches wins (ties break towards rotation 0).
    """
    ring = list(ring_order)
    if len(set(ring)) != len(ring):
        raise AssignmentError("ring order contains duplicate nets")
    if not ring:
        raise AssignmentError("ring order is empty")
    spec = spec or PartitionSpec()
    capacities = spec.resolve(len(ring))

    def cut(rotation: int) -> Partition:
        rotated = ring[rotation:] + ring[:rotation]
        partition = Partition()
        cursor = 0
        for side in _RING_SIDES:
            count = capacities[side]
            partition.sides[side] = rotated[cursor:cursor + count]
            cursor += count
        return partition

    if not preferred:
        return cut(0)

    best = None
    best_score = None
    for rotation in range(len(ring)):
        candidate = cut(rotation)
        score = candidate.mismatch(preferred)
        if best_score is None or score < best_score:
            best, best_score = candidate, score
            if score == 0:
                break
    return best


def partition_to_rows(
    partition: Partition,
    rows_per_quadrant: int = 4,
) -> Dict[Side, List[List[int]]]:
    """Spread each side's nets over trapezoidal bump rows.

    Returns ``{side: rows}`` ready for :class:`repro.package.BumpArray`
    (outermost row first).  Nets fill the rows outer-to-inner in ring
    order, so physically adjacent pads get physically adjacent balls.
    """
    from ..circuits.generator import trapezoid_rows

    result: Dict[Side, List[List[int]]] = {}
    for side, nets in partition.sides.items():
        if not nets:
            continue
        sizes = trapezoid_rows(len(nets), min(rows_per_quadrant, len(nets)))
        rows: List[List[int]] = []
        cursor = 0
        for size in sizes:
            rows.append(list(nets[cursor:cursor + size]))
            cursor += size
        result[side] = rows
    return result
