"""Assignment representation and the assigner interface.

An :class:`Assignment` binds every net of a quadrant to one finger slot.  It
is the object all three assignment algorithms produce and the exchange step
mutates.  Slots are 1-based, left to right, matching the paper's
``F_1 .. F_alpha`` notation.
"""

from __future__ import annotations

import abc
import warnings
from typing import Dict, List, Optional, Sequence

from ..errors import AssignmentError
from ..package import Quadrant


class Assignment:
    """A bijection between a quadrant's nets and its finger slots."""

    def __init__(self, quadrant: Quadrant, order: Sequence[int]) -> None:
        order = list(order)
        expected = set(net.id for net in quadrant.netlist)
        if len(order) != len(expected) or set(order) != expected:
            raise AssignmentError(
                "assignment order must be a permutation of the quadrant's nets: "
                f"got {len(order)} entries for {len(expected)} nets"
            )
        self.quadrant = quadrant
        self._order: List[int] = order
        self._slot_of: Dict[int, int] = {
            net_id: slot for slot, net_id in enumerate(order, start=1)
        }

    # -- queries -------------------------------------------------------------

    @property
    def order(self) -> List[int]:
        """Net ids by slot, leftmost first (a copy; mutate via :meth:`swap_slots`)."""
        return list(self._order)

    @property
    def slot_count(self) -> int:
        return len(self._order)

    def slot_of(self, net_id: int) -> int:
        """Finger slot (1-based) holding *net_id*."""
        try:
            return self._slot_of[net_id]
        except KeyError:
            raise AssignmentError(f"net {net_id} not in assignment") from None

    def net_at(self, slot: int) -> int:
        """Net id held by finger slot *slot* (1-based)."""
        if not (1 <= slot <= len(self._order)):
            raise AssignmentError(f"slot {slot} outside 1..{len(self._order)}")
        return self._order[slot - 1]

    def finger_position(self, net_id: int):
        """Physical centre of the finger carrying *net_id*."""
        return self.quadrant.fingers.slot_position(self.slot_of(net_id))

    # -- mutation --------------------------------------------------------------

    def swap_slots(self, slot_a: int, slot_b: int) -> None:
        """Exchange the nets held by two finger slots (in place)."""
        net_a = self.net_at(slot_a)
        net_b = self.net_at(slot_b)
        self._order[slot_a - 1] = net_b
        self._order[slot_b - 1] = net_a
        self._slot_of[net_a] = slot_b
        self._slot_of[net_b] = slot_a

    def copy(self) -> "Assignment":
        """An independent copy sharing the (immutable) quadrant."""
        return Assignment(self.quadrant, self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self.quadrant is other.quadrant and self._order == other._order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Assignment({self._order})"


class Assigner(abc.ABC):
    """Interface of the three finger/pad assignment strategies."""

    #: Short name used in reports ("Random", "IFA", "DFA").
    name: str = "base"

    @abc.abstractmethod
    def assign(self, quadrant: Quadrant, seed: Optional[int] = None) -> Assignment:
        """Produce a monotonic-legal assignment for *quadrant*.

        ``seed`` only matters for randomized strategies; deterministic
        algorithms ignore it.
        """

    def assign_design(self, design, seed: Optional[int] = None) -> Dict:
        """Deprecated spelling of :func:`repro.assign.assign_design`.

        The design walk moved to a module function so the staged pipeline
        can dispatch per-stage backends; this method shim keeps the legacy
        object path (``backend="object"``) byte-for-byte.
        """
        warnings.warn(
            "Assigner.assign_design() is deprecated; call "
            "repro.assign.assign_design(assigner, design, seed=..., "
            "backend=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from .staged import assign_design as staged_assign_design

        return staged_assign_design(self, design, seed=seed, backend="object")
