"""The random baseline of the paper's evaluation.

"The random method denotes that the assignment order conforms the monotonic
rule and other factors are ignored" (section 4).  Such an order is exactly a
random *interleaving* of the bump rows: each row's nets must keep their
left-to-right ball order, but rows may interleave arbitrarily.  Drawing the
next finger from row ``r`` with probability proportional to the number of
nets still waiting in ``r`` samples uniformly over all legal interleavings.
"""

from __future__ import annotations

import random
import warnings
from typing import Optional

from ..package import Quadrant
from .base import Assigner, Assignment


class RandomAssigner(Assigner):
    """Uniformly random monotonic-legal assignment.

    Seeds are per *call*, like every other assigner: pass them to
    :meth:`assign` / :meth:`~repro.assign.Assigner.assign_design`.  The
    constructor-level seed is a deprecated legacy spelling — it made the
    same ``RandomAssigner`` produce different sequences than an
    identically-seeded ``IFAAssigner``/``DFAAssigner`` pipeline and is on
    its way out.
    """

    name = "Random"

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is not None:
            warnings.warn(
                "RandomAssigner(seed=...) is deprecated; pass the seed per "
                "call instead: assign(quadrant, seed=...) or "
                "assign_design(design, seed=...)",
                DeprecationWarning,
                stacklevel=2,
            )
        self._default_seed = seed

    def assign(self, quadrant: Quadrant, seed: Optional[int] = None) -> Assignment:
        if seed is None:
            seed = self._default_seed
        rng = random.Random(seed)
        queues = [
            list(quadrant.row_nets(row))
            for row in range(1, quadrant.row_count + 1)
        ]
        remaining = [len(queue) for queue in queues]
        total = sum(remaining)
        order = []
        while total:
            pick = rng.randrange(total)
            for row_index, count in enumerate(remaining):
                if pick < count:
                    order.append(queues[row_index].pop(0))
                    remaining[row_index] -= 1
                    total -= 1
                    break
                pick -= count
        return Assignment(quadrant, order)


def best_of_random(
    quadrant: Quadrant,
    trials: int,
    objective,
    seed: Optional[int] = None,
) -> Assignment:
    """The strongest form of the baseline: best of *trials* random orders.

    The paper's abstract calls its baseline the "randomly optimized method";
    this helper lets benchmarks give the baseline multiple attempts and keep
    the one minimizing *objective* (a callable ``Assignment -> float``).
    """
    assigner = RandomAssigner()
    best = None
    best_score = None
    for trial in range(max(1, trials)):
        trial_seed = None if seed is None else seed + trial
        candidate = assigner.assign(quadrant, seed=trial_seed)
        score = objective(candidate)
        if best_score is None or score < best_score:
            best, best_score = candidate, score
    return best


class BestOfRandomAssigner(Assigner):
    """The "randomly optimized" baseline: best of N random legal orders.

    Keeps, per quadrant, the random order with the smallest maximum density
    (the metric Table 2 compares on).  ``trials = 1`` degenerates to
    :class:`RandomAssigner`.
    """

    name = "Random"

    def __init__(self, trials: int = 3) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.trials = trials

    def assign(self, quadrant: Quadrant, seed: Optional[int] = None) -> Assignment:
        from ..routing.density import max_density

        return best_of_random(quadrant, self.trials, max_density, seed=seed)
