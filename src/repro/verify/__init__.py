"""repro.verify — invariant checking, recovery policies, fault injection.

The paper's guarantees are invariants the rest of the library must keep at
runtime: assignments stay bijective and monotonic-legal, incremental costs
agree with their from-scratch re-derivation, IR-drop results stay finite
and non-negative.  This subsystem re-checks them on live objects and turns
violations into structured, machine-readable diagnostics:

``diagnostics``
    :class:`Diagnostic` records (code + severity + message) collected in
    :class:`VerificationReport`; detection never raises by itself.
``checkers``
    The invariant checkers: designs on ingest, assignments on output
    (including the real router and a scratch cost re-derivation), power
    results and engine job values.
``policy``
    Recovery policies (``off`` / ``strict`` / ``repair`` / ``degrade``)
    plus the monotonic re-legalization repair.
``workload``
    Deep verification of whole paper workloads — ``python -m repro check``.
``chaos``
    Deterministic fault injection (malformed circuits, NaN costs, cache
    corruption, worker crashes, timeouts) proving every fault surfaces as
    a typed :class:`~repro.errors.ReproError` or degrades gracefully.

``chaos`` registers job types and imports the runtime, so it is loaded
lazily (the job-type registry resolves ``chaos_*`` kinds on demand).
"""

from .checkers import (
    FASTCOST_RTOL,
    check_assignments,
    check_design,
    check_exchange_total,
    check_job_value,
    check_power_values,
    check_trace_events,
    check_wire_request,
)
from .diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    VerificationReport,
    merge,
)
from .policy import (
    CLI_POLICIES,
    DEGRADE,
    OFF,
    POLICIES,
    REPAIR,
    STRICT,
    enabled,
    normalize,
    repair_assignment,
    repair_assignments,
)
from .workload import check_workload

__all__ = [
    "CLI_POLICIES",
    "DEGRADE",
    "ERROR",
    "FASTCOST_RTOL",
    "INFO",
    "OFF",
    "POLICIES",
    "REPAIR",
    "STRICT",
    "WARNING",
    "Diagnostic",
    "VerificationReport",
    "check_assignments",
    "check_design",
    "check_exchange_total",
    "check_job_value",
    "check_power_values",
    "check_trace_events",
    "check_wire_request",
    "check_workload",
    "enabled",
    "merge",
    "normalize",
    "repair_assignment",
    "repair_assignments",
]
