"""Recovery policies: what a failed invariant check *does*.

``off``
    No checks run; the pre-verification behaviour.
``strict``
    Any error-severity diagnostic raises :class:`~repro.errors.VerificationError`.
``repair``
    Where a repair exists (an illegal assignment can be re-legalized, an
    invalid job result can be recomputed), apply it and re-check; raise
    only when the repair did not restore the invariant.
``degrade``
    Fall back to a simpler-but-trusted path (IFA instead of a misbehaving
    assigner, serial instead of pool execution) and record the downgrade in
    telemetry instead of failing the run.

The policy value travels as a plain string (CLI flags, job params, JSON
specs); :func:`normalize` is the single validation point.
"""

from __future__ import annotations

from typing import Dict, Mapping

OFF = "off"
STRICT = "strict"
REPAIR = "repair"
DEGRADE = "degrade"

#: Policies accepted by the CLI's ``--verify`` flag; ``degrade`` is reachable
#: programmatically (flow/engine internals) but not exposed as a flag value.
CLI_POLICIES = (OFF, STRICT, REPAIR)
POLICIES = (OFF, STRICT, REPAIR, DEGRADE)


def normalize(policy) -> str:
    """Validate and canonicalize a policy value (None means ``off``)."""
    if policy is None:
        return OFF
    value = str(policy).lower()
    if value not in POLICIES:
        raise ValueError(f"verify policy must be one of {POLICIES}, got {policy!r}")
    return value


def enabled(policy) -> bool:
    return normalize(policy) != OFF


# -- repairs ---------------------------------------------------------------


def repair_assignment(assignment) -> int:
    """Re-legalize one assignment in place; returns the number of nets moved.

    The monotonic rule only constrains nets whose balls share a bump row:
    their fingers must appear in ball order.  The minimal legality-restoring
    repair therefore keeps the *set* of slots each row occupies (so density
    on other rows is untouched) and permutes the nets of each row back into
    ball order within those slots.  The result is always legal: per row the
    slots are sorted and the nets re-enter left to right.
    """
    quadrant = assignment.quadrant
    moved = 0
    for row in range(1, quadrant.row_count + 1):
        nets = quadrant.row_nets(row)
        slots = sorted(assignment.slot_of(net_id) for net_id in nets)
        for net_id, slot in zip(nets, slots):
            current = assignment.slot_of(net_id)
            if current != slot:
                assignment.swap_slots(current, slot)
                moved += 1
    return moved


def repair_assignments(design, assignments: Mapping) -> Dict:
    """Re-legalize every quadrant's assignment; returns ``{side: moved}``."""
    return {
        side: repair_assignment(assignments[side])
        for side, __ in design
        if side in assignments
    }
