"""Invariant checkers: designs on ingest, assignments on output, power results.

Constructors already validate what they can see (``NetList`` rejects
duplicate ids, ``Assignment`` demands a permutation).  These checkers
re-establish the paper's invariants *at runtime*, from scratch, against the
live objects — catching what construction-time checks cannot: mutation
after the fact, drift between the incremental caches and the exact model,
and corrupt values coming back from worker processes or the disk cache.

Every checker returns a :class:`~repro.verify.diagnostics.VerificationReport`
and never raises on a finding; reacting is the policy layer's job.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from ..errors import ReproError
from .diagnostics import VerificationReport

#: Relative tolerance for the incremental-vs-scratch cost re-derivation.
#: The caches are algebraically exact (same float operations in a different
#: grouping), so the bound is tight; it only absorbs summation-order noise.
FASTCOST_RTOL = 1e-9


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


# -- ingest: circuits / package designs ------------------------------------


def check_design(design, report: Optional[VerificationReport] = None) -> VerificationReport:
    """Validate a :class:`~repro.package.PackageDesign` on ingest.

    Codes: ``design.empty``, ``design.duplicate-net``, ``design.finger-count``,
    ``design.tier-range``, ``design.technology``, ``design.ball-orphan``.
    """
    report = report if report is not None else VerificationReport(
        subject=getattr(design, "name", "design")
    )
    quadrants = getattr(design, "quadrants", None)
    if not quadrants:
        report.error("design.empty", "design has no quadrants")
        return report

    technology = design.technology
    if min(
        technology.bump_ball_space,
        technology.via_diameter,
        technology.finger_width,
        technology.finger_height,
    ) <= 0 or technology.finger_space < 0:
        report.error(
            "design.technology",
            "package technology has non-positive dimensions",
        )

    psi = design.stacking.tier_count
    seen_ids: Dict[int, str] = {}
    for side, quadrant in design:
        ids = [net.id for net in quadrant.netlist]
        if len(set(ids)) != len(ids):
            report.error(
                "design.duplicate-net",
                f"{side.value}: duplicate net ids in netlist",
                side=side.value,
            )
        for net_id in ids:
            if net_id in seen_ids:
                report.warning(
                    "design.duplicate-net",
                    f"net id {net_id} appears on both {seen_ids[net_id]} "
                    f"and {side.value}",
                    net=net_id,
                )
            else:
                seen_ids[net_id] = side.value
        if quadrant.fingers.slot_count != quadrant.net_count:
            report.error(
                "design.finger-count",
                f"{side.value}: {quadrant.fingers.slot_count} finger slots "
                f"for {quadrant.net_count} nets",
                side=side.value,
            )
        for net in quadrant.netlist:
            if not (1 <= net.tier <= psi):
                report.error(
                    "design.tier-range",
                    f"{side.value}: net {net.name} on tier {net.tier}, "
                    f"stack has {psi} tier(s)",
                    side=side.value,
                    net=net.id,
                )
            try:
                quadrant.bumps.ball_of(net.id)
            except ReproError:
                report.error(
                    "design.ball-orphan",
                    f"{side.value}: net {net.name} has no bump ball",
                    side=side.value,
                    net=net.id,
                )
    return report


# -- output: assignments ---------------------------------------------------


def check_assignments(
    design,
    assignments: Mapping,
    baseline: Optional[Mapping] = None,
    deep: bool = True,
    report: Optional[VerificationReport] = None,
) -> VerificationReport:
    """Validate a ``{side: Assignment}`` produced by an assigner or exchange.

    Shallow checks (always): completeness over the design's sides, a
    bijective net↔slot mapping, and monotonic legality re-derived from the
    bump rows (Kubo–Takahashi rule).  Deep checks (``deep=True``) also run
    the *real* monotonic router on every quadrant and re-derive the
    incremental exchange cost from scratch against the exact Eq.-3 model.

    Codes: ``assign.missing-side``, ``assign.extra-side``,
    ``assign.not-bijective``, ``assign.monotonic``, ``assign.router``,
    ``assign.density-drift``, ``assign.fastcost-drift``.
    """
    from ..assign import row_violations

    report = report if report is not None else VerificationReport(
        subject=f"{getattr(design, 'name', 'design')} assignments"
    )

    for side, __ in design:
        if side not in assignments:
            report.error(
                "assign.missing-side",
                f"no assignment for side {side.value}",
                side=side.value,
            )
    for side in assignments:
        if side not in design.quadrants:
            report.error(
                "assign.extra-side",
                f"assignment for absent side {getattr(side, 'value', side)}",
            )
    if not report.ok:
        return report

    for side, quadrant in design:
        assignment = assignments[side]
        expected = set(net.id for net in quadrant.netlist)
        order = assignment.order
        if len(order) != len(expected) or set(order) != expected:
            report.error(
                "assign.not-bijective",
                f"{side.value}: order is not a permutation of the quadrant's "
                f"{len(expected)} nets ({len(order)} entries, "
                f"{len(set(order))} distinct)",
                side=side.value,
            )
            continue
        violations = row_violations(assignment)
        if violations:
            row, left, right = violations[0]
            report.error(
                "assign.monotonic",
                f"{side.value}: {len(violations)} monotonic violation(s); "
                f"first on row {row}: net {left} left of net {right} but "
                f"finger {assignment.slot_of(left)} > "
                f"{assignment.slot_of(right)}",
                side=side.value,
                violations=len(violations),
            )

    if deep and report.ok:
        _check_routing(design, assignments, report)
        _check_fastcost(design, assignments, baseline, report)
    return report


def _check_routing(design, assignments: Mapping, report: VerificationReport) -> None:
    """Route every quadrant for real and cross-check the density model."""
    from ..routing import MonotonicRouter, max_density

    router = MonotonicRouter()
    for side, __ in design:
        assignment = assignments[side]
        try:
            result = router.route(assignment)
        except ReproError as exc:
            report.error(
                "assign.router",
                f"{side.value}: monotonic router rejected a supposedly "
                f"legal assignment: {exc}",
                side=side.value,
            )
            continue
        estimated = max_density(assignment)
        if result.max_density != estimated:
            report.error(
                "assign.density-drift",
                f"{side.value}: routed max density {result.max_density} != "
                f"estimated {estimated}",
                side=side.value,
                routed=result.max_density,
                estimated=estimated,
            )


def _check_fastcost(
    design,
    assignments: Mapping,
    baseline: Optional[Mapping],
    report: VerificationReport,
) -> None:
    """Re-derive the incremental Eq.-3 cost from scratch within tolerance."""
    from ..exchange import CachedExchangeCost, ExchangeCost
    from ..package import NetType

    if not any(
        net.net_type in (NetType.POWER, NetType.GROUND)
        for __, quadrant in design
        for net in quadrant.netlist
    ):
        # No supply nets: Eq. 3 has no IR term to normalize against, so
        # there is no incremental cost to cross-check.  Not a violation.
        report.info(
            "assign.fastcost-skipped",
            "no POWER/GROUND nets; exchange-cost re-derivation skipped",
        )
        return
    base = baseline if baseline is not None else assignments
    try:
        exact = ExchangeCost(design, base).total(assignments)
        cached_cost = CachedExchangeCost(design, base)
        incremental = cached_cost.total(assignments)
    except ReproError as exc:
        report.error(
            "assign.fastcost-drift",
            f"exchange cost could not be evaluated: {exc}",
        )
        return
    if not (math.isfinite(exact) and math.isfinite(incremental)):
        report.error(
            "assign.fastcost-drift",
            f"exchange cost is non-finite (exact {exact}, "
            f"incremental {incremental})",
        )
        return
    scale = max(abs(exact), abs(incremental), 1.0)
    if abs(exact - incremental) > FASTCOST_RTOL * scale:
        report.error(
            "assign.fastcost-drift",
            f"incremental cost {incremental!r} drifted from the scratch "
            f"re-derivation {exact!r}",
            exact=exact,
            incremental=incremental,
        )


def check_exchange_total(
    design,
    baseline: Mapping,
    assignments: Mapping,
    claimed: float,
    weights=None,
    net_type="POWER",
    split_networks: bool = False,
    track_all_rows: bool = True,
    report: Optional[VerificationReport] = None,
) -> VerificationReport:
    """Cross-check a *claimed* Eq.-3 total against the exact scratch model.

    This is the parity oracle for the array exchange kernel: the kernel's
    incrementally maintained total for *assignments* (relative to the SA
    *baseline*) must agree with :class:`~repro.exchange.ExchangeCost` — a
    full from-scratch re-derivation through the object model — within
    ``FASTCOST_RTOL``.

    ``net_type`` accepts the enum or its name so engine jobs can pass
    cached JSON params straight through.

    Codes: ``exchange.total-drift``, ``exchange.total-error``.
    """
    from ..exchange import ExchangeCost
    from ..package import NetType

    report = report if report is not None else VerificationReport(
        subject=f"{getattr(design, 'name', 'design')} exchange total"
    )
    if isinstance(net_type, str):
        net_type = NetType[net_type]
    try:
        exact = ExchangeCost(
            design,
            baseline,
            weights=weights,
            net_type=net_type,
            track_all_rows=track_all_rows,
            split_networks=split_networks,
        ).total(assignments)
    except ReproError as exc:
        report.error(
            "exchange.total-error",
            f"exact Eq.-3 model could not evaluate the assignments: {exc}",
        )
        return report
    if not (_finite(exact) and _finite(claimed)):
        report.error(
            "exchange.total-drift",
            f"non-finite exchange total (exact {exact!r}, claimed {claimed!r})",
        )
        return report
    scale = max(abs(exact), abs(claimed), 1.0)
    if abs(exact - claimed) > FASTCOST_RTOL * scale:
        report.error(
            "exchange.total-drift",
            f"claimed exchange total {claimed!r} drifted from the exact "
            f"re-derivation {exact!r}",
            exact=exact,
            claimed=claimed,
        )
    return report


# -- power results ---------------------------------------------------------


def check_power_values(
    values: Mapping,
    report: Optional[VerificationReport] = None,
) -> VerificationReport:
    """Validate named IR-drop quantities: every value finite and >= 0.

    Codes: ``power.nonfinite``, ``power.negative``.
    """
    report = report if report is not None else VerificationReport(subject="power")
    for name, value in values.items():
        if value is None:
            continue
        if not _finite(value):
            report.error(
                "power.nonfinite",
                f"{name} is non-finite: {value!r}",
                metric=name,
            )
        elif value < 0:
            report.error(
                "power.negative",
                f"{name} is negative: {value!r}",
                metric=name,
                value=value,
            )
    return report


# -- job values (engine results) -------------------------------------------

#: Per-kind required keys of the built-in job types; unknown kinds only get
#: the generic deep scan for non-finite numbers.
_JOB_SCHEMAS: Dict[str, tuple] = {
    "table2_cell": (
        "circuit", "assigner", "max_density", "wirelength", "flyline_length",
    ),
    "codesign": (
        "circuit", "tiers", "density_after_assignment",
        "density_after_exchange", "ir_improvement", "bonding_improvement",
        "max_ir_drop_initial", "max_ir_drop_final", "sa",
    ),
    "fig6": ("random_mv", "regular_mv", "optimized_mv"),
    "fuzz_probe": ("circuit", "max_density", "flyline_length", "seed"),
}

#: Job-value fields that must additionally be non-negative.
_NON_NEGATIVE = frozenset(
    {
        "max_density", "wirelength", "flyline_length",
        "density_after_assignment", "density_after_exchange",
        "max_ir_drop_initial", "max_ir_drop_final",
        "random_mv", "regular_mv", "optimized_mv",
    }
)


def _scan_finite(value, path: str, report: VerificationReport) -> None:
    """Recursively flag every non-finite number in a JSON-ish value."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return
    if isinstance(value, (int, float)):
        if not math.isfinite(value):
            report.error(
                "job.nonfinite",
                f"{path or 'value'} is non-finite: {value!r}",
                field=path,
            )
        return
    if isinstance(value, Mapping):
        for key in value:
            _scan_finite(value[key], f"{path}.{key}" if path else str(key), report)
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _scan_finite(item, f"{path}[{index}]", report)


def check_job_value(
    kind: str,
    value,
    report: Optional[VerificationReport] = None,
) -> VerificationReport:
    """Validate one engine job result before it is cached or tabulated.

    Codes: ``job.schema``, ``job.nonfinite``, ``job.negative``.
    """
    report = report if report is not None else VerificationReport(
        subject=f"{kind} result"
    )
    schema = _JOB_SCHEMAS.get(kind)
    if schema is not None:
        if not isinstance(value, Mapping):
            report.error(
                "job.schema",
                f"expected a mapping with keys {schema}, "
                f"got {type(value).__name__}",
            )
            return report
        missing = [key for key in schema if key not in value]
        if missing:
            report.error(
                "job.schema",
                f"missing required key(s): {', '.join(missing)}",
                missing=missing,
            )
    _scan_finite(value, "", report)
    if isinstance(value, Mapping):
        for name in _NON_NEGATIVE:
            field_value = value.get(name)
            if _finite(field_value) and field_value < 0:
                report.error(
                    "job.negative",
                    f"{name} is negative: {field_value!r}",
                    field=name,
                    value=field_value,
                )
    return report


def check_trace_events(events, subject: str = "trace") -> VerificationReport:
    """Validate a telemetry trace: event schema + span-tree structure.

    The observability half of the verify layer (``repro check-trace``):
    every event must match the versioned schema catalog
    (:mod:`repro.obs.schema`) and the ``span.begin``/``span.end`` events
    must reconstruct into a single rooted tree with no orphans and no
    unclosed spans (:func:`repro.obs.trace.check_spans`).
    """
    from ..obs.schema import validate_trace
    from ..obs.trace import check_spans

    report = validate_trace(events, subject=subject)
    report.extend(check_spans(events, subject=subject))
    return report


def check_wire_request(payload, subject: str = "wire request") -> VerificationReport:
    """Validate a serve wire-schema submit payload (``POST /v1/jobs``).

    Lifts :func:`repro.serve.wire.validate_request`'s ``(code, message)``
    pairs into a standard report, so the wire contract is checkable with
    the same machinery as designs, traces and job values.  A resolvable
    payload whose ``kind`` is not a registered job type gets a *warning*
    (registration is lazy and deployment-dependent), not an error.
    """
    from ..runtime.spec import resolve_job_type
    from ..serve.wire import validate_request

    report = VerificationReport(subject=subject)
    for code, message in validate_request(payload):
        report.error(code, message)
    if report.ok and isinstance(payload, dict):
        kind = payload.get("kind")
        try:
            resolve_job_type(kind)
        except KeyError:
            report.warning(
                "wire.unknown-kind",
                f"job kind {kind!r} is not registered in this process",
            )
    return report
