"""Deep verification of the paper workloads: ``python -m repro check``.

Where ``repro run`` executes a workload for its numbers, ``repro check``
executes it for its *invariants*: every job spec of the workload is
replayed through the real primitives (circuit generator, assigners, the
two-step flow) and the full checker stack — design ingest, bijective +
monotonic-legal assignments re-verified by the actual router, incremental
cost re-derived from scratch, power results finite and non-negative.
The result is one merged :class:`VerificationReport` per workload.
"""

from __future__ import annotations

from ..assign import assign_design
from typing import Optional

from ..errors import ReproError, VerificationError
from . import policy as policies
from .checkers import (
    check_assignments,
    check_design,
    check_job_value,
    check_power_values,
)
from .diagnostics import VerificationReport


def _check_table2_cell(spec, verify: str, report: VerificationReport) -> None:
    from ..power import supply_pad_fractions
    from ..power.compact import compact_ir_cost
    from ..runtime.jobs import _build_circuit_design, _make_assigner

    design = _build_circuit_design(dict(spec.params))
    check_design(design, report=report)
    assigner = _make_assigner(spec.params["assigner"])
    assignments = assign_design(assigner, design, seed=spec.seed)
    check_assignments(design, assignments, deep=True, report=report)
    fractions = supply_pad_fractions(design, assignments)
    check_power_values({"compact_ir_cost": compact_ir_cost(fractions)}, report=report)


def _check_codesign(spec, verify: str, report: VerificationReport) -> None:
    from ..flow import CoDesignFlow
    from ..power import PowerGridConfig
    from ..runtime.jobs import _build_circuit_design, _sa_params

    params = dict(spec.params)
    design = _build_circuit_design(params)
    check_design(design, report=report)
    if not report.ok:
        return
    flow = CoDesignFlow(
        sa_params=_sa_params(params),
        grid_config=PowerGridConfig(size=int(params.get("grid", 32))),
        verify=verify,
    )
    result = flow.run(design, seed=spec.seed)
    check_assignments(
        design, result.assignments_final,
        baseline=result.assignments_initial, deep=True, report=report,
    )
    check_power_values(
        {
            "max_ir_drop_initial": result.metrics_initial.max_ir_drop,
            "max_ir_drop_final": result.metrics_final.max_ir_drop,
        },
        report=report,
    )


def _check_generic(spec, verify: str, report: VerificationReport) -> None:
    from ..runtime.spec import resolve_job_type

    runner = resolve_job_type(spec.kind)
    value = runner(dict(spec.params), spec.derived_seed())
    check_job_value(spec.kind, value, report=report)


_CHECKERS = {
    "table2_cell": _check_table2_cell,
    "codesign": _check_codesign,
}


def check_workload(
    name: str,
    seed: Optional[int] = None,
    grid: Optional[int] = None,
    verify: str = policies.STRICT,
) -> VerificationReport:
    """Deep-verify every spec of a named workload; returns a merged report.

    ``verify`` is the recovery policy handed to the underlying flow
    (``strict`` surfaces every violation; ``repair`` lets the flow
    re-legalize and only reports what could not be fixed).  The report
    itself never raises — callers decide via
    :meth:`VerificationReport.raise_if_errors`.
    """
    from ..runtime.workloads import WORKLOADS

    verify = policies.normalize(verify)
    if verify == policies.OFF:
        raise ValueError("check_workload needs an active policy (strict/repair)")
    workload = WORKLOADS[name]
    seed = workload.default_seed if seed is None else seed
    grid = workload.default_grid if grid is None else grid
    report = VerificationReport(subject=f"workload {name}")
    for spec in workload.build(seed, grid):
        checker = _CHECKERS.get(spec.kind, _check_generic)
        errors_before = len(report.errors)
        diagnostics_before = len(report.diagnostics)
        try:
            checker(spec, verify, report)
        except VerificationError as exc:
            report.diagnostics.extend(exc.diagnostics)
            if len(report.diagnostics) == diagnostics_before:
                report.error("check.failed", f"{spec.label()}: {exc}")
        except ReproError as exc:
            report.error(
                "check.failed",
                f"{spec.label()}: {type(exc).__name__}: {exc}",
                job=spec.label(),
            )
        clean = len(report.errors) == errors_before
        report.info(
            "check.spec",
            f"{spec.label()}: {'clean' if clean else 'dirty'}",
            job=spec.label(),
        )
    return report
