"""Deterministic fault injection: prove failures surface, never wrong numbers.

Driven by a single seed, the harness injects one representative of every
fault class the runtime can meet in production — a malformed circuit, a
NaN annealer cost, a corrupted cache entry, a dying worker process, a hung
job — and runs them through the real :class:`~repro.runtime.JobEngine`.
The contract under test: every fault either surfaces as a typed
:class:`~repro.errors.ReproError` (classified by the taxonomy) or degrades
gracefully to a verified value — silence and wrong numbers are both bugs.

Everything is reproducible: the fault plan, the cache-corruption mode and
the injected payloads are all pure functions of the seed.

The chaos job types are registered on import; the job-type registry
(:func:`repro.runtime.spec.resolve_job_type`) imports this module on demand
for any ``chaos_*`` kind, so the faults also resolve inside pool workers.
"""

from __future__ import annotations

from ..assign import assign_design
import json
import os
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import NonFiniteCostError, PackageModelError
from ..runtime.cache import ResultCache
from ..runtime.engine import JobEngine, JobOutcome
from ..runtime.spec import JobSpec, register_job_type

#: The injectable fault classes, in plan order.
FAULTS = (
    "malformed_circuit",
    "nan_cost",
    "corrupt_cache",
    "worker_crash",
    "timeout",
    "torn_journal",
    "corrupt_checkpoint",
    "journal_worker_crash",
)

#: Cache-corruption modes :func:`corrupt_cache_entry` can apply.
CACHE_CORRUPTIONS = ("truncate", "garble", "digest", "schema", "nan_value")


# -- chaos job types -------------------------------------------------------


@register_job_type("chaos_malformed")
def _chaos_malformed(params: dict, seed: Optional[int]):
    """Build a deterministically malformed circuit; always raises typed."""
    from ..package import quadrant_from_rows

    variant = params.get("variant", "duplicate-ball")
    if variant == "duplicate-ball":
        # net 3 owns two bump balls
        quadrant_from_rows([[1, 2, 3], [3, 4]])
    elif variant == "empty-row":
        quadrant_from_rows([[1, 2], []])
    elif variant == "tier-range":
        from ..circuits import build_design, table1_circuit
        from ..package import PackageDesign, StackingConfig

        design = build_design(table1_circuit(1, tier_count=4), seed=0)
        # rebuild with a 1-tier stack while nets still sit on tiers 2..4
        PackageDesign(
            design.quadrants, design.technology, StackingConfig(tier_count=1)
        )
    raise PackageModelError(f"malformed variant {variant!r} unexpectedly built")


@register_job_type("chaos_nan_cost")
def _chaos_nan_cost(params: dict, seed: Optional[int]):
    """Run a tiny exchange whose IR proxy returns NaN mid-anneal."""
    from ..assign import DFAAssigner
    from ..circuits import build_design, table1_circuit
    from ..exchange import FingerPadExchanger, SAParams

    poison_after = int(params.get("poison_after", 3))
    calls = {"n": 0}

    def poisoned_ir_proxy(fractions):
        from ..power import compact_ir_cost

        calls["n"] += 1
        if calls["n"] > poison_after:
            return float("nan")
        return compact_ir_cost(fractions)

    design = build_design(table1_circuit(1), seed=0)
    exchanger = FingerPadExchanger(
        design,
        params=SAParams(initial_temp=0.03, final_temp=0.01, cooling=0.5,
                        moves_per_temp=10),
        ir_proxy=poisoned_ir_proxy,
        polish_passes=0,
    )
    result = exchanger.run(assign_design(DFAAssigner(), design, seed=seed), seed=seed)
    # Unreachable when the guard works: the poisoned proxy must trip
    # NonFiniteCostError long before the anneal completes.
    return {"best_cost": result.stats.best_cost}


@register_job_type("chaos_crash")
def _chaos_crash(params: dict, seed: Optional[int]):
    """Kill the pool worker outright; survive (and answer) when serial."""
    if os.getpid() != int(params["parent_pid"]):
        os._exit(17)
    return {"survived": True, "fault": "worker_crash"}


@register_job_type("chaos_hang")
def _chaos_hang(params: dict, seed: Optional[int]):
    """Sleep far past the engine's per-job timeout."""
    time.sleep(float(params.get("sleep", 30.0)))
    return {"overslept": True}


@register_job_type("chaos_bad_value")
def _chaos_bad_value(params: dict, seed: Optional[int]):
    """Return a NaN-poisoned result until a marker says enough attempts.

    With ``fail_times=0`` the first value is already poisoned-free; with
    ``fail_times=1`` the first execution returns NaN and a re-run (the
    ``repair`` policy) returns the honest number — modelling a transient
    worker that corrupted one result.
    """
    marker = params.get("marker")
    attempts = 1
    if marker:
        with open(marker, "a") as handle:
            handle.write("x")
        attempts = os.path.getsize(marker)
    if attempts <= int(params.get("fail_times", 0)):
        return {"max_density": float("nan"), "attempt": attempts}
    return {"max_density": 7, "attempt": attempts}


# -- cache corruption ------------------------------------------------------


def corrupt_cache_entry(
    cache: ResultCache,
    spec: JobSpec,
    seed: int = 0,
    mode: Optional[str] = None,
) -> str:
    """Deterministically damage the cache entry of *spec*; returns the mode.

    The entry must exist.  ``mode`` (or a seed-chosen one) is applied:

    - ``truncate``: cut the JSON file mid-payload (killed writer);
    - ``garble``: overwrite a byte span with noise (disk corruption);
    - ``digest``: keep valid JSON but break the payload digest (entry
      swapped/moved between specs);
    - ``schema``: rewrite the schema version (stale library format);
    - ``nan_value``: replace a numeric leaf with NaN (poisoned producer —
      only the engine's verify policy can catch this one).
    """
    rng = random.Random(seed)
    mode = mode if mode is not None else rng.choice(CACHE_CORRUPTIONS)
    if mode not in CACHE_CORRUPTIONS:
        raise ValueError(f"unknown corruption mode {mode!r}")
    path = cache.path_for(spec)
    text = path.read_text(encoding="utf-8")
    if mode == "truncate":
        path.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
    elif mode == "garble":
        start = rng.randrange(0, max(1, len(text) - 8))
        noise = "".join(rng.choice("!@#$%^&*") for __ in range(8))
        path.write_text(text[:start] + noise + text[start + 8:], encoding="utf-8")
    elif mode == "digest":
        payload = json.loads(text)
        payload["digest"] = "0" * 64
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    elif mode == "schema":
        payload = json.loads(text)
        payload["schema"] = -1
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    elif mode == "nan_value":
        payload = json.loads(text)
        payload["value"] = {"max_density": float("nan")}
        # json.dumps writes NaN as the (non-standard but parseable) token NaN
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    return mode


# -- the harness -----------------------------------------------------------


@dataclass(frozen=True)
class FaultReport:
    """What one injected fault did to the engine."""

    fault: str
    ok: bool
    error: Optional[str]
    error_class: Optional[str]
    degraded: bool
    value: object = None

    @property
    def contained(self) -> bool:
        """The contract: a typed failure, or a graceful (valid) result."""
        if self.ok:
            return True
        return self.error_class not in (None, "unknown")


class ChaosHarness:
    """Seed-driven fault injection against a real :class:`JobEngine`.

    Parameters
    ----------
    seed:
        Drives every random choice (corruption mode, spec seeds); two
        harnesses with the same seed and workdir inject byte-identical
        faults.
    workdir:
        Scratch directory for the cache under attack and marker files.
    """

    def __init__(self, seed: int, workdir, jobs: int = 2, telemetry=None) -> None:
        self.seed = int(seed)
        self.workdir = os.fspath(workdir)
        self.jobs = jobs
        self.telemetry = telemetry

    def plan(self) -> List[str]:
        """The fault classes this harness will inject, in order."""
        return list(FAULTS)

    def _engine(self, **overrides) -> JobEngine:
        options = dict(
            jobs=self.jobs,
            retries=0,
            backoff=0.001,
            verify="strict",
            telemetry=self.telemetry,
        )
        options.update(overrides)
        return JobEngine(**options)

    def _report(self, fault: str, outcome: JobOutcome, degraded: bool) -> FaultReport:
        return FaultReport(
            fault=fault,
            ok=outcome.ok,
            error=outcome.error,
            error_class=outcome.error_class,
            degraded=degraded,
            value=outcome.value,
        )

    def inject(self, fault: str) -> FaultReport:
        """Inject one fault class and report how the engine contained it."""
        rng = random.Random((self.seed, fault).__repr__())
        if fault == "malformed_circuit":
            variant = rng.choice(("duplicate-ball", "empty-row", "tier-range"))
            spec = JobSpec("chaos_malformed", {"variant": variant}, seed=self.seed)
            outcome = self._engine(jobs=1).run_one(spec)
            return self._report(fault, outcome, degraded=False)

        if fault == "nan_cost":
            spec = JobSpec(
                "chaos_nan_cost",
                {"poison_after": 2 + rng.randrange(4)},
                seed=self.seed,
            )
            outcome = self._engine(jobs=1).run_one(spec)
            return self._report(fault, outcome, degraded=False)

        if fault == "corrupt_cache":
            cache = ResultCache(os.path.join(self.workdir, "chaos-cache"))
            spec = JobSpec("chaos_bad_value", {"fail_times": 0}, seed=self.seed)
            engine = self._engine(jobs=1, cache=cache)
            first = engine.run_one(spec)
            mode = corrupt_cache_entry(cache, spec, seed=self.seed)
            again = self._engine(jobs=1, cache=cache).run_one(spec)
            degraded = not again.cached  # the poisoned entry was not served
            report = self._report(fault, again, degraded=degraded)
            if report.ok and again.value != first.value:
                # A corrupt entry must never change the answer.
                return FaultReport(
                    fault=fault, ok=False,
                    error=f"corrupted entry ({mode}) altered the value",
                    error_class="cache", degraded=degraded, value=again.value,
                )
            return report

        if fault == "worker_crash":
            spec = JobSpec(
                "chaos_crash", {"parent_pid": os.getpid()}, seed=self.seed
            )
            outcome = self._engine(jobs=max(2, self.jobs)).run([spec, spec])[0]
            return self._report(fault, outcome, degraded=True)

        if fault == "timeout":
            spec = JobSpec("chaos_hang", {"sleep": 20.0}, seed=self.seed)
            outcome = self._engine(
                jobs=max(2, self.jobs), timeout=0.3
            ).run([spec, spec])[0]
            return self._report(fault, outcome, degraded=False)

        if fault == "torn_journal":
            return self._inject_torn_journal()

        if fault == "corrupt_checkpoint":
            return self._inject_corrupt_checkpoint(rng)

        if fault == "journal_worker_crash":
            return self._inject_journal_worker_crash()

        raise ValueError(f"unknown fault {fault!r}; known: {FAULTS}")

    def _inject_torn_journal(self) -> FaultReport:
        """A kill -9 mid-append leaves a torn final journal line; replay
        must drop it, keep every settled record, and still raise typed on
        *interior* garbage (which is damage, not a crash signature)."""
        from ..errors import JournalCorruptionError
        from ..runtime.journal import JobJournal

        fault = "torn_journal"
        path = os.path.join(self.workdir, "chaos-journal.wal")
        spec = JobSpec("chaos_bad_value", {"fail_times": 0}, seed=self.seed)
        with JobJournal(path) as journal:
            first = self._engine(jobs=1, journal=journal).run_one(spec)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"rec": "sett')  # the torn tail of a dying append
        with JobJournal(path) as reopened:
            torn = reopened.diagnostics["torn_tail"]
            record = reopened.settled_record(spec.digest())
        if torn != 1 or record is None or record.get("value") != first.value:
            return FaultReport(
                fault=fault, ok=False,
                error="torn journal tail lost or altered the settled record",
                error_class="journal", degraded=True,
            )
        # Interior garbage: not the final line, so not a torn tail.
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(0, "NOT A JOURNAL RECORD\n")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        try:
            JobJournal(path)
        except JournalCorruptionError as exc:
            return FaultReport(
                fault=fault, ok=True, error=str(exc), error_class="journal",
                degraded=True, value={"torn_tail": torn},
            )
        return FaultReport(
            fault=fault, ok=False,
            error="interior journal corruption went undetected",
            error_class=None, degraded=False,
        )

    def _inject_corrupt_checkpoint(self, rng: random.Random) -> FaultReport:
        """A damaged SA checkpoint must read as absent (renamed aside,
        run restarts from scratch) — or raise typed under ``strict``."""
        from ..errors import CheckpointIntegrityError
        from ..exchange import SACheckpointer

        fault = "corrupt_checkpoint"
        path = os.path.join(self.workdir, "chaos-checkpoint.json")

        def write_and_garble() -> None:
            checkpointer = SACheckpointer(path, interval=5)
            checkpointer.save({"proposed": 5, "marker": "chaos"})
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            start = rng.randrange(0, max(1, len(text) - 8))
            noise = "".join(rng.choice("!@#$%^&*") for __ in range(8))
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text[:start] + noise + text[start + 8:])

        write_and_garble()
        resumed = SACheckpointer(path, interval=5).load()
        quarantined = os.path.exists(path + ".corrupt")
        write_and_garble()
        try:
            SACheckpointer(path, interval=5, strict=True).load()
            strict_typed = False
        except CheckpointIntegrityError:
            strict_typed = True
        ok = resumed is None and quarantined and strict_typed
        return FaultReport(
            fault=fault, ok=ok,
            error=None if ok else (
                f"corrupt checkpoint mishandled (resumed={resumed is not None}, "
                f"quarantined={quarantined}, strict_typed={strict_typed})"
            ),
            error_class="checkpoint", degraded=True,
            value={"quarantined": quarantined, "strict_typed": strict_typed},
        )

    def _inject_journal_worker_crash(self) -> FaultReport:
        """SIGKILL a pool worker mid-batch with the journal attached: the
        surviving job's value must be durably settled, and the crashed
        digest must never appear settled."""
        from ..runtime.journal import JobJournal

        fault = "journal_worker_crash"
        path = os.path.join(self.workdir, "chaos-journal-crash.wal")
        crash = JobSpec("chaos_crash", {"parent_pid": os.getpid()}, seed=self.seed)
        honest = JobSpec("chaos_bad_value", {"fail_times": 0}, seed=self.seed)
        with JobJournal(path) as journal:
            outcomes = self._engine(
                jobs=max(2, self.jobs), journal=journal
            ).run([crash, honest])
        with JobJournal(path) as replayed:
            records = {
                outcome.spec.digest():
                    replayed.settled_record(outcome.spec.digest())
                for outcome in outcomes
            }
            recovered = {spec.digest() for spec in replayed.take_recovered()}
        # The journal must agree with what the engine reported: a digest
        # the engine settled (including via its degraded serial re-run
        # after the worker died) replays with the identical value; a
        # digest it failed is never settled — either recorded failed or
        # reported for re-enqueue, but not a lie about finished work.
        mismatches = []
        for outcome in outcomes:
            record = records[outcome.spec.digest()]
            if outcome.ok:
                if record is None or record.get("value") != outcome.value:
                    mismatches.append(f"{outcome.spec.kind}: value not durable")
            elif record is not None:
                mismatches.append(f"{outcome.spec.kind}: failure settled")
        ok = not mismatches
        return FaultReport(
            fault=fault, ok=ok,
            error=None if ok else "; ".join(mismatches),
            error_class="journal", degraded=True,
            value={"recovered_inflight": sorted(recovered)},
        )

    def run(self) -> Dict[str, FaultReport]:
        """Inject every fault class; returns ``{fault: report}``."""
        return {fault: self.inject(fault) for fault in self.plan()}
