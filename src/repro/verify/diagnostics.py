"""Structured diagnostics: the unit of output of every invariant checker.

A checker never prints and never raises on its own; it appends
:class:`Diagnostic` records — a machine-readable code, a severity and a
human-readable message — to a :class:`VerificationReport`.  The recovery
policy layer then decides what a failed check *means*: raise
(:func:`VerificationReport.raise_if_errors`), repair, or degrade.
Keeping detection and reaction separate is what lets the same checkers
serve ``--verify strict`` and ``--verify repair`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import VerificationError

#: Severity levels, mildest first.
INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITIES = (INFO, WARNING, ERROR)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker.

    Attributes
    ----------
    code:
        Machine-readable dotted identifier (``"assign.monotonic"``,
        ``"power.nonfinite"``, ...).  The catalog lives in
        ``docs/robustness.md``; tests match on codes, not messages.
    severity:
        ``"info"`` | ``"warning"`` | ``"error"``.  Only errors make a
        report dirty.
    message:
        Human-readable explanation with the offending values inline.
    context:
        Optional structured details (side, net ids, measured values) for
        telemetry and tooling.
    """

    code: str
    severity: str
    message: str
    context: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class VerificationReport:
    """An ordered collection of diagnostics from one verification pass."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        severity: str,
        message: str,
        **context,
    ) -> Diagnostic:
        diagnostic = Diagnostic(
            code=code, severity=severity, message=message, context=context
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def error(self, code: str, message: str, **context) -> Diagnostic:
        return self.add(code, ERROR, message, **context)

    def warning(self, code: str, message: str, **context) -> Diagnostic:
        return self.add(code, WARNING, message, **context)

    def info(self, code: str, message: str, **context) -> Diagnostic:
        return self.add(code, INFO, message, **context)

    def extend(self, other: "VerificationReport") -> "VerificationReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # -- interrogation -----------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostics were recorded."""
        return not self.errors

    def codes(self, severity: Optional[str] = None) -> List[str]:
        """The (ordered, possibly repeating) codes, optionally filtered."""
        return [
            d.code
            for d in self.diagnostics
            if severity is None or d.severity == severity
        ]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    # -- reactions ---------------------------------------------------------

    def raise_if_errors(self) -> "VerificationReport":
        """Raise :class:`VerificationError` when any error was recorded."""
        errors = self.errors
        if errors:
            head = "; ".join(str(d) for d in errors[:3])
            more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
            subject = f"{self.subject}: " if self.subject else ""
            raise VerificationError(
                f"{subject}{len(errors)} invariant violation(s): {head}{more}",
                diagnostics=errors,
            )
        return self

    def render(self) -> str:
        """Human-readable report, one diagnostic per line."""
        subject = self.subject or "verification"
        if not self.diagnostics:
            return f"{subject}: clean"
        lines = [
            f"{subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(str(d) for d in self.diagnostics)
        return "\n".join(lines)


def merge(reports: Iterable[VerificationReport], subject: str = "") -> VerificationReport:
    """Fold several reports into one (diagnostics concatenated in order)."""
    merged = VerificationReport(subject=subject)
    for report in reports:
        merged.extend(report)
    return merged
