"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run <workload>``      run a workload on the job engine (parallel + cached)
``check <workload>``    deep-verify a workload's invariants (docs/robustness.md)
``table1``              print the test-circuit parameter table
``table2``              run the Random/IFA/DFA comparison (Table 2)
``table3``              run the exchange experiment (Table 3; slower)
``fig6``                run the real-chip IR-drop comparison (Fig. 6)
``assign <design.json>``   assign a JSON design and print the result
``route <design.json>``    assign + route, optionally exporting an SVG
``drc <design.json>``      design-rule check a JSON design
``stats <trace>``       analyse a trace: span tree, phases, SA curve, cache
``check-trace <trace>`` validate a trace against the event schema + span tree
``bench run``           execute registered benches into the perf ledger
``bench compare``       gate the latest ledger records against a baseline

``table2``/``table3``/``fig6`` accept ``--jobs N`` to fan their independent
jobs out over worker processes; ``run`` adds the result cache and a JSONL
telemetry trace on top (see docs/runtime.md).  ``--verify {off,strict,
repair}`` makes the engine re-check every job result (fresh or cached)
before it is tabulated: ``strict`` fails on an invalid value, ``repair``
recomputes it (see docs/robustness.md).  ``run --trace out.jsonl`` writes a
schema-versioned trace with hierarchical spans; ``run --profile cprofile``
adds per-job profiles to it (see docs/observability.md).
"""

from __future__ import annotations

from .assign import assign_design
import argparse
import contextlib
import os
import signal as _signal
import sys

from .assign import DFAAssigner, IFAAssigner, RandomAssigner
from .flow import compare_assigners, render_table1, render_table2
from .routing import MonotonicRouter, max_density_of_design


def _cmd_table1(args) -> int:
    print(render_table1())
    return 0


class _DrainSignal(KeyboardInterrupt):
    """SIGTERM/SIGINT during a run, carrying the signal number.

    Subclasses :class:`KeyboardInterrupt` so it rides the engine's
    control-flow path (never swallowed, never retried) out of a blocking
    ``future.result()`` wait.
    """

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(f"signal {signum}")


@contextlib.contextmanager
def _drain_on_signal():
    """Convert SIGTERM/SIGINT into :class:`_DrainSignal` for the block.

    Lets ``repro run`` (and friends) exit ``128+signum`` after flushing
    sinks instead of dying with a traceback; previous handlers are
    restored on the way out.  A non-main thread (tests driving ``main()``
    directly) cannot install handlers — the block simply runs bare.
    """

    def handler(signum, frame):
        raise _DrainSignal(signum)

    previous = {}
    for signum in (_signal.SIGTERM, _signal.SIGINT):
        try:
            previous[signum] = _signal.signal(signum, handler)
        except ValueError:  # pragma: no cover - not the main thread
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            _signal.signal(signum, old)


def _run_workload(
    name: str,
    seed=None,
    grid=None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
    trace=None,
    timeout=None,
    retries: int = 1,
    verify: str = "off",
    backend: str = "auto",
    profile=None,
    tempering: int = 0,
    swap_stride: int = 2,
    ladder: float = 1.25,
) -> int:
    """Execute one named workload on the job engine and print its table."""
    from .obs.schema import SCHEMA_VERSION
    from .obs.spans import span
    from .runtime import JobEngine, JsonlSink, ResultCache, Telemetry
    from .runtime.spec import JobSpec
    from .runtime.workloads import WORKLOADS

    workload = WORKLOADS[name]
    seed = workload.default_seed if seed is None else seed
    grid = workload.default_grid if grid is None else grid
    specs = workload.build(seed, grid)
    if backend != "auto":
        # Only exchange-running jobs understand the knob; leaving it out of
        # the default params keeps established cache digests stable.
        specs = [
            JobSpec(spec.kind, dict(spec.params, backend=backend), seed=spec.seed)
            if spec.kind == "codesign"
            else spec
            for spec in specs
        ]
    # ExitStack owns the sink: however this function exits — success, a job
    # failure, or an exception anywhere below — the trace file is flushed
    # and closed exactly once (the pre-obs code leaked the handle when the
    # engine raised mid-run).
    with contextlib.ExitStack() as stack:
        sink = stack.enter_context(JsonlSink(trace)) if trace else None
        telemetry = Telemetry(sink=sink)
        meta = {"workload": name, "jobs": jobs, "verify": verify, "backend": backend}
        if seed is not None:
            meta["seed"] = seed
        if profile:
            meta["profile"] = profile
        telemetry.emit(
            "trace.meta", schema=SCHEMA_VERSION, tool="repro", command="run", **meta
        )
        cache = ResultCache(cache_dir) if use_cache else None
        engine = JobEngine(
            jobs=jobs,
            cache=cache,
            telemetry=telemetry,
            timeout=timeout,
            retries=retries,
            verify=verify,
            profile=profile,
        )
        print(
            f"running {len(specs)} {name} job(s) "
            f"(jobs={jobs}, seed={seed}, cache={'on' if cache else 'off'})...",
            file=sys.stderr,
        )
        try:
            with _drain_on_signal(), span("run", telemetry, workload=name):
                if tempering:
                    outcomes = _run_tempering_specs(
                        engine,
                        specs,
                        chains=tempering,
                        swap_stride=swap_stride,
                        ladder=ladder,
                    )
                else:
                    outcomes = engine.run(specs)
        except _DrainSignal as exc:
            # Graceful drain: release the worker pool, let the ExitStack
            # flush/close the trace sink, and exit with the conventional
            # 128+signum so supervisors can tell a signal from a failure.
            engine.close()
            print(
                f"interrupted by signal {exc.signum}; "
                f"trace flushed, exiting {128 + exc.signum}",
                file=sys.stderr,
            )
            return 128 + exc.signum
        failures = [outcome for outcome in outcomes if not outcome.ok]
        if failures:
            for outcome in failures:
                print(f"FAILED {outcome.spec.label()}: {outcome.error}", file=sys.stderr)
            return 1
        print(workload.render(outcomes))
        counters = telemetry.snapshot()
        end = telemetry.events_named("engine.end")[-1]
        summary = (
            f"done in {end['seconds']:.2f}s: {len(specs)} jobs, "
            f"{int(counters.get('cache.hits', 0))} cache hit(s), "
            f"{int(counters.get('cache.misses', 0))} miss(es)"
        )
        if trace:
            summary += f"; trace written to {trace}"
        print(summary, file=sys.stderr)
        return 0


def _run_tempering_specs(
    engine, specs, chains: int, swap_stride: int, ladder: float
):
    """Run each codesign spec as a parallel-tempering run; others normally.

    The coordinator fans its per-chain segment jobs out through *engine*
    (so ``--jobs`` and the cache apply); each codesign spec's result is
    wrapped back into a :class:`JobOutcome` so the workload renderers see
    the familiar shape.
    """
    import time

    from .exchange import SAParams
    from .runtime.engine import JobOutcome
    from .runtime.jobs import _build_circuit_design, _sa_params
    from .tune import TemperingConfig, run_tempering

    config = TemperingConfig(
        chains=chains, swap_stride=swap_stride, ladder_ratio=ladder
    )
    outcomes = []
    for spec in specs:
        if spec.kind != "codesign":
            outcomes.extend(engine.run([spec]))
            continue
        schedule = _sa_params(spec.params)
        if isinstance(schedule, str):
            from .presets import resolve_sa_params

            schedule = resolve_sa_params(
                schedule, _build_circuit_design(spec.params)
            )
        started = time.perf_counter()
        try:
            value = run_tempering(
                engine,
                circuit=int(spec.params["circuit"]),
                config=config,
                schedule=schedule or SAParams(),
                seed=spec.seed if spec.seed is not None else 0,
                tiers=int(spec.params.get("tiers", 1)),
                grid=int(spec.params.get("grid", 32)),
            )
        except Exception as exc:
            outcomes.append(
                JobOutcome(
                    spec=spec,
                    error=str(exc),
                    error_class=type(exc).__name__,
                    attempts=1,
                    seconds=round(time.perf_counter() - started, 6),
                )
            )
            continue
        outcomes.append(
            JobOutcome(
                spec=spec,
                value=value,
                attempts=1,
                seconds=round(time.perf_counter() - started, 6),
            )
        )
    return outcomes


def _cmd_run(args) -> int:
    return _run_workload(
        args.workload,
        seed=args.seed,
        grid=args.grid,
        jobs=args.jobs,
        use_cache=args.cache,
        cache_dir=args.cache_dir,
        trace=args.trace,
        timeout=args.timeout,
        retries=args.retries,
        verify=args.verify,
        backend=args.backend,
        profile=args.profile,
        tempering=args.tempering,
        swap_stride=args.swap_stride,
        ladder=args.ladder,
    )


def _render_tune_front(report) -> str:
    """Text table of a sweep report's Pareto front, knee starred."""
    knee = report.get("knee")
    lines = [
        f'tune sweep: {report.get("circuit", "?")} '
        f'({len(report.get("cells", []))} schedules, '
        f'front {len(report.get("front", []))})',
        "    T0       alpha  moves    cost        seconds",
    ]
    for cell in report.get("front", []):
        schedule = cell["schedule"]
        star = " *" if knee is not None and cell == knee else ""
        lines.append(
            f'    {schedule["initial_temp"]:<8g} '
            f'{schedule["cooling"]:<6g} '
            f'{schedule["moves_per_temp"]:<8d} '
            f'{cell["cost"]:<11.6g} '
            f'{cell["seconds"]:<10.6g}{star}'
        )
    if knee is not None:
        schedule = knee["schedule"]
        lines.append(
            f'  knee (recommended): T0={schedule["initial_temp"]:g} '
            f'alpha={schedule["cooling"]:g} '
            f'moves={schedule["moves_per_temp"]}'
        )
    return "\n".join(lines)


def _cmd_tune(args) -> int:
    """Schedule auto-tuning: grid sweep or re-render a saved report."""
    import json

    if args.action == "pareto":
        from .tune import knee_point, pareto_front, render_pareto_svg

        if not args.report:
            print("tune pareto needs --report <tune_pareto_*.json>", file=sys.stderr)
            return 2
        try:
            with open(args.report, encoding="utf-8") as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot load tune report: {exc}", file=sys.stderr)
            return 2
        # Re-derive front + knee from the cells so a hand-edited or
        # merged report stays self-consistent.
        report["front"] = pareto_front(report.get("cells", []))
        report["knee"] = knee_point(report["front"])
        if args.svg:
            with open(args.svg, "w", encoding="utf-8") as handle:
                handle.write(render_pareto_svg(report))
            print(f"wrote {args.svg}", file=sys.stderr)
        print(_render_tune_front(report))
        return 0

    from .obs.schema import SCHEMA_VERSION
    from .obs.spans import span
    from .runtime import JobEngine, JsonlSink, ResultCache, Telemetry
    from .tune import SweepGrid, run_sweep, write_report

    grid_kwargs = {
        "final_temp": args.final_temp,
        "replicates": args.replicates,
    }
    if args.t0 is not None:
        grid_kwargs["initial_temps"] = args.t0
    if args.alpha is not None:
        grid_kwargs["coolings"] = args.alpha
    if args.moves is not None:
        grid_kwargs["moves"] = args.moves
    grid = SweepGrid(**grid_kwargs)
    with contextlib.ExitStack() as stack:
        sink = stack.enter_context(JsonlSink(args.trace)) if args.trace else None
        telemetry = Telemetry(sink=sink)
        telemetry.emit(
            "trace.meta",
            schema=SCHEMA_VERSION,
            tool="repro",
            command="tune",
            seed=args.seed,
            jobs=args.jobs,
        )
        cache = ResultCache(args.cache_dir) if args.cache else None
        engine = JobEngine(
            jobs=args.jobs, cache=cache, telemetry=telemetry
        )
        print(
            f"sweeping {grid.cell_count()} cells on circuit{args.circuit} "
            f"(jobs={args.jobs}, seed={args.seed}, "
            f"cache={'on' if cache else 'off'})...",
            file=sys.stderr,
        )
        try:
            with _drain_on_signal(), span("tune", telemetry):
                report, outcomes = run_sweep(
                    engine,
                    args.circuit,
                    grid=grid,
                    seed=args.seed,
                    tiers=args.tiers,
                    backend=args.backend,
                )
        except _DrainSignal as exc:
            engine.close()
            print(
                f"interrupted by signal {exc.signum}; exiting {128 + exc.signum}",
                file=sys.stderr,
            )
            return 128 + exc.signum
        except RuntimeError as exc:
            print(f"tune sweep failed: {exc}", file=sys.stderr)
            return 1
        written = write_report(report, args.out)
        print(_render_tune_front(report))
        hits = sum(1 for outcome in outcomes if outcome.cached)
        summary = (
            f"{len(outcomes)} cells, {hits} cache hit(s); wrote "
            + ", ".join(written)
        )
        if args.trace:
            summary += f"; trace written to {args.trace}"
        print(summary, file=sys.stderr)
        return 0


def _cmd_stats(args) -> int:
    """Analyse a trace (or compare bench records with ``--compare``).

    ``--compare`` accepts either two ``BENCH_*.json`` records (pairwise
    diff, as before) or one/many history sources — a
    ``BENCH_history.jsonl`` ledger or 3+ records — rendered as an N-way
    per-metric trajectory table with sparklines.
    """
    import json

    if args.compare:
        from .obs import ledger as _ledger

        paths = args.compare
        if len(paths) == 2 and not any(
            str(p).endswith(".jsonl") for p in paths
        ):
            from .obs.bench import (
                compare_bench_records,
                load_bench_record,
                render_compare,
            )

            try:
                old = load_bench_record(paths[0])
                new = load_bench_record(paths[1])
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"cannot load bench record: {exc}", file=sys.stderr)
                return 2
            diff = compare_bench_records(old, new)
            if args.format == "json":
                print(json.dumps(diff, indent=2, sort_keys=True))
            else:
                print(render_compare(diff))
            return 0

        # N-way: flatten every source (history files contribute all their
        # records, .json files one each) into one chronological stream.
        records = []
        for path in paths:
            if str(path).endswith(".jsonl"):
                loaded = _ledger.load_history(path)
                if not loaded:
                    print(f"no ledger records in {path}", file=sys.stderr)
                    return 2
                records.extend(loaded)
            else:
                from .obs.bench import load_bench_record

                try:
                    records.append(load_bench_record(path))
                except (OSError, ValueError, json.JSONDecodeError) as exc:
                    print(f"cannot load bench record: {exc}", file=sys.stderr)
                    return 2
        if args.format == "json":
            print(json.dumps(records, indent=2, sort_keys=True))
        else:
            print(_ledger.history_table(records))
        return 0

    if not args.trace:
        print("stats needs a trace file (or --compare OLD NEW)", file=sys.stderr)
        return 2
    from .obs.stats import render_stats, stats_summary
    from .obs.trace import load_trace, write_chrome

    try:
        events, problems = load_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    for problem in problems:
        print(f"warning: {args.trace}: {problem}", file=sys.stderr)
    if args.chrome:
        write_chrome(events, args.chrome)
        print(f"Chrome trace written to {args.chrome} "
              "(load in Perfetto or chrome://tracing)", file=sys.stderr)
    if args.curves:
        from .obs.curves import write_curves

        written = write_curves(events, args.curves_dir)
        if written:
            for path in written:
                print(f"wrote {path}", file=sys.stderr)
        else:
            print("no sa.curve events in trace", file=sys.stderr)
    summary = stats_summary(events)
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_stats(summary, top=args.top))
    return 0


def _cmd_bench(args) -> int:
    """The perf-regression ledger: run registered benches / gate on them."""
    from .obs import ledger as _ledger

    if args.action == "run":
        only = args.only.split(",") if args.only else None
        records = _ledger.run_ledger(
            args.bench_dir, args.history, only=only
        )
        if not records:
            print(
                f"no registered benches under {args.bench_dir} "
                "(a module registers by defining ledger_metrics())",
                file=sys.stderr,
            )
            return 2
        print(
            f"{len(records)} record(s) appended to "
            f"{args.history or _ledger.DEFAULT_HISTORY}"
        )
        return 0
    result = _ledger.compare_ledger(
        args.history,
        baseline_path=args.baseline,
        against=args.against,
        gate_pct=args.gate,
    )
    for row in result["rows"]:
        print(row)
    if result["failures"]:
        for failure in result["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"ledger gate passed (gate {args.gate:g}%)")
    return 0


def _cmd_check_trace(args) -> int:
    """Validate a trace: event schema + a single rooted span tree."""
    from .obs.trace import load_trace
    from .verify import check_trace_events

    try:
        events, problems = load_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    report = check_trace_events(events, subject=str(args.trace))
    for problem in problems:
        report.error("trace.malformed-line", problem)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_check(args) -> int:
    from .verify import check_workload

    if args.verify == "off":
        print("check requires an active policy (strict or repair)", file=sys.stderr)
        return 2
    report = check_workload(
        args.workload, seed=args.seed, grid=args.grid, verify=args.verify
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_table2(args) -> int:
    if args.jobs > 1 or args.verify != "off":
        return _run_workload(
            "table2", seed=args.seed, jobs=args.jobs, verify=args.verify
        )
    from .circuits import build_table1_designs

    table = compare_assigners(build_table1_designs(), seed=args.seed)
    print(render_table2(table))
    return 0


def _cmd_table3(args) -> int:
    if args.jobs > 1 or args.verify != "off":
        return _run_workload(
            "table3",
            seed=args.seed,
            grid=args.grid,
            jobs=args.jobs,
            verify=args.verify,
            backend=args.backend,
        )
    from .circuits import build_design, table1_circuit
    from .flow import CoDesignFlow, render_table3
    from .power import PowerGridConfig

    flow = CoDesignFlow(
        grid_config=PowerGridConfig(size=args.grid), backend=args.backend
    )
    results = {}
    for tiers in (1, 4):
        runs = {}
        for index in range(1, 6):
            design = build_design(table1_circuit(index, tier_count=tiers), seed=0)
            print(f"running {design.name} (psi={tiers})...", file=sys.stderr)
            runs[design.name] = flow.run(design, seed=args.seed)
        results[tiers] = runs
    print(render_table3(results[1], results[4]))
    return 0


def _cmd_fig6(args) -> int:
    if args.jobs > 1 or args.verify != "off":
        return _run_workload(
            "fig6", seed=args.seed, jobs=args.jobs, verify=args.verify
        )
    from .circuits import run_fig6
    from .flow import render_fig6

    print(render_fig6(run_fig6(seed=args.seed)))
    return 0


def _cmd_fuzz(args) -> int:
    """Differential fuzzing: generate + check, or replay the corpus."""
    import contextlib as _contextlib

    from .fuzz import replay_corpus, run_fuzz
    from .obs.schema import SCHEMA_VERSION
    from .runtime import JsonlSink, Telemetry

    with _contextlib.ExitStack() as stack:
        sink = stack.enter_context(JsonlSink(args.trace)) if args.trace else None
        telemetry = Telemetry(sink=sink)
        telemetry.emit(
            "trace.meta", schema=SCHEMA_VERSION, tool="repro", command="fuzz"
        )
        if args.action == "replay":
            report = replay_corpus(args.corpus, telemetry=telemetry)
        else:
            try:
                report = run_fuzz(
                    cases=args.cases,
                    seed=args.seed,
                    oracles=args.oracle,
                    minutes=args.minutes,
                    corpus_dir=args.corpus,
                    telemetry=telemetry,
                    shrink=not args.no_shrink,
                )
            except KeyError as exc:
                print(f"fuzz: {exc}", file=sys.stderr)
                return 2
        print(report.render())
        if args.trace:
            print(f"trace written to {args.trace}", file=sys.stderr)
        return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    """Run the long-running co-design daemon (see docs/serving.md)."""
    from .serve import ServeConfig, serve_main

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache=args.cache,
        cache_dir=args.cache_dir,
        max_cache_bytes=args.max_cache_bytes,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        timeout=args.timeout,
        retries=args.retries,
        verify=args.verify,
        trace=args.trace,
        drain_deadline=args.drain_deadline,
        journal=args.journal,
    )
    return serve_main(config)


def _cmd_journal(args) -> int:
    """Inspect (and optionally compact) a job journal file."""
    import json

    from .errors import JournalError
    from .runtime.journal import JobJournal

    if not os.path.exists(args.path):
        print(f"no journal at {args.path}", file=sys.stderr)
        return 2
    try:
        # compact_bytes=None: inspection must never rewrite as a side
        # effect; --compact below is the only write this command does.
        with JobJournal(args.path, compact_bytes=None) as journal:
            if args.compact:
                kept = journal.compact()
                # stderr: `--json` consumers parse stdout as one document.
                print(f"compacted to {kept} live record(s)", file=sys.stderr)
            summary = journal.summary()
    except JournalError as exc:
        print(f"journal error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"journal {summary['path']}")
    print(f"  {summary['bytes']} bytes, seq {summary['seq']}")
    records = summary["records"]
    print(
        "  records: "
        + ", ".join(f"{name}={records[name]}" for name in sorted(records))
    )
    print(
        f"  live: {summary['settled']} settled, "
        f"{summary['inflight']} in-flight, {summary['failed']} failed"
    )
    diagnostics = {
        name: count
        for name, count in summary["diagnostics"].items()
        if count
    }
    if diagnostics:
        print(
            "  diagnostics: "
            + ", ".join(f"{name}={count}" for name, count in sorted(diagnostics.items()))
        )
    return 0


def _load(path):
    from .io import load_design

    return load_design(path)


def _assigner(name: str):
    return {
        "random": RandomAssigner(),
        "ifa": IFAAssigner(),
        "dfa": DFAAssigner(),
    }[name]


def _cmd_assign(args) -> int:
    design = _load(args.design)
    assignments = assign_design(_assigner(args.method), design, seed=args.seed)
    print(design.describe())
    for side, assignment in assignments.items():
        print(f"{side.value}: {assignment.order}")
    print(f"max density: {max_density_of_design(assignments)}")
    if args.output:
        from .io import save_assignments

        save_assignments(assignments, args.output)
        print(f"assignment written to {args.output}")
    return 0


def _cmd_route(args) -> int:
    design = _load(args.design)
    assignments = assign_design(_assigner(args.method), design, seed=args.seed)
    router = MonotonicRouter()
    total_length = 0.0
    worst = 0
    for side, assignment in assignments.items():
        result = router.route(assignment)
        total_length += result.total_routed_length
        worst = max(worst, result.max_density)
        if args.svg:
            from .io import save_routing_svg

            path = f"{args.svg}_{side.value}.svg"
            save_routing_svg(assignment, result, path)
            print(f"wrote {path}")
        if args.csv:
            from .routing import write_routing_csv

            path = f"{args.csv}_{side.value}.csv"
            write_routing_csv(assignment, result, path)
            print(f"wrote {path}")
    print(f"max density: {worst}")
    print(f"total routed length: {total_length:.2f} um")
    return 0


def _cmd_report(args) -> int:
    from .flow import generate_report

    generate_report(
        args.output,
        seed=args.seed,
        grid_size=args.grid,
        include_table3=not args.quick,
        include_fig6=not args.quick,
    )
    print(f"report written to {args.output}")
    return 0


def _cmd_drc(args) -> int:
    from .package.validate import check_design

    design = _load(args.design)
    assignments = assign_design(DFAAssigner(), design)
    from .routing import max_density as quadrant_density

    densities = {
        side: quadrant_density(assignment)
        for side, assignment in assignments.items()
    }
    report = check_design(design, max_density=densities)
    print(report.render())
    return 0 if report.is_clean else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _csv_floats(text: str) -> tuple:
    try:
        return tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a float list: {text!r}") from None


def _csv_ints(text: str) -> tuple:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int list: {text!r}") from None


def _add_verify_flag(parser, default: str = "off") -> None:
    from .verify import CLI_POLICIES

    parser.add_argument(
        "--verify",
        choices=CLI_POLICIES,
        default=default,
        help="result-verification policy (see docs/robustness.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Package routability- and IR-drop-aware finger/pad planning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1").set_defaults(func=_cmd_table1)

    from .runtime.workloads import WORKLOADS

    prun = sub.add_parser(
        "run", help="run a workload on the job engine (parallel + cached)"
    )
    prun.add_argument(
        "workload",
        nargs="?",
        default="table2",
        choices=sorted(WORKLOADS),
        help="evaluation target (default: table2)",
    )
    prun.add_argument(
        "--jobs", type=_positive_int, default=1, help="worker processes"
    )
    prun.add_argument(
        "--seed", type=int, default=None, help="base seed (workload default if omitted)"
    )
    prun.add_argument(
        "--grid", type=int, default=None, help="power grid size (workload default)"
    )
    prun.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve/store results in the digest-keyed disk cache",
    )
    prun.add_argument(
        "--cache-dir", default=None, help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)"
    )
    prun.add_argument("--trace", default=None, help="write a JSONL telemetry trace here")
    prun.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    prun.add_argument(
        "--retries", type=int, default=1, help="retry attempts for failing jobs"
    )
    prun.add_argument(
        "--backend",
        choices=("auto", "object", "array", "exact"),
        default="auto",
        help="exchange cost backend for codesign jobs (auto picks by size)",
    )
    prun.add_argument(
        "--profile",
        choices=("cprofile", "sample"),
        default=None,
        help="profile each job; results land in the trace as 'profile' events",
    )
    prun.add_argument(
        "--tempering",
        type=_positive_int,
        default=0,
        metavar="K",
        help="run codesign jobs as K-chain replica-exchange parallel "
             "tempering through the engine (docs/tuning.md)",
    )
    prun.add_argument(
        "--swap-stride",
        type=int,
        default=2,
        help="temperature tiers between swap rounds (0 = multi-start SA, "
             "no exchanges); only with --tempering",
    )
    prun.add_argument(
        "--ladder",
        type=float,
        default=1.25,
        help="temperature ratio between adjacent chains; only with --tempering",
    )
    _add_verify_flag(prun)
    prun.set_defaults(func=_cmd_run)

    ptu = sub.add_parser(
        "tune",
        help="SA schedule auto-tuning: cached grid sweeps + Pareto fronts",
    )
    ptu.add_argument(
        "action",
        choices=("sweep", "pareto"),
        help="sweep: run the schedule grid through the engine; "
             "pareto: re-render a saved tune_pareto_*.json report",
    )
    ptu.add_argument(
        "--circuit", type=_positive_int, default=1,
        help="Table-1 circuit index to tune on (default: 1)",
    )
    ptu.add_argument(
        "--tiers", type=_positive_int, default=1,
        help="stacking tiers (psi) of the tuned design",
    )
    ptu.add_argument(
        "--t0", type=_csv_floats, default=None, metavar="CSV",
        help="comma-separated initial temperatures (default: 0.01,0.03,0.1)",
    )
    ptu.add_argument(
        "--alpha", type=_csv_floats, default=None, metavar="CSV",
        help="comma-separated cooling factors (default: 0.85,0.9,0.95)",
    )
    ptu.add_argument(
        "--moves", type=_csv_ints, default=None, metavar="CSV",
        help="comma-separated moves-per-temperature (default: 40,80,150)",
    )
    ptu.add_argument(
        "--final-temp", type=float, default=1e-4,
        help="shared final temperature of every swept schedule",
    )
    ptu.add_argument(
        "--replicates", type=_positive_int, default=2,
        help="seed replicates per schedule (averaged; default: 2)",
    )
    ptu.add_argument("--seed", type=int, default=0, help="base sweep seed")
    ptu.add_argument(
        "--jobs", type=_positive_int, default=1, help="worker processes"
    )
    ptu.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve/store cells from the digest-keyed disk cache",
    )
    ptu.add_argument(
        "--cache-dir", default=None,
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    ptu.add_argument(
        "--backend",
        choices=("auto", "object", "array", "exact"),
        default="auto",
        help="exchange cost backend for the swept anneals",
    )
    ptu.add_argument(
        "--out", default="results",
        help="directory for tune_pareto_<circuit>.json/.svg (default: results)",
    )
    ptu.add_argument(
        "--trace", default=None, help="write a JSONL telemetry trace here"
    )
    ptu.add_argument(
        "--report", default=None,
        help="saved tune_pareto_*.json to re-render (pareto action)",
    )
    ptu.add_argument(
        "--svg", default=None,
        help="also write the re-rendered SVG here (pareto action)",
    )
    ptu.set_defaults(func=_cmd_tune)

    pst = sub.add_parser(
        "stats", help="analyse a JSONL trace (span tree, phases, SA curve)"
    )
    pst.add_argument("trace", nargs="?", default=None, help="JSONL trace file")
    pst.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    pst.add_argument(
        "--top", type=_positive_int, default=10, help="span rows in the text report"
    )
    pst.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="also export Chrome trace_event JSON (Perfetto-loadable) here",
    )
    pst.add_argument(
        "--compare",
        nargs="+",
        default=None,
        metavar="RECORD",
        help="compare perf records instead of reading a trace: two "
             "BENCH_*.json files diff pairwise; a BENCH_history.jsonl "
             "(or 3+ records) renders an N-way trajectory table",
    )
    pst.add_argument(
        "--curves",
        action="store_true",
        help="render each sa.curve event in the trace to "
             "sa_curve_<circuit>.svg + .json under --curves-dir",
    )
    pst.add_argument(
        "--curves-dir",
        default="results",
        help="output directory for --curves (default: results)",
    )
    pst.set_defaults(func=_cmd_stats)

    pb = sub.add_parser(
        "bench",
        help="perf-regression ledger: run registered benches, gate on history",
    )
    pb.add_argument(
        "action",
        choices=("run", "compare"),
        help="run: execute ledger_metrics() benches and append to the "
             "history; compare: gate the latest records",
    )
    pb.add_argument(
        "--bench-dir", default="benchmarks",
        help="directory scanned for bench_*.py modules (default: benchmarks)",
    )
    pb.add_argument(
        "--history", default=None,
        help="ledger history path (default: results/BENCH_history.jsonl)",
    )
    pb.add_argument(
        "--only", default=None,
        help="comma-separated bench names to run (default: all registered)",
    )
    pb.add_argument(
        "--baseline", default=None,
        help="baseline spec file for compare "
             "(default: results/BENCH_baseline.json)",
    )
    pb.add_argument(
        "--against", default=None, metavar="REV",
        help="compare against the latest history records of this git rev "
             "(prefix match) instead of the baseline file",
    )
    pb.add_argument(
        "--gate", type=float, default=20.0,
        help="regression gate percentage for relative specs (default: 20)",
    )
    pb.set_defaults(func=_cmd_bench)

    pct = sub.add_parser(
        "check-trace", help="validate a trace: event schema + rooted span tree"
    )
    pct.add_argument("trace", help="JSONL trace file")
    pct.set_defaults(func=_cmd_check_trace)

    pchk = sub.add_parser(
        "check", help="deep-verify a workload's invariants without tabulating"
    )
    pchk.add_argument(
        "workload",
        nargs="?",
        default="smoke",
        choices=sorted(WORKLOADS),
        help="workload to verify (default: smoke)",
    )
    pchk.add_argument(
        "--seed", type=int, default=None, help="base seed (workload default if omitted)"
    )
    pchk.add_argument(
        "--grid", type=int, default=None, help="power grid size (workload default)"
    )
    _add_verify_flag(pchk, default="strict")
    pchk.set_defaults(func=_cmd_check)

    p2 = sub.add_parser("table2", help="run the Table-2 comparison")
    p2.add_argument("--seed", type=int, default=42)
    p2.add_argument("--jobs", type=_positive_int, default=1, help="worker processes")
    _add_verify_flag(p2)
    p2.set_defaults(func=_cmd_table2)

    p3 = sub.add_parser("table3", help="run the Table-3 exchange experiment")
    p3.add_argument("--seed", type=int, default=7)
    p3.add_argument("--grid", type=int, default=32, help="power grid size")
    p3.add_argument("--jobs", type=_positive_int, default=1, help="worker processes")
    p3.add_argument(
        "--backend",
        choices=("auto", "object", "array", "exact"),
        default="auto",
        help="exchange cost backend (auto picks by design size)",
    )
    _add_verify_flag(p3)
    p3.set_defaults(func=_cmd_table3)

    p6 = sub.add_parser("fig6", help="run the Fig.-6 real-chip comparison")
    p6.add_argument("--seed", type=int, default=2009)
    p6.add_argument("--jobs", type=_positive_int, default=1, help="worker processes")
    _add_verify_flag(p6)
    p6.set_defaults(func=_cmd_fig6)

    pa = sub.add_parser("assign", help="assign a JSON design")
    pa.add_argument("design")
    pa.add_argument("--method", choices=("random", "ifa", "dfa"), default="dfa")
    pa.add_argument("--seed", type=int, default=0)
    pa.add_argument("--output", help="write the assignment JSON here")
    pa.set_defaults(func=_cmd_assign)

    pr = sub.add_parser("route", help="assign and route a JSON design")
    pr.add_argument("design")
    pr.add_argument("--method", choices=("random", "ifa", "dfa"), default="dfa")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--svg", help="SVG path prefix, one file per side")
    pr.add_argument("--csv", help="per-net CSV path prefix, one file per side")
    pr.set_defaults(func=_cmd_route)

    pd = sub.add_parser("drc", help="design-rule check a JSON design")
    pd.add_argument("design")
    pd.set_defaults(func=_cmd_drc)

    from .fuzz.oracles import ORACLES

    pf = sub.add_parser(
        "fuzz",
        help="differential fuzzing across the redundant oracles",
    )
    pf.add_argument(
        "action",
        nargs="?",
        default="run",
        choices=("run", "replay"),
        help="run a campaign or replay the minimized corpus (default: run)",
    )
    pf.add_argument(
        "--cases", type=_positive_int, default=100, help="cases to generate"
    )
    pf.add_argument(
        "--minutes",
        type=float,
        default=None,
        help="wall-clock budget; stops early even with cases remaining",
    )
    pf.add_argument(
        "--oracle",
        action="append",
        choices=sorted(ORACLES),
        default=None,
        help="restrict to this oracle (repeatable; default: all)",
    )
    pf.add_argument("--seed", type=int, default=0, help="case-stream seed")
    pf.add_argument(
        "--corpus",
        default="tests/data/fuzz_corpus",
        help="corpus directory for minimized failures / replay",
    )
    pf.add_argument(
        "--no-shrink",
        action="store_true",
        help="record failures without delta-debugging them first",
    )
    pf.add_argument("--trace", default=None, help="write a JSONL telemetry trace here")
    pf.set_defaults(func=_cmd_fuzz)

    ps = sub.add_parser(
        "serve", help="run the co-design daemon (HTTP + SSE; docs/serving.md)"
    )
    ps.add_argument("--host", default="127.0.0.1", help="bind address")
    ps.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    ps.add_argument(
        "--workers", type=_positive_int, default=2,
        help="warm worker processes (1 = run jobs in the dispatcher)",
    )
    ps.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve/store results in the digest-keyed disk cache",
    )
    ps.add_argument(
        "--cache-dir", default=None,
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    ps.add_argument(
        "--max-cache-bytes", type=int, default=None,
        help="LRU-evict the cache past this size "
             "(default: $REPRO_CACHE_MAX_BYTES or unbounded)",
    )
    ps.add_argument(
        "--queue-limit", type=_positive_int, default=64,
        help="pending jobs beyond this are rejected with HTTP 429",
    )
    ps.add_argument(
        "--batch-window", type=float, default=0.01,
        help="seconds to coalesce distinct requests into one engine batch",
    )
    ps.add_argument(
        "--batch-max", type=_positive_int, default=16,
        help="max requests per engine batch",
    )
    ps.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    ps.add_argument(
        "--retries", type=int, default=1, help="retry attempts for failing jobs"
    )
    ps.add_argument(
        "--trace", default=None, help="write a JSONL telemetry trace here"
    )
    ps.add_argument(
        "--drain-deadline", type=float, default=10.0,
        help="seconds SIGTERM waits for in-flight jobs before giving up",
    )
    ps.add_argument(
        "--journal", default=None,
        help="persistent job journal (WAL): settled results and in-flight "
             "re-enqueues survive kill -9 (docs/robustness.md)",
    )
    _add_verify_flag(ps)
    ps.set_defaults(func=_cmd_serve)

    pj = sub.add_parser(
        "journal",
        help="inspect or compact a job journal (docs/robustness.md)",
    )
    pj.add_argument("path", help="journal file written by --journal/JobJournal")
    pj.add_argument(
        "--compact", action="store_true",
        help="rewrite keeping one record per live digest",
    )
    pj.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    pj.set_defaults(func=_cmd_journal)

    pp = sub.add_parser("report", help="regenerate the whole evaluation")
    pp.add_argument("--output", default="results/REPORT.md")
    pp.add_argument("--seed", type=int, default=7)
    pp.add_argument("--grid", type=int, default=32)
    pp.add_argument(
        "--quick", action="store_true", help="skip the slow Table-3/Fig-6 runs"
    )
    pp.set_defaults(func=_cmd_report)

    return parser


def _drain_broken_pipe() -> int:
    """Downstream closed our stdout (``repro ... | head``): normal pipeline
    behaviour, not an error.  Point stdout at devnull so the interpreter's
    exit-time flush cannot raise a second time."""
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    except (OSError, ValueError, AttributeError):
        # stdout may be detached, already closed, or a file-less object
        # (tests swap in StringIO-like stand-ins).
        pass
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        status = args.func(args)
        # Flush while the handler can still see the failure: with a
        # block-buffered stdout (the default when piping) a closed pipe
        # only surfaces at the interpreter's exit-time flush, outside any
        # try — so every subcommand, not just stats, must drain here.
        sys.stdout.flush()
        return status
    except BrokenPipeError:
        return _drain_broken_pipe()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
