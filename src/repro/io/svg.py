"""SVG rendering of routed quadrants (the pictures of paper Fig. 15).

Renders one quadrant's routing result: fingers along the top, bump-ball
rows below, vias at the ball corners, layer-1 wires as polylines and the
layer-2 hop dashed.  Colors distinguish supply nets from signal nets so the
effect of the exchange step is visible at a glance.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..assign import Assignment
from ..package import NetType
from ..routing import RoutingResult

_SIGNAL_COLOR = "#4477aa"
_POWER_COLOR = "#cc3311"
_GROUND_COLOR = "#009988"
_BALL_COLOR = "#bbbbbb"
_FINGER_COLOR = "#222222"


def _net_color(assignment: Assignment, net_id: int) -> str:
    net_type = assignment.quadrant.net(net_id).net_type
    if net_type is NetType.POWER:
        return _POWER_COLOR
    if net_type is NetType.GROUND:
        return _GROUND_COLOR
    return _SIGNAL_COLOR


def routing_to_svg(
    assignment: Assignment,
    result: RoutingResult,
    scale: float = 40.0,
    margin: float = 30.0,
) -> str:
    """Render a routed quadrant as an SVG document string."""
    quadrant = assignment.quadrant
    points = []
    for routed in result.nets.values():
        points.extend(routed.layer1_points)
        points.append(routed.ball)
    min_x = min(point.x for point in points)
    max_x = max(point.x for point in points)
    min_y = min(point.y for point in points)
    max_y = max(point.y for point in points)

    def sx(x: float) -> float:
        return margin + (x - min_x) * scale

    def sy(y: float) -> float:
        # SVG y grows downward; the canonical frame has fingers at the top.
        return margin + (max_y - y) * scale

    width = margin * 2 + (max_x - min_x) * scale
    height = margin * 2 + (max_y - min_y) * scale
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="100%" height="100%" fill="white"/>',
    ]

    ball_radius = 0.12 * scale
    for net in quadrant.netlist:
        routed = result.nets[net.id]
        color = _net_color(assignment, net.id)
        coords = " ".join(
            f"{sx(point.x):.1f},{sy(point.y):.1f}"
            for point in routed.layer1_points
        )
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.2"/>'
        )
        parts.append(
            f'<line x1="{sx(routed.via.x):.1f}" y1="{sy(routed.via.y):.1f}" '
            f'x2="{sx(routed.ball.x):.1f}" y2="{sy(routed.ball.y):.1f}" '
            f'stroke="{color}" stroke-width="1.0" stroke-dasharray="3,2"/>'
        )
        parts.append(
            f'<circle cx="{sx(routed.ball.x):.1f}" cy="{sy(routed.ball.y):.1f}" '
            f'r="{ball_radius:.1f}" fill="{_BALL_COLOR}" stroke="{color}"/>'
        )
        parts.append(
            f'<circle cx="{sx(routed.via.x):.1f}" cy="{sy(routed.via.y):.1f}" '
            f'r="{ball_radius * 0.5:.1f}" fill="{color}"/>'
        )
        finger = routed.finger
        parts.append(
            f'<rect x="{sx(finger.x) - 2:.1f}" y="{sy(finger.y) - 5:.1f}" '
            f'width="4" height="10" fill="{_FINGER_COLOR}"/>'
        )
    parts.append(
        f'<text x="{margin:.0f}" y="{height - 8:.0f}" font-size="12" '
        f'fill="#555">max density {result.max_density}, '
        f'routed length {result.total_routed_length:.1f} um</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def save_routing_svg(
    assignment: Assignment,
    result: RoutingResult,
    path: Union[str, Path],
    scale: float = 40.0,
) -> None:
    """Render and write the SVG to *path*."""
    Path(path).write_text(routing_to_svg(assignment, result, scale=scale))
