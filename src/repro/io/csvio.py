"""CSV export of experiment results (easy to diff / plot downstream)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Union

from ..flow.compare import ComparisonTable


def write_comparison_csv(
    table: ComparisonTable, path: Union[str, Path]
) -> None:
    """Write a Table-2-style assigner comparison as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["circuit", "assigner", "max_density", "wirelength", "flyline_length"]
        )
        for run in table.runs:
            writer.writerow(
                [
                    run.circuit,
                    run.assigner,
                    run.max_density,
                    f"{run.wirelength:.3f}",
                    f"{run.flyline_length:.3f}",
                ]
            )


def write_codesign_csv(results: Dict, path: Union[str, Path]) -> None:
    """Write Table-3-style co-design results as CSV.

    ``results`` maps circuit names to
    :class:`repro.flow.codesign.CoDesignResult`.
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "circuit",
                "density_after_assignment",
                "density_after_exchange",
                "ir_drop_before_v",
                "ir_drop_after_v",
                "ir_improvement",
                "omega_before",
                "omega_after",
                "bonding_improvement",
            ]
        )
        for circuit, result in results.items():
            writer.writerow(
                [
                    circuit,
                    result.density_after_assignment,
                    result.density_after_exchange,
                    f"{result.metrics_initial.max_ir_drop:.6f}",
                    f"{result.metrics_final.max_ir_drop:.6f}",
                    f"{result.ir_improvement:.4f}",
                    result.exchange.omega_before,
                    result.exchange.omega_after,
                    f"{result.bonding_improvement:.4f}",
                ]
            )


def read_rows(path: Union[str, Path]):
    """Read a CSV written by this module back as a list of dicts."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))
