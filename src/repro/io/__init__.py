"""Serialization and rendering: JSON designs, CSV results, SVG routing."""

from .csvio import read_rows, write_codesign_csv, write_comparison_csv
from .jsonio import (
    assignments_from_dict,
    assignments_to_dict,
    design_from_dict,
    design_to_dict,
    load_assignments,
    load_design,
    save_assignments,
    save_design,
)
from .svg import routing_to_svg, save_routing_svg

__all__ = [
    "assignments_from_dict",
    "assignments_to_dict",
    "design_from_dict",
    "design_to_dict",
    "load_assignments",
    "load_design",
    "read_rows",
    "routing_to_svg",
    "save_assignments",
    "save_design",
    "save_routing_svg",
    "write_codesign_csv",
    "write_comparison_csv",
]
