"""Terminal-friendly visualization helpers."""

from .ascii_art import (
    render_assignment,
    render_comparison,
    render_density_profile,
)
from .densitymap import render_current_map, render_irdrop_map
from .package_svg import package_to_svg, save_package_svg

__all__ = [
    "render_assignment",
    "render_comparison",
    "render_current_map",
    "render_density_profile",
    "render_irdrop_map",
    "package_to_svg",
    "save_package_svg",
]
