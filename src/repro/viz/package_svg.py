"""Whole-package SVG: all four quadrants rotated into the physical frame.

The per-quadrant renderer of :mod:`repro.io.svg` draws in the canonical
frame; this module composes a full package view (Fig. 2's vertical view):
each side's routed quadrant is rotated by the side's quarter turns around
the package centre, so the die sits in the middle with the four bump
trapezoids fanning out.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from ..geometry import Point, Side, canonical_to_side
from ..package import NetType

_COLORS = {
    NetType.SIGNAL: "#4477aa",
    NetType.POWER: "#cc3311",
    NetType.GROUND: "#009988",
}


def package_to_svg(
    design,
    assignments: Dict,
    routing_results: Dict,
    scale: float = 30.0,
    margin: float = 40.0,
) -> str:
    """Render routed quadrants of a whole design into one SVG document."""
    # the fingers sit at canonical y=0; pushing each quadrant outward by the
    # die half-size keeps the centre clear for the die outline
    die_half = max(
        quadrant.fingers.extent / 2.0 for __, quadrant in design
    ) * 0.25 + 1.0

    points = []
    elements = []
    for side, quadrant in design:
        if side not in routing_results:
            continue
        assignment = assignments[side]
        result = routing_results[side]
        for net in quadrant.netlist:
            routed = result.nets[net.id]
            color = _COLORS[net.net_type]
            physical = [
                canonical_to_side(
                    point.translated(0, -die_half), side, Point(0, 0)
                )
                for point in routed.layer1_points
            ]
            ball = canonical_to_side(
                routed.ball.translated(0, -die_half), side, Point(0, 0)
            )
            points.extend(physical)
            points.append(ball)
            elements.append((physical, ball, color))

    min_x = min(p.x for p in points)
    max_x = max(p.x for p in points)
    min_y = min(p.y for p in points)
    max_y = max(p.y for p in points)

    def sx(x: float) -> float:
        return margin + (x - min_x) * scale

    def sy(y: float) -> float:
        return margin + (max_y - y) * scale

    width = margin * 2 + (max_x - min_x) * scale
    height = margin * 2 + (max_y - min_y) * scale
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    # die outline in the middle
    parts.append(
        f'<rect x="{sx(-die_half):.1f}" y="{sy(die_half):.1f}" '
        f'width="{2 * die_half * scale:.1f}" height="{2 * die_half * scale:.1f}" '
        'fill="#eeeeee" stroke="#888888"/>'
    )
    for physical, ball, color in elements:
        coords = " ".join(f"{sx(p.x):.1f},{sy(p.y):.1f}" for p in physical)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            'stroke-width="1.0"/>'
        )
        parts.append(
            f'<circle cx="{sx(ball.x):.1f}" cy="{sy(ball.y):.1f}" r="3" '
            f'fill="#cccccc" stroke="{color}"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_package_svg(
    design,
    assignments: Dict,
    routing_results: Dict,
    path: Union[str, Path],
    scale: float = 30.0,
) -> None:
    """Render and write the whole-package SVG."""
    Path(path).write_text(
        package_to_svg(design, assignments, routing_results, scale=scale)
    )
