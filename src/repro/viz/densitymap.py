"""Textual heat maps: routing congestion and core IR-drop."""

from __future__ import annotations

from typing import List

import numpy as np

from ..power.fdsolver import IRDropResult
from ..units import to_mv

_SHADES = " .:-=+*#%@"


def _shade(value: float, lo: float, hi: float) -> str:
    if hi <= lo:
        return _SHADES[0]
    index = int((value - lo) / (hi - lo) * (len(_SHADES) - 1))
    return _SHADES[min(max(index, 0), len(_SHADES) - 1)]


def render_irdrop_map(result: IRDropResult, max_cols: int = 64) -> str:
    """ASCII heat map of an IR-drop solution (dark = worse drop).

    This is the textual counterpart of the paper's Fig. 6 color maps.
    """
    drop = result.drop_map
    g = drop.shape[0]
    stride = max(1, g // max_cols)
    sampled = drop[::stride, ::stride]
    lo, hi = float(sampled.min()), float(sampled.max())
    lines: List[str] = [
        f"max IR-drop {to_mv(result.max_drop):.1f} mV, "
        f"mean {to_mv(result.mean_drop):.1f} mV "
        f"(worst node {tuple(int(v) for v in result.worst_node())})"
    ]
    # y grows upward on the chip; print top row first.
    for y in range(sampled.shape[1] - 1, -1, -1):
        lines.append(
            "".join(_shade(sampled[x, y], lo, hi) for x in range(sampled.shape[0]))
        )
    return "\n".join(lines)


def render_current_map(current: np.ndarray, max_cols: int = 64) -> str:
    """ASCII heat map of a per-node current draw (hot blocks visible)."""
    g = current.shape[0]
    stride = max(1, g // max_cols)
    sampled = current[::stride, ::stride]
    lo, hi = float(sampled.min()), float(sampled.max())
    lines = [f"current map: {lo:.2e} .. {hi:.2e} A/node"]
    for y in range(sampled.shape[1] - 1, -1, -1):
        lines.append(
            "".join(_shade(sampled[x, y], lo, hi) for x in range(sampled.shape[0]))
        )
    return "\n".join(lines)
