"""ASCII visualization for terminals and doc examples.

Draws a quadrant the way the paper's small figures do: the finger order on
top, the bump rows below with their net ids, and a congestion bar chart per
horizontal line — enough to eyeball an assignment without an SVG viewer.
"""

from __future__ import annotations

from typing import List

from ..assign import Assignment
from ..routing import density_map


def render_assignment(assignment: Assignment, cell_width: int = 4) -> str:
    """The finger order and bump rows of one quadrant as ASCII art."""
    quadrant = assignment.quadrant
    lines: List[str] = []
    fingers = "".join(
        str(net_id).center(cell_width) for net_id in assignment.order
    )
    lines.append("fingers: " + fingers)
    lines.append("         " + "-" * len(fingers))
    for row in range(quadrant.row_count, 0, -1):
        cells = "".join(
            str(net_id).center(cell_width) for net_id in quadrant.row_nets(row)
        )
        lines.append(f"row {row:>2}:  {cells.center(len(fingers))}")
    return "\n".join(lines)


def render_density_profile(assignment: Assignment, width: int = 40) -> str:
    """Bar chart of the worst density per horizontal line."""
    dmap = density_map(assignment)
    per_line = dmap.line_densities()
    if not per_line:
        return "(single-row quadrant: no crossing congestion)"
    peak = max(per_line.values()) or 1
    lines = [f"max density: {dmap.max_density}"]
    for row in sorted(per_line, reverse=True):
        value = per_line[row]
        bar = "#" * max(1, round(value / peak * width)) if value else ""
        lines.append(f"line y={row:>2} | {bar} {value}")
    return "\n".join(lines)


def render_comparison(assignments: dict, labels: List[str] = None) -> str:
    """Side-by-side density profiles for several assignments of one quadrant."""
    blocks = []
    for name, assignment in assignments.items():
        blocks.append(f"== {name} ==")
        blocks.append(render_density_profile(assignment))
        blocks.append("")
    return "\n".join(blocks).rstrip()
