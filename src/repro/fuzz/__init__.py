"""repro.fuzz — differential fuzzing and repro minimization.

The reproduction carries four redundant implementations of its core math
(exact Eq.-3 model, object-model incremental cost, NumPy array kernel,
``repro.verify``'s from-scratch re-derivation) plus redundant execution
paths (serial vs pooled vs cached engine runs).  This package turns that
redundancy into a bug-finding machine, Csmith-style:

``gen``
    Seeded adversarial :class:`FuzzCase` generation over package-shape
    edge cases (single-net sides, all-power/all-signal quadrants, 1–8
    tiers, ψ-group remainders, extreme aspect ratios, duplicate pitches).
``oracles``
    Pluggable differential oracles (:data:`ORACLES`): IFA/DFA density
    parity, monotonic routability of every emitted assignment,
    object/array/exact backend trace + cost parity, and engine
    serial/parallel/cached value equality.
``shrink``
    Greedy delta-debugging minimization of failing (case, oracle) pairs.
``runner``
    The campaign loop, obs instrumentation, and the JSON corpus under
    ``tests/data/fuzz_corpus/`` (written on failure, replayed by tier-1).
``jobs``
    The ``fuzz_probe`` engine job type (lazy-loaded via the ``fuzz_``
    prefix hook in the job-type registry).

CLI: ``python -m repro fuzz [run|replay] --cases N --seed S --oracle ...``
(see docs/fuzzing.md).
"""

from .gen import CASE_FORMAT, CaseGenerator, FuzzCase, generate_cases
from .oracles import ORACLES, ORACLE_STRIDES, SkippedCase
from .runner import (
    DEFAULT_CORPUS,
    FuzzFailure,
    FuzzReport,
    load_corpus,
    replay_corpus,
    run_fuzz,
    save_corpus_entry,
)
from .shrink import failure_predicate, shrink_case

__all__ = [
    "CASE_FORMAT",
    "DEFAULT_CORPUS",
    "CaseGenerator",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "ORACLES",
    "ORACLE_STRIDES",
    "SkippedCase",
    "failure_predicate",
    "generate_cases",
    "load_corpus",
    "replay_corpus",
    "run_fuzz",
    "save_corpus_entry",
    "shrink_case",
]
