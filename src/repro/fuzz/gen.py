"""Seeded adversarial case generation for the differential fuzzer.

A :class:`FuzzCase` is a fully JSON-serializable bundle of everything one
fuzz trial needs: ``CircuitSpec`` keyword arguments, the design seed, the
run seed and the exchange knobs (SA schedule, cost weights, network
splitting, wirelength-resync cadence).  Serializability is what makes a
failing case *portable*: the shrinker rewrites it field by field and the
minimized result lands verbatim in the JSON corpus under
``tests/data/fuzz_corpus/``.

:class:`CaseGenerator` draws from *edge pools* instead of uniform ranges —
single-net sides, all-power/all-signal quadrants, 1–8 die tiers with
ψ-group remainders, extreme aspect ratios and duplicate adjacent pitches —
because the paper's Table-1 circuits only ever exercise the comfortable
middle of each parameter.  Every draw comes from one ``random.Random``
seeded by the caller, so case *i* of seed *s* is the same forever.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional

from ..errors import CircuitSpecError

#: Corpus/file format stamp; bump on incompatible FuzzCase layout changes.
CASE_FORMAT = "repro-fuzz-case/1"

#: Edge pools.  Values are deliberately clustered at the boundaries the
#: validators guard (0/1 counts, equal adjacent pitches, huge ratios).
_TIER_POOL = (1, 1, 2, 3, 4, 5, 8)
_SUPPLY_POOL = (0.0, 0.05, 0.25, 0.25, 0.5, 0.75, 1.0)
_QUADRANT_POOL = (1, 2, 3, 4, 4)
_ROW_POOL = (1, 1, 2, 3, 4)
_WIDTH_POOL = (0.01, 0.1, 0.1, 0.12, 2.5)
_HEIGHT_POOL = (0.01, 0.2, 0.2, 5.0)
_SPACE_POOL = (0.0, 0.01, 0.12, 0.12, 1.0)
_BALL_POOL = (0.2, 1.2, 1.2, 8.0)
_COOLING_POOL = (0.5, 0.7, 0.9)
_MOVES_POOL = (1, 2, 4, 8)
_WEIGHT_POOL = (0.0, 0.5, 1.0, 3.0)


@dataclass(frozen=True)
class FuzzCase:
    """One fuzz trial: a circuit shape plus every knob a run depends on."""

    spec: Dict = field(default_factory=dict)
    design_seed: int = 0
    run_seed: int = 0
    sa: Dict = field(default_factory=dict)
    weights: Dict = field(default_factory=dict)
    split_networks: bool = False
    track_all_rows: bool = True
    wl_resync_interval: Optional[int] = None

    # -- identity ----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "spec": dict(self.spec),
            "design_seed": self.design_seed,
            "run_seed": self.run_seed,
            "sa": dict(self.sa),
            "weights": dict(self.weights),
            "split_networks": self.split_networks,
            "track_all_rows": self.track_all_rows,
            "wl_resync_interval": self.wl_resync_interval,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FuzzCase":
        return cls(
            spec=dict(payload.get("spec", {})),
            design_seed=int(payload.get("design_seed", 0)),
            run_seed=int(payload.get("run_seed", 0)),
            sa=dict(payload.get("sa", {})),
            weights=dict(payload.get("weights", {})),
            split_networks=bool(payload.get("split_networks", False)),
            track_all_rows=bool(payload.get("track_all_rows", True)),
            wl_resync_interval=payload.get("wl_resync_interval"),
        )

    def digest(self) -> str:
        payload = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        return f"case[{self.digest()[:12]}]"

    # -- materialization ---------------------------------------------------

    def build_spec(self):
        """The ``CircuitSpec`` this case describes (may raise a typed
        :class:`~repro.errors.CircuitSpecError` for degenerate shapes)."""
        from ..circuits.spec import CircuitSpec

        return CircuitSpec(**self.spec)

    def build_design(self):
        from ..circuits import build_design

        return build_design(self.build_spec(), seed=self.design_seed)

    def sa_params(self):
        from ..exchange import SAParams

        return SAParams(**self.sa) if self.sa else SAParams(
            initial_temp=1.0, final_temp=0.2, cooling=0.7, moves_per_temp=4
        )

    def cost_weights(self):
        from ..exchange import CostWeights

        return CostWeights(**self.weights) if self.weights else CostWeights()


class CaseGenerator:
    """Deterministic adversarial case stream: ``CaseGenerator(seed)``."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def __iter__(self) -> Iterator[FuzzCase]:
        while True:
            yield self.case()

    def case(self) -> FuzzCase:
        """The next case; always constructible as a ``CircuitSpec``."""
        rng = self._rng
        for _ in range(64):
            candidate = self._raw_case(rng)
            try:
                candidate.build_spec()
            except CircuitSpecError:
                continue
            return candidate
        # The pools are tuned so a valid draw is overwhelmingly likely;
        # falling through means the pools regressed, not bad luck.
        return self._fallback(rng)

    def _raw_case(self, rng: random.Random) -> FuzzCase:
        quadrants = rng.choice(_QUADRANT_POOL)
        rows = rng.choice(_ROW_POOL)
        tiers = rng.choice(_TIER_POOL)
        minimum = rows * quadrants
        # finger counts hugging the minimum, plus draws leaving a non-zero
        # remainder against the ψ-group size and the quadrant split.
        finger_count = rng.choice(
            (
                minimum,
                minimum + 1,
                minimum + rng.randrange(1, 4),
                minimum * 2 + rng.randrange(0, 3),
                max(minimum, quadrants * rows * tiers + rng.randrange(0, tiers + 1)),
                max(minimum, rng.randrange(minimum, 4 * minimum + 8)),
            )
        )
        width = rng.choice(_WIDTH_POOL)
        space = rng.choice(_SPACE_POOL)
        if rng.random() < 0.25:
            space = width  # duplicate adjacent pitch: space == width exactly
        spec = {
            "name": f"fuzz{rng.randrange(10 ** 6)}",
            "finger_count": int(finger_count),
            "quadrant_count": quadrants,
            "rows_per_quadrant": rows,
            "tier_count": tiers,
            "supply_fraction": rng.choice(_SUPPLY_POOL),
            "finger_width": width,
            "finger_height": rng.choice(_HEIGHT_POOL),
            "finger_space": space,
            "bump_ball_space": rng.choice(_BALL_POOL),
        }
        initial = rng.choice((0.5, 1.0, 2.0))
        cooling = rng.choice(_COOLING_POOL)
        if rng.random() < 0.25:
            # Exact-power final temp: initial * cooling**k computed as a
            # power lands on the float boundary where a closed-form step
            # count and the loop's sequential multiplication can round to
            # opposite sides — the schedule-accounting drift class.
            final = initial * (cooling ** rng.randrange(2, 9))
        else:
            final = initial * rng.choice((0.1, 0.4))
        weights = {
            "ir": rng.choice(_WEIGHT_POOL),
            "density": rng.choice(_WEIGHT_POOL),
            "bonding": rng.choice(_WEIGHT_POOL),
            "wirelength": rng.choice((0.0, 0.0, 0.5, 1.0)),
        }
        wl_resync = None
        if weights["wirelength"] > 0 and rng.random() < 0.5:
            wl_resync = rng.choice((1, 2, 3))
        return FuzzCase(
            spec=spec,
            design_seed=rng.randrange(2 ** 16),
            run_seed=rng.randrange(2 ** 16),
            sa={
                "initial_temp": initial,
                "final_temp": final,
                "cooling": cooling,
                "moves_per_temp": rng.choice(_MOVES_POOL),
            },
            weights=weights,
            split_networks=rng.random() < 0.3,
            track_all_rows=rng.random() < 0.8,
            wl_resync_interval=wl_resync,
        )

    def _fallback(self, rng: random.Random) -> FuzzCase:
        return FuzzCase(
            spec={"name": "fuzz-fallback", "finger_count": 16,
                  "quadrant_count": 4, "rows_per_quadrant": 2},
            design_seed=rng.randrange(2 ** 16),
            run_seed=rng.randrange(2 ** 16),
        )


def generate_cases(count: int, seed: int = 0):
    """The first *count* cases of the seed-*seed* stream, as a list."""
    generator = CaseGenerator(seed)
    return [generator.case() for _ in range(count)]


def with_spec_field(case: FuzzCase, key: str, value) -> FuzzCase:
    """A copy of *case* with one ``CircuitSpec`` kwarg replaced."""
    spec = dict(case.spec)
    spec[key] = value
    return replace(case, spec=spec)
