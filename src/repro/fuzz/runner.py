"""The fuzz campaign loop: generate, check, shrink, record, replay.

:func:`run_fuzz` drives a seeded :class:`~.gen.CaseGenerator` through the
oracle suite under a case-count and/or wall-clock budget.  Every failure
is minimized by :mod:`~.shrink` and written to the JSON corpus, and the
whole campaign is observable: a ``fuzz`` span wraps the run, ``fuzz.*``
events land in the trace (schema-registered in ``obs.schema``), and the
``fuzz.cases`` / ``fuzz.failures`` / ``fuzz.skipped`` counters plus the
final cases/s figure ride the standard metrics channel.

:func:`replay_corpus` re-runs every stored minimized case against its
recorded oracle — the "stays green forever" half of the workflow, wired
into tier-1 via ``tests/test_fuzz.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .gen import CASE_FORMAT, CaseGenerator, FuzzCase
from .oracles import ORACLE_STRIDES, ORACLES, SkippedCase
from .shrink import failure_predicate, shrink_case

#: Default on-disk corpus location (repo-relative), shared with the CLI.
DEFAULT_CORPUS = "tests/data/fuzz_corpus"


@dataclass
class FuzzFailure:
    """One divergence: the oracle, the problems, and the minimized case."""

    oracle: str
    case: FuzzCase
    problems: List[str]
    shrunk: Optional[FuzzCase] = None
    shrink_evals: int = 0
    corpus_path: Optional[str] = None

    def minimized(self) -> FuzzCase:
        return self.shrunk if self.shrunk is not None else self.case


@dataclass
class FuzzReport:
    """Campaign summary returned by :func:`run_fuzz` / :func:`replay_corpus`."""

    cases: int = 0
    checks: int = 0
    skipped: int = 0
    seconds: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)
    per_oracle: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        rate = self.cases / self.seconds if self.seconds > 0 else 0.0
        lines = [
            f"fuzz: {self.cases} case(s), {self.checks} oracle check(s), "
            f"{self.skipped} skipped, {len(self.failures)} failure(s) "
            f"in {self.seconds:.1f}s ({rate:.1f} cases/s)"
        ]
        for name in sorted(self.per_oracle):
            lines.append(f"  {name}: {self.per_oracle[name]} check(s)")
        for failure in self.failures:
            case = failure.minimized()
            lines.append(f"FAIL [{failure.oracle}] {case.label()}")
            lines.extend(f"  - {problem}" for problem in failure.problems[:5])
            if failure.corpus_path:
                lines.append(f"  minimized repro: {failure.corpus_path}")
        return "\n".join(lines)


def _select_oracles(names: Optional[Sequence[str]]) -> Dict[str, object]:
    if not names:
        return dict(ORACLES)
    unknown = sorted(set(names) - set(ORACLES))
    if unknown:
        raise KeyError(
            f"unknown oracle(s) {unknown}; available: {sorted(ORACLES)}"
        )
    return {name: ORACLES[name] for name in ORACLES if name in set(names)}


def _check_case(oracle_name, oracle, case, report, telemetry, metrics):
    """Run one oracle on one case, booking the outcome; returns problems."""
    report.per_oracle[oracle_name] = report.per_oracle.get(oracle_name, 0) + 1
    report.checks += 1
    try:
        problems = oracle(case)
    except SkippedCase:
        report.skipped += 1
        metrics.counter("fuzz.skipped").inc()
        return []
    if problems:
        telemetry.emit(
            "fuzz.failure",
            oracle=oracle_name,
            case=case.label(),
            problems=list(problems[:8]),
        )
        metrics.counter("fuzz.failures").inc()
    return problems


def run_fuzz(
    cases: int = 100,
    seed: int = 0,
    oracles: Optional[Sequence[str]] = None,
    minutes: Optional[float] = None,
    corpus_dir: Optional[str] = None,
    telemetry=None,
    shrink: bool = True,
) -> FuzzReport:
    """Fuzz until *cases* cases ran or the *minutes* budget is spent.

    Failures are minimized (unless ``shrink=False``) and written to
    *corpus_dir* when one is given.
    """
    from ..obs.spans import span
    from ..runtime.telemetry import Telemetry, get_telemetry

    telemetry = telemetry if telemetry is not None else get_telemetry()
    if telemetry is None:  # pragma: no cover - get_telemetry never returns None
        telemetry = Telemetry()
    metrics = telemetry.metrics
    selected = _select_oracles(oracles)
    generator = CaseGenerator(seed)
    deadline = time.monotonic() + minutes * 60.0 if minutes else None
    report = FuzzReport()
    started = time.perf_counter()
    telemetry.emit(
        "fuzz.begin", cases=cases, oracles=sorted(selected), seed=seed
    )
    with span("fuzz", telemetry, seed=seed):
        for index in range(cases):
            if deadline is not None and time.monotonic() >= deadline:
                break
            case = generator.case()
            report.cases += 1
            metrics.counter("fuzz.cases").inc()
            for name, oracle in selected.items():
                if index % ORACLE_STRIDES.get(name, 1):
                    continue
                problems = _check_case(
                    name, oracle, case, report, telemetry, metrics
                )
                if not problems:
                    continue
                failure = FuzzFailure(oracle=name, case=case, problems=problems)
                if shrink:
                    with span("fuzz.shrink", telemetry, oracle=name):
                        failure.shrunk, failure.shrink_evals = shrink_case(
                            case, failure_predicate(oracle)
                        )
                    telemetry.emit(
                        "fuzz.shrink",
                        oracle=name,
                        case=failure.shrunk.label(),
                        evals=failure.shrink_evals,
                    )
                if corpus_dir:
                    failure.corpus_path = str(
                        save_corpus_entry(corpus_dir, failure)
                    )
                report.failures.append(failure)
    report.seconds = time.perf_counter() - started
    telemetry.emit(
        "fuzz.end",
        cases=report.cases,
        failures=len(report.failures),
        skipped=report.skipped,
        seconds=round(report.seconds, 6),
        cases_per_s=round(report.cases / report.seconds, 3)
        if report.seconds > 0
        else 0.0,
    )
    return report


# -- corpus ----------------------------------------------------------------


def save_corpus_entry(corpus_dir, failure: FuzzFailure) -> Path:
    """Write one minimized failure as ``<oracle>-<digest12>.json``."""
    case = failure.minimized()
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{failure.oracle}-{case.digest()[:12]}.json"
    payload = {
        "format": CASE_FORMAT,
        "oracle": failure.oracle,
        "problems": list(failure.problems[:8]),
        "case": case.to_json(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir) -> List[dict]:
    """Every corpus entry as its parsed JSON payload, sorted by filename."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text())
        if payload.get("format") != CASE_FORMAT:
            raise ValueError(
                f"{path}: unsupported corpus format {payload.get('format')!r}"
            )
        payload["path"] = str(path)
        entries.append(payload)
    return entries


def replay_corpus(
    corpus_dir,
    telemetry=None,
) -> FuzzReport:
    """Re-run every stored minimized case against its recorded oracle."""
    from ..obs.spans import span
    from ..runtime.telemetry import get_telemetry

    telemetry = telemetry if telemetry is not None else get_telemetry()
    metrics = telemetry.metrics
    report = FuzzReport()
    started = time.perf_counter()
    entries = load_corpus(corpus_dir)
    telemetry.emit(
        "fuzz.begin",
        cases=len(entries),
        oracles=sorted({entry["oracle"] for entry in entries}),
        seed=0,
    )
    with span("fuzz", telemetry, mode="replay"):
        for entry in entries:
            oracle_name = entry["oracle"]
            oracle = ORACLES.get(oracle_name)
            case = FuzzCase.from_json(entry["case"])
            report.cases += 1
            metrics.counter("fuzz.cases").inc()
            if oracle is None:
                report.failures.append(
                    FuzzFailure(
                        oracle=oracle_name,
                        case=case,
                        problems=[f"unknown oracle {oracle_name!r} in corpus"],
                    )
                )
                continue
            problems = _check_case(
                oracle_name, oracle, case, report, telemetry, metrics
            )
            if problems:
                failure = FuzzFailure(
                    oracle=oracle_name, case=case, problems=problems
                )
                failure.corpus_path = entry.get("path")
                report.failures.append(failure)
    report.seconds = time.perf_counter() - started
    telemetry.emit(
        "fuzz.end",
        cases=report.cases,
        failures=len(report.failures),
        skipped=report.skipped,
        seconds=round(report.seconds, 6),
        cases_per_s=round(report.cases / report.seconds, 3)
        if report.seconds > 0
        else 0.0,
    )
    return report
