"""Engine job types backing the ``engine`` oracle.

``fuzz_probe`` is deliberately tiny but *seed-sensitive*: it randomly
assigns a generated design and reports density/wirelength plus the seed it
actually consumed.  Any engine-level seed or cache defect — a seedless
spec deriving different seeds serially vs in a pool, or a cache serving a
value computed under a different effective seed — shows up as a value
mismatch the oracle can point at.

Registered lazily via the ``fuzz_`` prefix hook in
:func:`repro.runtime.spec.resolve_job_type`, so specs resolve inside
fresh pool workers without the fuzzer imported anywhere else.
"""

from __future__ import annotations

from ..assign import assign_design
from typing import Optional

from ..runtime.spec import register_job_type


@register_job_type("fuzz_probe")
def run_fuzz_probe(params: dict, seed: Optional[int]):
    """Random-assign one generated design; value depends on *seed*."""
    from ..assign import RandomAssigner
    from ..circuits import build_design
    from ..circuits.spec import CircuitSpec
    from ..routing import max_density_of_design, total_flyline_length_of_design

    spec = CircuitSpec(**params["spec"])
    design = build_design(spec, seed=int(params.get("design_seed", 0)))
    assignments = assign_design(RandomAssigner(), design, seed=seed)
    return {
        "circuit": spec.name,
        "max_density": max_density_of_design(assignments),
        "flyline_length": total_flyline_length_of_design(assignments),
        "seed": seed,
    }
