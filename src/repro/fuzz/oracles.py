"""Differential oracles: redundant implementations disagreeing = a bug.

Each oracle is ``oracle(case) -> List[str]`` — an empty list means the
case passed; each string is one observed divergence.  A case the oracle
cannot evaluate *for a reason the library documents* (a typed
:class:`~repro.errors.ReproError` raised identically on every code path)
raises :class:`SkippedCase` instead; inconsistent errors — one backend
raising where another succeeds — are divergences, never skips.

Oracles
-------
``density``
    IFA vs DFA max-density parity: DFA (density-first by construction)
    must never route denser than IFA on the same design.
``legality``
    Every emitted assignment — Random, IFA, DFA — must satisfy the
    monotonic rule *and* route through the real
    :class:`~repro.routing.MonotonicRouter`.
``assign_parity`` / ``density_parity`` / ``irsolve_parity``
    Staged-kernel differentials: object IFA/DFA vs the array assignment
    kernels (order- and error-identical), the object density walk vs the
    array run accumulation (count-identical), and the factor-once grid
    solver vs the reference assemble-and-solve path (within 1e-9, for
    both uniform and hotspot injection vectors).
``backends``
    Object vs array vs exact exchange backends under a shared seed must
    produce the identical accept/reject trace, final orders, and Eq.-3
    cost breakdowns — each additionally cross-checked against
    ``verify.check_exchange_total``'s from-scratch re-derivation.
``engine``
    Serial vs ``jobs=2`` and cached vs fresh :class:`JobEngine` runs must
    agree value-for-value, including across engines with different
    ``base_seed`` sharing one cache (the seed=None poisoning this oracle
    caught; see ``tests/data/fuzz_corpus/``).
``checkpoint``
    Crash-and-resume determinism: an array-backend anneal killed right
    after a checkpoint save (:class:`~repro.exchange.SimulatedCrash`) and
    resumed in a fresh process-equivalent must replay the *exact*
    continuation of the uninterrupted run — identical accept/reject
    counters, cost trace, final orders and costs, bit for bit.
"""

from __future__ import annotations

import math
import tempfile
from typing import Callable, Dict, List

from ..assign import assign_design
from ..errors import ReproError
from .gen import FuzzCase

#: Relative tolerance for cross-backend float comparisons; matches
#: ``verify.FASTCOST_RTOL`` (the backends are algebraically identical).
BACKEND_RTOL = 1e-9


class SkippedCase(Exception):
    """The case is degenerate in a *consistently typed* documented way."""


def _build_design(case: FuzzCase):
    try:
        return case.build_design()
    except ReproError as exc:
        raise SkippedCase(f"{type(exc).__name__}: {exc}") from exc


def _close(a: float, b: float) -> bool:
    if not (math.isfinite(a) and math.isfinite(b)):
        return False
    return abs(a - b) <= BACKEND_RTOL * max(abs(a), abs(b), 1.0)


# -- density ---------------------------------------------------------------


def oracle_density(case: FuzzCase) -> List[str]:
    from ..assign import DFAAssigner, IFAAssigner
    from ..routing import max_density_of_design

    design = _build_design(case)
    problems: List[str] = []
    densities = {}
    for name, assigner in (("IFA", IFAAssigner()), ("DFA", DFAAssigner())):
        try:
            assignments = assign_design(assigner, design, seed=case.run_seed)
        except ReproError as exc:
            problems.append(f"{name} raised on a buildable design: "
                            f"{type(exc).__name__}: {exc}")
            continue
        density = max_density_of_design(assignments)
        if not isinstance(density, int) or density < 0:
            problems.append(f"{name} max density is not a count: {density!r}")
        densities[name] = density
    if len(densities) == 2 and densities["DFA"] > densities["IFA"]:
        problems.append(
            f"DFA max density {densities['DFA']} exceeds IFA's "
            f"{densities['IFA']} (density-first must not lose to "
            f"interleaving-first)"
        )
    return problems


# -- legality --------------------------------------------------------------


def oracle_legality(case: FuzzCase) -> List[str]:
    from ..assign import DFAAssigner, IFAAssigner, RandomAssigner, check_legal
    from ..routing import MonotonicRouter
    from ..verify import check_assignments

    design = _build_design(case)
    router = MonotonicRouter()
    problems: List[str] = []
    for name, assigner in (
        ("Random", RandomAssigner()),
        ("IFA", IFAAssigner()),
        ("DFA", DFAAssigner()),
    ):
        try:
            assignments = assign_design(assigner, design, seed=case.run_seed)
        except ReproError as exc:
            problems.append(f"{name} raised on a buildable design: "
                            f"{type(exc).__name__}: {exc}")
            continue
        report = check_assignments(design, assignments, deep=False)
        if not report.ok:
            problems.extend(
                f"{name}: {diagnostic}" for diagnostic in report.errors[:3]
            )
        for side, assignment in assignments.items():
            try:
                check_legal(assignment)
                router.route(assignment)
            except ReproError as exc:
                problems.append(
                    f"{name} {side.value}: emitted assignment does not "
                    f"route monotonically: {type(exc).__name__}: {exc}"
                )
    return problems


# -- staged kernel parity --------------------------------------------------


def oracle_assign_parity(case: FuzzCase) -> List[str]:
    """Object IFA/DFA vs the array kernels: orders must be identical.

    Also an error-parity check: a quadrant the object assigner refuses
    (typed ``AssignmentError``) must be refused by the kernel too, and
    vice versa — one backend succeeding where the other raises is a
    divergence, not a skip.
    """
    from ..assign import DFAAssigner, IFAAssigner
    from ..errors import AssignmentError
    from ..kernels import dfa_order, ifa_order

    design = _build_design(case)
    cut_line_n = 1 + case.run_seed % 3
    strategies = (
        ("IFA", IFAAssigner(), lambda q: ifa_order(q)),
        ("DFA", DFAAssigner(cut_line_n=cut_line_n),
         lambda q: dfa_order(q, cut_line_n=cut_line_n)),
    )
    problems: List[str] = []
    for side, quadrant in design:
        for name, assigner, kernel in strategies:
            expected, expected_error = None, None
            try:
                expected = assigner.assign(quadrant).order
            except AssignmentError as exc:
                expected_error = f"{type(exc).__name__}: {exc}"
            got, got_error = None, None
            try:
                got = kernel(quadrant)
            except AssignmentError as exc:
                got_error = f"{type(exc).__name__}: {exc}"
            if (expected_error is None) != (got_error is None):
                problems.append(
                    f"{name} {side.value}: object path "
                    f"{expected_error or 'succeeded'} but kernel "
                    f"{got_error or 'succeeded'}"
                )
            elif expected is not None and got != expected:
                first = next(
                    i for i, (a, b) in enumerate(zip(expected, got)) if a != b
                )
                problems.append(
                    f"{name} {side.value}: kernel order diverges at slot "
                    f"{first}: object net {expected[first]}, kernel net "
                    f"{got[first]}"
                )
    return problems


def oracle_density_parity(case: FuzzCase) -> List[str]:
    """Object density walk vs the array accumulation: identical counts."""
    from ..assign import DFAAssigner, RandomAssigner
    from ..kernels import max_density_of_order
    from ..routing import max_density

    design = _build_design(case)
    problems: List[str] = []
    for name, assigner in (
        ("Random", RandomAssigner()),
        ("DFA", DFAAssigner()),
    ):
        try:
            assignments = assign_design(
                assigner, design, seed=case.run_seed, backend="object"
            )
        except ReproError as exc:
            raise SkippedCase(f"{type(exc).__name__}: {exc}") from exc
        for side, assignment in assignments.items():
            expected = max_density(assignment, backend="object")
            got = max_density_of_order(assignment.quadrant, assignment.order)
            if got != expected:
                problems.append(
                    f"{name} {side.value}: array max density {got} != "
                    f"object {expected}"
                )
    return problems


def oracle_irsolve_parity(case: FuzzCase) -> List[str]:
    """Factor-once grid solves vs the reference assemble-and-solve path.

    The same factorization is re-solved for the uniform draw and for a
    case-seeded hotspot current map; each must match a fresh
    ``FDSolver`` object solve within ``BACKEND_RTOL``.
    """
    import numpy as np

    from ..assign import DFAAssigner
    from ..power import FDSolver, IRDropAnalyzer, PowerGridConfig
    from ..power.pads import pad_nodes_for_grid

    design = _build_design(case)
    try:
        assignments = assign_design(DFAAssigner(), design, seed=case.run_seed)
    except ReproError as exc:
        raise SkippedCase(f"{type(exc).__name__}: {exc}") from exc

    grid = PowerGridConfig(size=12 + case.run_seed % 5)
    try:
        nodes = pad_nodes_for_grid(design, assignments, grid, net_type=None)
    except ReproError as exc:
        raise SkippedCase(f"{type(exc).__name__}: {exc}") from exc
    if not nodes:
        raise SkippedCase("case yields no supply pad nodes")
    rng = np.random.default_rng(case.run_seed)
    hotspot = np.abs(rng.normal(grid.j0, grid.j0 / 2, (grid.size, grid.size)))

    problems: List[str] = []
    factorization = FDSolver(grid).factorize(nodes)
    for label, current_map in (("uniform", None), ("hotspot", hotspot)):
        reference = FDSolver(grid, current_map=current_map)._solve_object(nodes)
        resolved = factorization.solve(current_map)
        error = float(np.abs(resolved.voltage - reference.voltage).max())
        if not _close(resolved.max_drop, reference.max_drop) or \
                error > BACKEND_RTOL * max(1.0, float(np.abs(reference.voltage).max())):
            problems.append(
                f"{label}: factorized solve drifts from the object solve "
                f"(max |dV| = {error:.3e}, drops {resolved.max_drop!r} vs "
                f"{reference.max_drop!r})"
            )
    # The analyzer's cached factorization must serve repeat evaluations.
    analyzer = IRDropAnalyzer(design, grid_config=grid, net_type=None)
    if analyzer.factorize(assignments) is not analyzer.factorize(assignments):
        problems.append("IRDropAnalyzer.factorize does not reuse its cache")
    return problems


# -- exchange backends -----------------------------------------------------

_BACKENDS = ("object", "array", "exact")


def _run_backend(case: FuzzCase, design, baseline, backend: str):
    from ..exchange import FingerPadExchanger

    exchanger = FingerPadExchanger(
        design,
        weights=case.cost_weights(),
        params=case.sa_params(),
        track_all_rows=case.track_all_rows,
        split_networks=case.split_networks,
        polish_passes=2,
        backend=backend,
        wl_resync_interval=case.wl_resync_interval,
    )
    return exchanger.run(baseline, seed=case.run_seed)


def oracle_backends(case: FuzzCase) -> List[str]:
    from ..assign import DFAAssigner
    from ..verify import check_exchange_total

    design = _build_design(case)
    try:
        baseline = assign_design(DFAAssigner(), design, seed=case.run_seed)
    except ReproError as exc:
        raise SkippedCase(f"{type(exc).__name__}: {exc}") from exc

    results: Dict[str, object] = {}
    errors: Dict[str, str] = {}
    for backend in _BACKENDS:
        try:
            results[backend] = _run_backend(case, design, baseline, backend)
        except ReproError as exc:
            errors[backend] = type(exc).__name__
    if errors and results:
        return [
            f"backends disagree on feasibility: "
            f"{sorted(results)} succeeded, {errors} raised"
        ]
    if errors:
        kinds = set(errors.values())
        if len(kinds) > 1:
            return [f"backends raised different error types: {errors}"]
        raise SkippedCase(f"all backends raised {kinds.pop()}")

    problems: List[str] = []
    reference = results["object"]
    # Schedule accounting: the step count the schedule reports must equal
    # the count the loop executed (one cost_trace entry per temperature
    # tier).  Exact-power final temps from the generator land on the float
    # boundary where the old log-based formula drifted by one.
    expected_steps = case.sa_params().temperature_steps()
    for backend, result in sorted(results.items()):
        executed = len(result.stats.cost_trace)
        if executed != expected_steps:
            problems.append(
                f"{backend}: schedule accounting: reported "
                f"{expected_steps} temperature steps, executed {executed}"
            )
    for backend in ("array", "exact"):
        other = results[backend]
        for fld in ("proposed", "accepted", "accepted_uphill"):
            if getattr(other.stats, fld) != getattr(reference.stats, fld):
                problems.append(
                    f"{backend} vs object: stats.{fld} "
                    f"{getattr(other.stats, fld)} != "
                    f"{getattr(reference.stats, fld)} (trace divergence)"
                )
        for side in reference.after:
            if other.after[side].order != reference.after[side].order:
                problems.append(
                    f"{backend} vs object: final order differs on "
                    f"{side.value}"
                )
        for term, value in reference.cost_breakdown_after.items():
            if not _close(other.cost_breakdown_after.get(term, math.nan), value):
                problems.append(
                    f"{backend} vs object: cost term {term!r} "
                    f"{other.cost_breakdown_after.get(term)!r} != {value!r}"
                )
        if other.omega_after != reference.omega_after:
            problems.append(
                f"{backend} vs object: omega {other.omega_after} != "
                f"{reference.omega_after}"
            )
    for backend, result in results.items():
        report = check_exchange_total(
            design,
            result.before,
            result.after,
            result.cost_breakdown_after["total"],
            weights=case.cost_weights(),
            split_networks=case.split_networks,
            track_all_rows=case.track_all_rows,
        )
        if not report.ok:
            problems.extend(
                f"{backend}: {diagnostic}" for diagnostic in report.errors[:3]
            )
    return problems


# -- checkpoint ------------------------------------------------------------


def oracle_checkpoint(case: FuzzCase) -> List[str]:
    """Crash/resume vs uninterrupted: the anneal must be bit-identical.

    Three runs of the array backend under one seed: a clean reference, a
    checkpointed run killed by :class:`SimulatedCrash` right after its
    first save lands, and a resume from that checkpoint.  The resumed run
    must finish with the reference's exact stats, cost trace, final
    orders and costs — any drift means the checkpoint is missing state
    (this oracle is what caught the wirelength float accumulator).
    """
    import os

    from ..assign import DFAAssigner
    from ..exchange import SACheckpointer, SimulatedCrash

    design = _build_design(case)
    try:
        baseline = assign_design(DFAAssigner(), design, seed=case.run_seed)
    except ReproError as exc:
        raise SkippedCase(f"{type(exc).__name__}: {exc}") from exc

    def run(checkpoint):
        from ..exchange import FingerPadExchanger

        exchanger = FingerPadExchanger(
            design,
            weights=case.cost_weights(),
            params=case.sa_params(),
            track_all_rows=case.track_all_rows,
            split_networks=case.split_networks,
            polish_passes=2,
            backend="array",
            wl_resync_interval=case.wl_resync_interval,
            checkpoint=checkpoint,
        )
        return exchanger.run(baseline, seed=case.run_seed)

    try:
        reference = run(None)
    except ReproError as exc:
        raise SkippedCase(f"{type(exc).__name__}: {exc}") from exc

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-ckpt-") as tmp:
        path = os.path.join(tmp, "sa.ckpt")
        # Cap the cadence at the schedule length so even the shortest
        # generated anneal saves (and crashes) at least once mid-run.
        interval = max(1, min(2 + case.run_seed % 3,
                              case.sa_params().total_moves() - 1))
        try:
            run(SACheckpointer(path, interval=interval, durable=False,
                               interrupt_after_saves=1))
        except SimulatedCrash:
            pass
        else:
            raise SkippedCase(
                f"anneal finished before a move-{interval} checkpoint"
            )
        resumed = run(SACheckpointer(path, interval=interval, durable=False))
        leftover = os.path.exists(path)

    problems: List[str] = []
    for fld in ("proposed", "infeasible", "accepted", "accepted_uphill",
                "nonfinite_rejected"):
        if getattr(resumed.stats, fld) != getattr(reference.stats, fld):
            problems.append(
                f"resumed stats.{fld} {getattr(resumed.stats, fld)} != "
                f"{getattr(reference.stats, fld)} (trace divergence)"
            )
    if resumed.stats.cost_trace != reference.stats.cost_trace:
        problems.append("resumed cost trace differs from the clean run")
    for fld in ("final_cost", "best_cost"):
        if getattr(resumed.stats, fld) != getattr(reference.stats, fld):
            problems.append(
                f"resumed stats.{fld} {getattr(resumed.stats, fld)!r} != "
                f"{getattr(reference.stats, fld)!r} (must be bit-identical)"
            )
    for side in reference.after:
        if resumed.after[side].order != reference.after[side].order:
            problems.append(f"resumed final order differs on {side.value}")
    if resumed.cost_breakdown_after != reference.cost_breakdown_after:
        problems.append("resumed cost breakdown differs from the clean run")
    if leftover:
        problems.append("completed resumed run left its checkpoint behind")
    return problems


# -- engine ----------------------------------------------------------------


def _probe_specs(case: FuzzCase):
    from ..runtime.spec import JobSpec

    params = {"spec": dict(case.spec), "design_seed": case.design_seed}
    # One pinned spec and one seedless spec: the latter must derive the
    # same effective seed on every engine configured alike, and must NOT
    # leak across differently-configured engines through the cache.
    return [
        JobSpec("fuzz_probe", params, seed=case.run_seed),
        JobSpec("fuzz_probe", params, seed=None),
    ]


def _outcome_key(outcome):
    return (outcome.value, outcome.error_class)


def oracle_engine(case: FuzzCase) -> List[str]:
    from ..runtime import JobEngine, ResultCache

    problems: List[str] = []
    specs = _probe_specs(case)

    serial = JobEngine(jobs=1, retries=0, base_seed=0).run(specs)
    parallel = JobEngine(jobs=2, retries=0, base_seed=0).run(specs)
    for spec, a, b in zip(specs, serial, parallel):
        if _outcome_key(a) != _outcome_key(b):
            problems.append(
                f"serial vs jobs=2 disagree on {spec.label()}: "
                f"{_outcome_key(a)!r} != {_outcome_key(b)!r}"
            )
    if all(outcome.error for outcome in serial):
        if problems:
            return problems
        raise SkippedCase(f"probe jobs fail uniformly: {serial[0].error}")

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        cached = JobEngine(cache=ResultCache(tmp), jobs=1, retries=0,
                           base_seed=0).run(specs)
        replay = JobEngine(cache=ResultCache(tmp), jobs=1, retries=0,
                           base_seed=0).run(specs)
        for spec, a, b in zip(specs, cached, replay):
            if not b.cached and b.ok:
                problems.append(f"second run of {spec.label()} missed the cache")
            if _outcome_key(a) != _outcome_key(b):
                problems.append(
                    f"cached vs fresh disagree on {spec.label()}: "
                    f"{_outcome_key(b)!r} != {_outcome_key(a)!r}"
                )
        # A different base_seed reading the same cache directory must get
        # the value it would compute itself, not the first writer's.
        other_fresh = JobEngine(jobs=1, retries=0, base_seed=1).run(specs)
        other_cached = JobEngine(cache=ResultCache(tmp), jobs=1, retries=0,
                                 base_seed=1).run(specs)
        for spec, fresh, served in zip(specs, other_fresh, other_cached):
            if _outcome_key(fresh) != _outcome_key(served):
                problems.append(
                    f"cache poisoned across base seeds on {spec.label()}: "
                    f"served {_outcome_key(served)!r}, should compute "
                    f"{_outcome_key(fresh)!r}"
                )
    return problems


# -- serve -----------------------------------------------------------------


def _serve_params(case: FuzzCase) -> dict:
    """The ``design_run`` params a case maps to on the wire."""
    params = {
        "spec": dict(case.spec),
        "design_seed": case.design_seed,
        "grid": 16,
    }
    for key in ("initial_temp", "final_temp", "cooling", "moves_per_temp"):
        if key in case.sa:
            params[key] = case.sa[key]
    return params


def oracle_serve(case: FuzzCase) -> List[str]:
    """HTTP round-trip parity: daemon envelope == direct ``design_run``.

    The generated case is posted to an in-process daemon over the real
    wire (JSON request -> admission -> engine -> envelope) and compared
    against invoking the ``design_run`` runner directly: same value on
    success, consistently-typed failure otherwise.  Also asserts the wire
    validator accepts every payload this mapping can generate.
    """
    from ..runtime.spec import resolve_job_type
    from ..serve import ServeClient, ServeConfig, ServeHandle
    from ..serve.wire import WIRE_SCHEMA_VERSION, validate_request

    params = _serve_params(case)
    payload = {
        "schema": WIRE_SCHEMA_VERSION,
        "kind": "design_run",
        "params": params,
        "seed": case.run_seed,
    }
    problems = [
        f"wire validator rejects a generated payload: {code}: {message}"
        for code, message in validate_request(payload)
    ]
    if problems:
        return problems

    runner = resolve_job_type("design_run")
    direct_value = None
    direct_error: str = ""
    try:
        direct_value = runner(dict(params), case.run_seed)
    except ReproError as exc:
        direct_error = type(exc).__name__
    except Exception as exc:  # noqa: BLE001 - untyped crash is itself a bug
        return [
            f"design_run raised an untyped error directly: "
            f"{type(exc).__name__}: {exc}"
        ]

    # cache=False so the daemon *executes* (parity, not replay); workers=1
    # runs the job in the dispatcher thread — no pool per sampled case.
    config = ServeConfig(
        port=0, workers=1, cache=False, batch_window=0.0, announce=False
    )
    with ServeHandle(config) as handle:
        client = ServeClient(port=handle.port, timeout=600.0)
        status, envelope = client.submit(
            "design_run", params, seed=case.run_seed, raise_on_error=False
        )
    if status != 200:
        return [
            f"daemon returned HTTP {status} for a valid submit: {envelope}"
        ]
    if envelope.get("schema") != WIRE_SCHEMA_VERSION:
        problems.append(
            f"envelope schema {envelope.get('schema')!r} != "
            f"{WIRE_SCHEMA_VERSION}"
        )
    if direct_error:
        if envelope.get("status") != "failed":
            problems.append(
                f"direct call raised {direct_error} but the daemon served "
                f"status {envelope.get('status')!r}"
            )
        elif direct_error not in (envelope.get("error") or ""):
            problems.append(
                f"failure types diverge: direct {direct_error}, served "
                f"{envelope.get('error')!r}"
            )
        if problems:
            return problems
        raise SkippedCase(f"design_run fails consistently: {direct_error}")
    if envelope.get("status") != "done":
        problems.append(
            f"direct call succeeded but the daemon served "
            f"{envelope.get('status')!r}: {envelope.get('error')!r}"
        )
    elif envelope.get("value") != direct_value:
        problems.append(
            "served value differs from the direct design_run value "
            f"(digest {envelope.get('job', '')[:12]})"
        )
    return problems


#: Name -> oracle.  Iteration order is the default execution order.
ORACLES: Dict[str, Callable[[FuzzCase], List[str]]] = {
    "density": oracle_density,
    "legality": oracle_legality,
    "assign_parity": oracle_assign_parity,
    "density_parity": oracle_density_parity,
    "irsolve_parity": oracle_irsolve_parity,
    "backends": oracle_backends,
    "checkpoint": oracle_checkpoint,
    "engine": oracle_engine,
    "serve": oracle_serve,
}

#: Run oracle only on every Nth case (1 = every case).  The engine oracle
#: spawns worker processes, the serve oracle spins a daemon + a full
#: co-design run per case, the checkpoint oracle anneals three times per
#: case, and the irsolve oracle factors grids, so they sample.
ORACLE_STRIDES: Dict[str, int] = {
    "engine": 8,
    "serve": 16,
    "checkpoint": 4,
    "irsolve_parity": 2,
}
