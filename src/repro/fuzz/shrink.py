"""Delta-debugging shrinker: minimize a failing (case, oracle) pair.

Classic greedy ddmin over *semantic* reduction candidates rather than raw
bytes: each candidate rewrites one field of the :class:`FuzzCase` toward
its simplest value (defaults, 1s, zeros).  Any rewrite that still fails
the oracle is kept; the loop restarts until a full pass changes nothing —
a local minimum where every single-field simplification makes the bug
disappear.  Deterministic: candidate order is fixed, no randomness.

The oracle predicate treats :class:`~.oracles.SkippedCase` and *invalid*
specs as "not failing", so shrinking can never wander from a real
divergence into a merely-degenerate case.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Tuple

from ..errors import CircuitSpecError
from .gen import FuzzCase, with_spec_field

#: Hard ceiling on oracle evaluations per shrink (each runs real anneals).
MAX_EVALS = 400

_SPEC_DEFAULTS = {
    "bump_ball_space": 1.2,
    "finger_width": 0.1,
    "finger_height": 0.2,
    "finger_space": 0.12,
    "supply_fraction": 0.25,
}


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Single-field simplifications of *case*, most aggressive first."""
    spec = case.spec
    # structure first: fewer tiers/quadrants/rows shrink everything else
    if spec.get("tier_count", 1) != 1:
        yield with_spec_field(case, "tier_count", 1)
        yield with_spec_field(case, "tier_count", max(1, spec["tier_count"] // 2))
    if spec.get("quadrant_count", 4) != 1:
        yield with_spec_field(case, "quadrant_count", 1)
    if spec.get("rows_per_quadrant", 4) != 1:
        yield with_spec_field(case, "rows_per_quadrant", 1)
        yield with_spec_field(
            case, "rows_per_quadrant", max(1, spec["rows_per_quadrant"] // 2)
        )
    minimum = spec.get("rows_per_quadrant", 4) * spec.get("quadrant_count", 4)
    count = spec.get("finger_count", minimum)
    if count > minimum:
        yield with_spec_field(case, "finger_count", minimum)
        yield with_spec_field(case, "finger_count", (count + minimum) // 2)
        yield with_spec_field(case, "finger_count", count - 1)
    # geometry back to defaults
    for key, default in _SPEC_DEFAULTS.items():
        if spec.get(key, default) != default:
            yield with_spec_field(case, key, default)
    # run knobs
    if case.split_networks:
        yield replace(case, split_networks=False)
    if not case.track_all_rows:
        yield replace(case, track_all_rows=True)
    if case.wl_resync_interval is not None:
        yield replace(case, wl_resync_interval=None)
    if case.weights:
        yield replace(case, weights={})
        for key in list(case.weights):
            trimmed = dict(case.weights)
            del trimmed[key]
            yield replace(case, weights=trimmed)
    if case.sa:
        moves = case.sa.get("moves_per_temp", 1)
        if moves > 1:
            yield replace(case, sa=dict(case.sa, moves_per_temp=1))
            yield replace(case, sa=dict(case.sa, moves_per_temp=moves // 2))
    # seeds last: zero is the canonical replay seed
    if case.design_seed:
        yield replace(case, design_seed=0)
    if case.run_seed:
        yield replace(case, run_seed=0)


def shrink_case(
    case: FuzzCase,
    is_failing: Callable[[FuzzCase], bool],
    max_evals: int = MAX_EVALS,
) -> Tuple[FuzzCase, int]:
    """Greedy fixed-point minimization; returns ``(minimized, evals)``.

    *is_failing* must return True for the original *case* (the caller just
    observed the failure) and is never re-invoked on it.
    """
    evals = 0
    current = case
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            try:
                candidate.build_spec()
            except CircuitSpecError:
                continue
            evals += 1
            if is_failing(candidate):
                current = candidate
                improved = True
                break
    return current, evals


def failure_predicate(oracle: Callable[[FuzzCase], List[str]]):
    """Wrap an oracle into the bool predicate :func:`shrink_case` needs."""
    from .oracles import SkippedCase

    def is_failing(candidate: FuzzCase) -> bool:
        try:
            return bool(oracle(candidate))
        except SkippedCase:
            return False

    return is_failing
