"""The didactic examples of the paper's figures (Figs. 5, 10, 12, 13).

The 12-net example of Figs. 5/10/12 is fully specified by the paper's text
(finger orders, ball rows and published densities), so it is reconstructed
exactly.  The 20-net example of Fig. 13 is only partially specified (the
figure image carries the ball layout); we rebuild a 20-net, 4-level BGA with
column-major net numbering that matches the published IFA order prefix and
exhibits the same qualitative outcome (DFA strictly better than IFA).
"""

from __future__ import annotations

from typing import List

from ..package import Quadrant, quadrant_from_rows

#: The paper's random finger order of Fig. 5(A); its max density is 4.
FIG5_RANDOM_ORDER: List[int] = [10, 1, 2, 3, 11, 6, 9, 4, 5, 8, 7, 0]

#: The congestion-driven (DFA) order of Figs. 5(B)/12; max density 2.
FIG5_DFA_ORDER: List[int] = [10, 11, 1, 2, 6, 3, 4, 9, 5, 7, 8, 0]

#: The IFA order of Fig. 10; max density 2.
FIG10_IFA_ORDER: List[int] = [10, 1, 11, 2, 3, 6, 4, 5, 9, 7, 8, 0]

#: Density interval trace DFA computes on the example (paper section 3.1.2).
FIG12_DI_TRACE: List[float] = [1.8, 1.0, 0.0]


def fig5_quadrant(**kwargs) -> Quadrant:
    """The 12-net, 3-level example of Figs. 5, 10 and 12.

    Bump rows (outermost first): ``[10, 2, 4, 7, 0]``, ``[1, 3, 5, 8]`` and
    ``[11, 6, 9]`` (the paper's highest line y = 3).
    """
    return quadrant_from_rows(
        [[10, 2, 4, 7, 0], [1, 3, 5, 8], [11, 6, 9]], **kwargs
    )


def fig13_quadrant(**kwargs) -> Quadrant:
    """A 20-net, 4-level example in the spirit of Fig. 13.

    Nets are numbered column-major over the ball array, as in the figure
    (the IFA order begins ``13, 7, 3, 1, 14, 8, 4, 2, ...``, i.e. one net
    per level before moving to the next column).  Rows, outermost first:
    ``[13..20]`` is not literal — the exact published layout lives in the
    figure image which the reproduction cannot access; this reconstruction
    keeps the structure (20 nets, 4 levels, trapezoid) and the result
    (DFA density < IFA density).
    """
    rows = [
        [13, 14, 15, 16, 17, 18, 19, 20],  # outermost level
        [7, 8, 9, 10, 11, 12],
        [3, 4, 5, 6],
        [1, 2],  # highest line, nearest the fingers
    ]
    return quadrant_from_rows(rows, **kwargs)
