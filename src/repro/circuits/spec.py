"""Test-circuit specifications (paper Table 1).

A :class:`CircuitSpec` captures everything Table 1 publishes about a test
circuit — finger/pad count and the package's physical dimensions — plus the
knobs the paper states in prose: four bump rows per package side and the
number of die tiers for the stacking experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import CircuitSpecError


@dataclass(frozen=True)
class CircuitSpec:
    """One row of Table 1 (plus generation knobs).

    Attributes
    ----------
    name:
        Circuit label ("circuit1" ... "circuit5").
    finger_count:
        Total finger/pad count across the whole package (Table 1 column 2).
    bump_ball_space:
        Minimal space between two continual bump balls, micrometres.
    finger_width / finger_height / finger_space:
        Finger dimensions and spacing, micrometres.
    rows_per_quadrant:
        Horizontal bump lines per package side; the paper sets 4.
    quadrant_count:
        Sides of the package to populate (the paper always uses 4; small
        didactic designs may use 1).
    supply_fraction:
        Fraction of nets that are supply (power + ground) pads.
    tier_count:
        Die tiers (``psi``); 1 = 2-D IC, 4 = the paper's stacking runs.
    """

    name: str
    finger_count: int
    bump_ball_space: float = 1.2
    finger_width: float = 0.1
    finger_height: float = 0.2
    finger_space: float = 0.12
    rows_per_quadrant: int = 4
    quadrant_count: int = 4
    supply_fraction: float = 0.25
    tier_count: int = 1

    def __post_init__(self) -> None:
        if self.finger_count < self.quadrant_count:
            raise CircuitSpecError(
                f"{self.name}: need at least one finger per quadrant"
            )
        if not (1 <= self.quadrant_count <= 4):
            raise CircuitSpecError(
                f"{self.name}: quadrant count must be 1..4, got {self.quadrant_count}"
            )
        if self.rows_per_quadrant < 1:
            raise CircuitSpecError(
                f"{self.name}: rows_per_quadrant must be >= 1"
            )
        if not (0.0 <= self.supply_fraction <= 1.0):
            raise CircuitSpecError(
                f"{self.name}: supply fraction must be in [0, 1]"
            )
        if self.tier_count < 1:
            raise CircuitSpecError(f"{self.name}: tier count must be >= 1")
        if min(self.bump_ball_space, self.finger_width, self.finger_height) <= 0:
            raise CircuitSpecError(f"{self.name}: dimensions must be positive")
        if self.finger_space < 0:
            raise CircuitSpecError(f"{self.name}: finger space must be >= 0")
        minimum = self.rows_per_quadrant * self.quadrant_count
        if self.finger_count < minimum:
            raise CircuitSpecError(
                f"{self.name}: {self.finger_count} fingers cannot fill "
                f"{self.rows_per_quadrant} rows x {self.quadrant_count} quadrants"
            )

    @property
    def fingers_per_quadrant(self) -> int:
        """Nominal per-quadrant net count (remainders spread by the generator)."""
        return self.finger_count // self.quadrant_count

    def with_tiers(self, tier_count: int) -> "CircuitSpec":
        """The same circuit as a stacking IC with ``tier_count`` tiers."""
        return replace(self, tier_count=tier_count)
