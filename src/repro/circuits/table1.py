"""The five test circuits of Table 1, with the published parameters.

=========  ===========  ===============  ============  =============  ============
Circuit    finger/pads  bump ball space  finger width  finger height  finger space
=========  ===========  ===============  ============  =============  ============
Circuit 1       96           2.0             0.025          0.4           0.025
Circuit 2      160           1.4             0.006          0.3           0.1
Circuit 3      208           1.2             0.006          0.2           0.007
Circuit 4      352           1.2             0.1            0.2           0.12
Circuit 5      448           1.2             0.1            0.2           0.12
=========  ===========  ===============  ============  =============  ============

All lengths in micrometres.  "The number of the horizontal (vertical) line in
the bottom (left) and top (right) part of package architecture is set at 4",
hence ``rows_per_quadrant = 4`` everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..package import PackageDesign
from .generator import build_design
from .spec import CircuitSpec

CIRCUIT_1 = CircuitSpec(
    name="circuit1",
    finger_count=96,
    bump_ball_space=2.0,
    finger_width=0.025,
    finger_height=0.4,
    finger_space=0.025,
)

CIRCUIT_2 = CircuitSpec(
    name="circuit2",
    finger_count=160,
    bump_ball_space=1.4,
    finger_width=0.006,
    finger_height=0.3,
    finger_space=0.1,
)

CIRCUIT_3 = CircuitSpec(
    name="circuit3",
    finger_count=208,
    bump_ball_space=1.2,
    finger_width=0.006,
    finger_height=0.2,
    finger_space=0.007,
)

CIRCUIT_4 = CircuitSpec(
    name="circuit4",
    finger_count=352,
    bump_ball_space=1.2,
    finger_width=0.1,
    finger_height=0.2,
    finger_space=0.12,
)

CIRCUIT_5 = CircuitSpec(
    name="circuit5",
    finger_count=448,
    bump_ball_space=1.2,
    finger_width=0.1,
    finger_height=0.2,
    finger_space=0.12,
)

TABLE1_SPECS: List[CircuitSpec] = [
    CIRCUIT_1,
    CIRCUIT_2,
    CIRCUIT_3,
    CIRCUIT_4,
    CIRCUIT_5,
]


def table1_circuit(index: int, tier_count: int = 1) -> CircuitSpec:
    """Circuit spec by 1-based Table-1 index, optionally as a stacking IC."""
    spec = TABLE1_SPECS[index - 1]
    return spec.with_tiers(tier_count) if tier_count != 1 else spec


def build_table1_designs(
    tier_count: int = 1, seed: Optional[int] = 0
) -> Dict[str, PackageDesign]:
    """All five Table-1 designs, keyed by circuit name."""
    return {
        spec.name: build_design(
            spec.with_tiers(tier_count) if tier_count != 1 else spec, seed=seed
        )
        for spec in TABLE1_SPECS
    }
