"""Synthetic test-circuit generation.

The paper evaluates on "five simplified industrial circuits" whose netlists
are not published — Table 1 only gives finger counts and package dimensions.
This generator builds deterministic synthetic equivalents: the finger count
and package geometry are taken verbatim from the spec, bump rows form the
trapezoidal quadrants of a real BGA, and supply pads are scattered over the
ball array with a seeded RNG.  The assignment/routing/IR algorithms only see
geometry and net types, which is exactly what Table 1 specifies, so the
substitution preserves the behaviour being measured (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import CircuitSpecError
from ..geometry import Side
from ..package import (
    BumpArray,
    FingerRow,
    Net,
    NetList,
    NetType,
    PackageDesign,
    PackageTechnology,
    Quadrant,
    StackingConfig,
)
from .spec import CircuitSpec

_SIDES = (Side.BOTTOM, Side.RIGHT, Side.TOP, Side.LEFT)


def trapezoid_rows(net_count: int, row_count: int) -> List[int]:
    """Ball count per row, outermost first, summing to *net_count*.

    BGA quadrants are trapezoids: the package diagonals (the cut-lines of
    Fig. 2) remove one ball from *each side* of every ring moving inwards,
    so consecutive rows differ by two balls.
    """
    if net_count < row_count:
        raise CircuitSpecError(
            f"cannot spread {net_count} nets over {row_count} rows"
        )
    # Outermost row size m, then m-2, m-4, ...: sum = R*m - R*(R-1).
    base = (net_count + row_count * (row_count - 1)) // row_count - 2 * (
        row_count - 1
    )
    if base < 1:
        # Too few nets for a full trapezoid: fall back to a near-even split.
        sizes = [net_count // row_count] * row_count
        for index in range(net_count - sum(sizes)):
            sizes[index] += 1
        return sorted(sizes, reverse=True)
    sizes = [base + 2 * (row_count - row) for row in range(1, row_count + 1)]
    remainder = net_count - sum(sizes)
    for index in range(remainder):
        sizes[index % row_count] += 1
    return sorted(sizes, reverse=True)


def quadrant_net_counts(spec: CircuitSpec) -> List[int]:
    """Per-quadrant net counts; remainders go to the first sides."""
    base = spec.finger_count // spec.quadrant_count
    counts = [base] * spec.quadrant_count
    for index in range(spec.finger_count - base * spec.quadrant_count):
        counts[index] += 1
    return counts


def build_design(spec: CircuitSpec, seed: Optional[int] = 0) -> PackageDesign:
    """Materialize a :class:`PackageDesign` from a circuit spec."""
    rng = random.Random(seed)
    technology = PackageTechnology(
        bump_ball_space=spec.bump_ball_space,
        finger_width=spec.finger_width,
        finger_height=spec.finger_height,
        finger_space=spec.finger_space,
    )
    stacking = StackingConfig(tier_count=spec.tier_count)

    # Choose which global net indices are supply pads.  Real pad rings
    # spread P/G pads over every package side, so the supply budget is
    # split per quadrant first and then scattered inside each quadrant.
    # Types follow the industry habit of banking power pairs: supply pads
    # come in P,P,G,G runs around the ring — so a plan that only evens out
    # the *union* of supply pads still leaves each individual network
    # unbalanced (the effect the finger/pad exchange removes).
    total = spec.finger_count
    supply_count = round(total * spec.supply_fraction)
    counts = quadrant_net_counts(spec)
    power_set, ground_set = set(), set()
    supply_seen = 0
    offset = 0
    for quadrant_index, count in enumerate(counts):
        share = supply_count // len(counts)
        if quadrant_index < supply_count % len(counts):
            share += 1
        share = min(share, count)
        for local in sorted(rng.sample(range(count), share)):
            if (supply_seen // 2) % 2 == 0:
                power_set.add(offset + local)
            else:
                ground_set.add(offset + local)
            supply_seen += 1
        offset += count

    quadrants = {}
    next_id = 0
    for side, count in zip(_SIDES, counts):
        row_sizes = trapezoid_rows(count, min(spec.rows_per_quadrant, count))
        nets = []
        rows: List[List[int]] = []
        for size in row_sizes:
            row = []
            for __ in range(size):
                net_id = next_id
                next_id += 1
                if net_id in power_set:
                    net_type = NetType.POWER
                    name = f"VDD{net_id}"
                elif net_id in ground_set:
                    net_type = NetType.GROUND
                    name = f"VSS{net_id}"
                else:
                    net_type = NetType.SIGNAL
                    name = f"N{net_id}"
                tier = rng.randrange(spec.tier_count) + 1 if spec.tier_count > 1 else 1
                nets.append(Net(id=net_id, name=name, net_type=net_type, tier=tier))
                row.append(net_id)
            rows.append(row)
        netlist = NetList(nets)
        bumps = BumpArray(rows, pitch=technology.bump_pitch)
        fingers = FingerRow(
            slot_count=count,
            width=technology.finger_width,
            height=technology.finger_height,
            space=technology.finger_space,
        )
        quadrants[side] = Quadrant(netlist, bumps, fingers=fingers, side=side)

    return PackageDesign(
        quadrants,
        technology=technology,
        stacking=stacking,
        name=spec.name,
    )
