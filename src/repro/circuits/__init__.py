"""Test circuits: Table-1 designs, figure examples and the real-chip proxy."""

from .figures import (
    FIG5_DFA_ORDER,
    FIG5_RANDOM_ORDER,
    FIG10_IFA_ORDER,
    FIG12_DI_TRACE,
    fig5_quadrant,
    fig13_quadrant,
)
from .generator import build_design, quadrant_net_counts, trapezoid_rows
from .realchip import (
    REALCHIP_SPEC,
    Fig6Result,
    boundary_demand,
    build_realchip,
    hotspot_current_map,
    drop_map_demand,
    optimized_plan,
    random_plan,
    realchip_grid_config,
    regular_plan,
    run_fig6,
)
from .spec import CircuitSpec
from .table1 import (
    CIRCUIT_1,
    CIRCUIT_2,
    CIRCUIT_3,
    CIRCUIT_4,
    CIRCUIT_5,
    TABLE1_SPECS,
    build_table1_designs,
    table1_circuit,
)

__all__ = [
    "CIRCUIT_1",
    "CIRCUIT_2",
    "CIRCUIT_3",
    "CIRCUIT_4",
    "CIRCUIT_5",
    "CircuitSpec",
    "FIG10_IFA_ORDER",
    "FIG12_DI_TRACE",
    "FIG5_DFA_ORDER",
    "FIG5_RANDOM_ORDER",
    "Fig6Result",
    "REALCHIP_SPEC",
    "TABLE1_SPECS",
    "boundary_demand",
    "build_design",
    "build_realchip",
    "build_table1_designs",
    "fig13_quadrant",
    "fig5_quadrant",
    "hotspot_current_map",
    "drop_map_demand",
    "optimized_plan",
    "quadrant_net_counts",
    "random_plan",
    "realchip_grid_config",
    "regular_plan",
    "run_fig6",
    "table1_circuit",
    "trapezoid_rows",
]
