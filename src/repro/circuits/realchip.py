"""The Fig.-6 "real chip" experiment, rebuilt synthetically.

The paper validates its method on a real design: "this design has 138
finger/pads and the gate count is 2.3 million", analyzed with commercial
sign-off tools.  Three power-pad plans are compared:

* Fig. 6(A) — power pads randomly planned: max IR-drop 117.4 mV;
* Fig. 6(B) — power pads regularly planned: 77.3 mV;
* Fig. 6(C) — DFA + finger/pad exchange: 55.2 mV.

We cannot access that chip or the commercial tools, so this module builds
the closest synthetic equivalent (see DESIGN.md, "Substitutions"): a 138-pad
package over a finite-difference power grid whose current map contains a hot
block — the realistic feature that separates a *regular* plan from an
*optimized* one.  A regular plan spreads pads evenly and ignores the hot
block; the exchange method, driven by the demand-weighted compact proxy,
pulls supply pads towards it.  The evaluation path (a full power-grid solve)
is the same code path a sign-off tool exercises.
"""

from __future__ import annotations

from ..assign import assign_design
import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..assign import DFAAssigner, RandomAssigner, swap_is_legal
from ..exchange import CostWeights, FingerPadExchanger, SAParams
from ..package import NetType, PackageDesign
from ..power import FDSolver, PowerGridConfig, weighted_compact_cost
from ..power.pads import pad_nodes_for_grid
from ..units import to_mv
from .generator import build_design
from .spec import CircuitSpec

#: The published 138-finger/pad chip, as a circuit spec.  Roughly one pad in
#: seven is a supply pad (about 21 P/G pads over four sides), which keeps
#: pad placement a first-order effect on the IR-drop map.
REALCHIP_SPEC = CircuitSpec(
    name="realchip",
    finger_count=138,
    bump_ball_space=1.2,
    finger_width=0.1,
    finger_height=0.2,
    finger_space=0.12,
    supply_fraction=0.15,
)

#: Hot-block geometry, as fractions of the die edge.  The block touches the
#: top-right corner of the die, where a 2.3M-gate design might place its
#: densest datapath; a block at the boundary is exactly the case where pad
#: placement matters most.
_HOT_LO, _HOT_HI = 0.70, 1.0
#: Hot-block current multiplier over the background logic.
_HOT_FACTOR = 12.0
#: Ring fraction of the top-right corner (ring walks bottom, right, top, left).
_HOT_RING_CENTER = 0.5
_HOT_RING_SIGMA = 0.10


def realchip_grid_config(size: int = 40) -> PowerGridConfig:
    """Power-grid constants calibrated so Fig. 6(A) lands near 117 mV.

    Absolute IR-drop scales linearly in ``j0 * r``; the constants below were
    fitted once against the random plan of :func:`run_fig6` (seed 2009) so
    the synthetic chip operates in the paper's millivolt regime.
    """
    return PowerGridConfig(size=size, vdd=1.0, r_sx=1.0, r_sy=1.0, j0=3.11e-4)


def hotspot_current_map(config: PowerGridConfig) -> np.ndarray:
    """Per-node current draw: uniform logic plus one hot block."""
    g = config.size
    current = np.full((g, g), config.j0)
    lo, hi = int(_HOT_LO * g), int(_HOT_HI * g)
    current[lo:hi, lo:hi] *= _HOT_FACTOR
    return current


def boundary_demand(fraction: float) -> float:
    """Relative core power demand behind a point of the boundary ring.

    Used to weight the compact IR proxy; peaks at the ring stretch nearest
    the hot block (around the top-right corner).
    """
    distance = abs((fraction - _HOT_RING_CENTER + 0.5) % 1.0 - 0.5)
    return 1.0 + (_HOT_FACTOR - 2.0) * math.exp(
        -(distance**2) / (2.0 * _HOT_RING_SIGMA**2)
    )


def build_realchip(seed: int = 2009) -> PackageDesign:
    """The synthetic 138-pad design."""
    return build_design(REALCHIP_SPEC, seed=seed)


# -- the three pad plans -------------------------------------------------------


def random_plan(design: PackageDesign, seed: int = 2009) -> Dict:
    """Fig. 6(A): a random (but monotonic-legal) finger/pad order."""
    return assign_design(RandomAssigner(), design, seed=seed)


def regular_plan(design: PackageDesign, seed: int = 1) -> Dict:
    """Fig. 6(B): supply pads planned regularly along the boundary.

    "Regularly planned" means the pads of the supply *union* are spread as
    evenly as the monotonic range constraints allow — the plan a careful
    designer produces without any IR analysis.  It is computed with the same
    exchange machinery as the optimized plan but scoring only the type-blind
    union of supply pads: no per-network awareness, no power-map knowledge.
    """
    assignments = assign_design(DFAAssigner(), design)
    exchanger = FingerPadExchanger(
        design,
        weights=CostWeights(ir=1.0, density=0.05, bonding=0.0),
        params=SAParams(
            initial_temp=0.03, final_temp=1e-4, cooling=0.96, moves_per_temp=300
        ),
        net_type=None,  # the union of POWER and GROUND pads
        split_networks=False,
    )
    return exchanger.run(assignments, seed=seed).after


def drop_map_demand(design: PackageDesign, assignments: Dict, config, solver):
    """Demand weights for the compact proxy from an actual IR-drop map.

    The paper's flow computes an IR-drop map with the compact model [17]
    before exchanging pads; here the map of the *initial* plan weights the
    boundary ring, so the exchange pulls supply pads towards the stretches
    that are actually starving (squared to emphasise the worst region).
    """
    result = solver.factorize(
        pad_nodes_for_grid(design, assignments, config, net_type=None)
    ).solve()
    ring = config.boundary_ring()
    drops = np.array([result.drop_map[x, y] for (x, y) in ring])
    mean = drops.mean() or 1.0
    # Squared to emphasise the starving stretches, floored so a spot that
    # happens to sit at a pad (zero drop) still carries some weight.
    weights = 0.1 + (drops / mean) ** 2

    def demand(fraction: float) -> float:
        index = min(int(fraction % 1.0 * len(ring)), len(ring) - 1)
        return float(weights[index])

    return demand


def optimized_plan(
    design: PackageDesign,
    seed: int = 2009,
    params: Optional[SAParams] = None,
    demand=None,
) -> Dict:
    """Fig. 6(C): DFA seed + per-network finger/pad exchange.

    The exchange scores the VDD and VSS networks *separately*
    (``split_networks=True``): a type-blind regular plan evens out the
    union of supply pads but leaves each network's own pads banked in
    P,P,G,G runs; the exchange interleaves them.  ``demand`` optionally
    weights the proxy towards hot boundary stretches
    (:func:`boundary_demand` or :func:`drop_map_demand`).
    """
    assignments = assign_design(DFAAssigner(), design)
    if demand is None:
        ir_proxy = None  # the paper's uniform gap-spread proxy
    else:
        ir_proxy = lambda fractions: weighted_compact_cost(fractions, demand)
    exchanger = FingerPadExchanger(
        design,
        weights=CostWeights(ir=1.0, density=0.05, bonding=0.0),
        params=params
        or SAParams(
            initial_temp=0.03, final_temp=1e-4, cooling=0.96, moves_per_temp=300
        ),
        net_type=None,
        ir_proxy=ir_proxy,
    )
    return exchanger.run(assignments, seed=seed).after


def _side_offset(design: PackageDesign, side) -> int:
    offset = 0
    for ring_side in design.sides:
        if ring_side is side:
            return offset
        offset += design.quadrants[ring_side].net_count
    raise ValueError(f"side {side} not in design")


def fd_descent_plan(
    design: PackageDesign,
    assignments: Dict,
    config,
    solver,
    passes: int = 6,
) -> Dict:
    """Refine a plan with the accurate model in the loop.

    The paper notes the accuracy/efficiency trade-off explicitly: "we can
    use more accurate model for chip performance, however, the tradeoff for
    efficiency exists."  This is that trade taken: a greedy adjacent-swap
    descent over the supply pads where every candidate is scored by the full
    finite-difference solve on the worst supply network (what a sign-off
    tool would report) — a few hundred solves instead of the compact proxy.
    """
    plans = {side: assignment.copy() for side, assignment in assignments.items()}

    def metric() -> float:
        nodes = pad_nodes_for_grid(design, plans, config, net_type=None)
        return solver.factorize(nodes).solve().max_drop

    current = metric()
    for __ in range(max(1, passes)):
        improved = False
        for side, quadrant in design:
            assignment = plans[side]
            supply_ids = [
                net.id for net in quadrant.netlist if net.net_type.is_supply
            ]
            for net_id in supply_ids:
                for step in (-1, 1):
                    slot = assignment.slot_of(net_id)
                    neighbour = slot + step
                    if not (1 <= neighbour <= assignment.slot_count):
                        continue
                    lo, hi = sorted((slot, neighbour))
                    if not swap_is_legal(assignment, lo, hi):
                        continue
                    assignment.swap_slots(lo, hi)
                    candidate = metric()
                    if candidate < current - 1e-12:
                        current = candidate
                        improved = True
                    else:
                        assignment.swap_slots(lo, hi)
        if not improved:
            break
    return plans


# -- the experiment -------------------------------------------------------------


@dataclass
class Fig6Result:
    """Max IR-drop of the three plans, in millivolts."""

    random_mv: float
    regular_mv: float
    optimized_mv: float

    def as_rows(self):
        return [
            ("random pads (Fig 6A)", self.random_mv, 117.4),
            ("regular pads (Fig 6B)", self.regular_mv, 77.3),
            ("DFA + exchange (Fig 6C)", self.optimized_mv, 55.2),
        ]


def run_fig6(seed: int = 2009, grid_size: int = 40) -> Fig6Result:
    """Run the full Fig.-6 comparison on the synthetic real chip.

    All supply pads (POWER and GROUND) pin the grid, mirroring the combined
    P/G mesh a sign-off map like the paper's Fig. 6 displays.  The three
    plans differ only in *where* the supply pads sit:

    * random — no planning at all;
    * regular — pads spread evenly, no knowledge of the power map;
    * optimized — DFA + exchange driven by the solved IR-drop map, plus the
      accurate-model refinement the paper's discussion sanctions.
    """
    design = build_realchip(seed=seed)
    config = realchip_grid_config(size=grid_size)
    solver = FDSolver(config, current_map=hotspot_current_map(config))

    def max_drop_mv(assignments: Dict) -> float:
        nodes = pad_nodes_for_grid(design, assignments, config, net_type=None)
        return to_mv(solver.factorize(nodes).solve().max_drop)

    initial = assign_design(DFAAssigner(), design)
    demand = drop_map_demand(design, initial, config, solver)
    proxy_plan = optimized_plan(design, seed=seed, demand=demand)
    refined_plan = fd_descent_plan(design, proxy_plan, config, solver)
    return Fig6Result(
        random_mv=max_drop_mv(random_plan(design, seed=seed)),
        regular_mv=max_drop_mv(regular_plan(design)),
        optimized_mv=max_drop_mv(refined_plan),
    )
