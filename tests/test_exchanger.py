"""End-to-end tests for the finger/pad exchange (paper Fig. 14)."""

from repro.assign import assign_design
import pytest

from repro.assign import DFAAssigner, is_legal
from repro.exchange import (
    CostWeights,
    FingerPadExchanger,
    SAParams,
    omega_of_design,
)
from repro.power import IRDropAnalyzer, PowerGridConfig
from repro.routing import max_density_of_design

FAST_SA = SAParams(initial_temp=0.03, final_temp=1e-3, cooling=0.9, moves_per_temp=60)


class TestExchanger2D:
    def test_inputs_not_mutated(self, small_design):
        initial = assign_design(DFAAssigner(), small_design)
        orders = {side: a.order for side, a in initial.items()}
        FingerPadExchanger(small_design, params=FAST_SA).run(initial, seed=1)
        assert {side: a.order for side, a in initial.items()} == orders

    def test_result_is_legal(self, small_design):
        initial = assign_design(DFAAssigner(), small_design)
        result = FingerPadExchanger(small_design, params=FAST_SA).run(initial, seed=1)
        for assignment in result.after.values():
            assert is_legal(assignment)

    def test_best_cost_never_worse_than_initial(self, small_design):
        initial = assign_design(DFAAssigner(), small_design)
        result = FingerPadExchanger(small_design, params=FAST_SA).run(initial, seed=1)
        assert result.stats.best_cost <= result.stats.initial_cost + 1e-9

    def test_compact_proxy_improves(self, small_design):
        initial = assign_design(DFAAssigner(), small_design)
        exchanger = FingerPadExchanger(small_design, params=FAST_SA)
        result = exchanger.run(initial, seed=1)
        assert (
            result.cost_breakdown_after["total"]
            <= result.cost_breakdown_before["total"] + 1e-9
        )

    def test_ir_drop_improves_on_solver(self, small_design):
        """The headline Table-3 claim: exchange reduces solved IR-drop."""
        initial = assign_design(DFAAssigner(), small_design)
        exchanger = FingerPadExchanger(
            small_design,
            params=SAParams(
                initial_temp=0.03, final_temp=1e-4, cooling=0.93, moves_per_temp=120
            ),
        )
        result = exchanger.run(initial, seed=7)
        analyzer = IRDropAnalyzer(small_design, PowerGridConfig(size=24))
        improvement = analyzer.improvement(result.before, result.after)
        assert improvement >= 0.0

    def test_density_growth_bounded(self, small_design):
        initial = assign_design(DFAAssigner(), small_design)
        result = FingerPadExchanger(small_design, params=FAST_SA).run(initial, seed=1)
        before = max_density_of_design(result.before)
        after = max_density_of_design(result.after)
        assert after <= before + 4  # the ID term keeps growth modest

    def test_deterministic_given_seed(self, small_design):
        initial = assign_design(DFAAssigner(), small_design)
        exchanger = FingerPadExchanger(small_design, params=FAST_SA)
        a = exchanger.run(initial, seed=5)
        b = exchanger.run(initial, seed=5)
        assert {s: x.order for s, x in a.after.items()} == {
            s: x.order for s, x in b.after.items()
        }


class TestExchangerStacked:
    def test_bonding_improves(self, stacked_design):
        initial = assign_design(DFAAssigner(), stacked_design)
        exchanger = FingerPadExchanger(
            stacked_design,
            params=SAParams(
                initial_temp=0.03, final_temp=1e-4, cooling=0.93, moves_per_temp=120
            ),
        )
        result = exchanger.run(initial, seed=7)
        assert result.omega_after <= result.omega_before
        assert result.bonding_improvement >= 0.0

    def test_omega_accounting(self, stacked_design):
        initial = assign_design(DFAAssigner(), stacked_design)
        result = FingerPadExchanger(stacked_design, params=FAST_SA).run(initial, seed=3)
        assert result.omega_before == omega_of_design(result.before, 4)
        assert result.omega_after == omega_of_design(result.after, 4)

    def test_all_pads_movable(self, stacked_design):
        initial = assign_design(DFAAssigner(), stacked_design)
        result = FingerPadExchanger(stacked_design, params=FAST_SA).run(initial, seed=3)
        moved_signal = False
        for side, assignment in result.after.items():
            quadrant = stacked_design.quadrants[side]
            for net in quadrant.netlist:
                if net.net_type.is_supply:
                    continue
                if assignment.slot_of(net.id) != result.before[side].slot_of(net.id):
                    moved_signal = True
        assert moved_signal


class TestPolish:
    def test_polish_never_hurts(self, small_design):
        initial = assign_design(DFAAssigner(), small_design)
        with_polish = FingerPadExchanger(
            small_design, params=FAST_SA, polish_passes=10
        ).run(initial, seed=2)
        without = FingerPadExchanger(
            small_design, params=FAST_SA, polish_passes=0
        ).run(initial, seed=2)
        assert (
            with_polish.cost_breakdown_after["total"]
            <= without.cost_breakdown_after["total"] + 1e-9
        )
