"""Tests for JSON/CSV/SVG serialization."""

from repro.assign import assign_design
import json

import pytest

from repro.assign import DFAAssigner
from repro.errors import SerializationError
from repro.flow import CoDesignFlow, compare_assigners
from repro.exchange import SAParams
from repro.io import (
    assignments_from_dict,
    assignments_to_dict,
    design_from_dict,
    design_to_dict,
    load_assignments,
    load_design,
    read_rows,
    routing_to_svg,
    save_assignments,
    save_design,
    save_routing_svg,
    write_codesign_csv,
    write_comparison_csv,
)
from repro.power import PowerGridConfig
from repro.routing import MonotonicRouter


class TestDesignRoundtrip:
    def test_dict_roundtrip(self, small_design):
        payload = design_to_dict(small_design)
        rebuilt = design_from_dict(payload)
        assert rebuilt.total_net_count == small_design.total_net_count
        assert rebuilt.name == small_design.name
        assert [n.name for n in rebuilt.all_nets()] == [
            n.name for n in small_design.all_nets()
        ]

    def test_stacking_preserved(self, stacked_design):
        rebuilt = design_from_dict(design_to_dict(stacked_design))
        assert rebuilt.stacking.tier_count == 4
        assert [n.tier for n in rebuilt.all_nets()] == [
            n.tier for n in stacked_design.all_nets()
        ]

    def test_file_roundtrip(self, small_design, tmp_path):
        path = tmp_path / "design.json"
        save_design(small_design, path)
        rebuilt = load_design(path)
        assert rebuilt.total_net_count == small_design.total_net_count

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError):
            design_from_dict({"format": "something-else"})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_design(tmp_path / "nope.json")

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_design(path)


class TestAssignmentRoundtrip:
    def test_roundtrip(self, small_design, tmp_path):
        assignments = assign_design(DFAAssigner(), small_design)
        path = tmp_path / "assign.json"
        save_assignments(assignments, path)
        rebuilt = load_assignments(path, small_design)
        assert {s: a.order for s, a in rebuilt.items()} == {
            s: a.order for s, a in assignments.items()
        }

    def test_dict_roundtrip(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        rebuilt = assignments_from_dict(
            assignments_to_dict(assignments), small_design
        )
        assert set(rebuilt) == set(assignments)

    def test_bad_format_rejected(self, small_design):
        with pytest.raises(SerializationError):
            assignments_from_dict({"format": "nope"}, small_design)


class TestCSV:
    def test_comparison_csv(self, small_design, tmp_path):
        table = compare_assigners({"c1": small_design}, seed=0)
        path = tmp_path / "table2.csv"
        write_comparison_csv(table, path)
        rows = read_rows(path)
        assert len(rows) == 3
        assert {row["assigner"] for row in rows} == {"Random", "IFA", "DFA"}

    def test_codesign_csv(self, small_design, tmp_path):
        flow = CoDesignFlow(
            sa_params=SAParams(
                initial_temp=0.03, final_temp=1e-3, cooling=0.9, moves_per_temp=40
            ),
            grid_config=PowerGridConfig(size=16),
        )
        result = flow.run(small_design, seed=0)
        path = tmp_path / "table3.csv"
        write_codesign_csv({"c1": result}, path)
        rows = read_rows(path)
        assert len(rows) == 1
        assert float(rows[0]["ir_drop_before_v"]) > 0


class TestSVG:
    def test_svg_structure(self, fig5):
        assignment = DFAAssigner().assign(fig5)
        result = MonotonicRouter().route(assignment)
        svg = routing_to_svg(assignment, result)
        assert svg.startswith("<svg")
        assert svg.count("<polyline") == fig5.net_count
        assert "max density" in svg

    def test_svg_file(self, fig5, tmp_path):
        assignment = DFAAssigner().assign(fig5)
        result = MonotonicRouter().route(assignment)
        path = tmp_path / "route.svg"
        save_routing_svg(assignment, result, path)
        assert path.read_text().endswith("</svg>")
