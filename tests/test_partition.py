"""Tests for the net-to-quadrant partitioning pre-step."""

from repro.assign import assign_design
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign import (
    DFAAssigner,
    Partition,
    PartitionSpec,
    is_legal,
    partition_ring,
    partition_to_rows,
)
from repro.errors import AssignmentError
from repro.geometry import Side
from repro.package import PackageDesign, quadrant_from_rows


class TestPartitionSpec:
    def test_even_split(self):
        capacities = PartitionSpec().resolve(10)
        assert sum(capacities.values()) == 10
        assert max(capacities.values()) - min(capacities.values()) <= 1

    def test_explicit_capacities(self):
        spec = PartitionSpec(
            capacities={Side.BOTTOM: 4, Side.RIGHT: 3, Side.TOP: 2, Side.LEFT: 1}
        )
        assert spec.resolve(10)[Side.BOTTOM] == 4

    def test_capacity_mismatch_rejected(self):
        spec = PartitionSpec(capacities={Side.BOTTOM: 5, Side.RIGHT: 5,
                                         Side.TOP: 5, Side.LEFT: 5})
        with pytest.raises(AssignmentError):
            spec.resolve(10)


class TestPartitionRing:
    def test_contiguous_arcs(self):
        partition = partition_ring(list(range(12)))
        assert partition.net_count == 12
        assert partition.sides[Side.BOTTOM] == [0, 1, 2]
        assert partition.sides[Side.LEFT] == [9, 10, 11]

    def test_duplicates_rejected(self):
        with pytest.raises(AssignmentError):
            partition_ring([1, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(AssignmentError):
            partition_ring([])

    def test_side_of(self):
        partition = partition_ring(list(range(8)))
        assert partition.side_of(0) is Side.BOTTOM
        with pytest.raises(AssignmentError):
            partition.side_of(99)

    def test_preferences_steer_rotation(self):
        # prefer nets 4..7 on the BOTTOM: rotation by 4 satisfies everyone
        preferred = {net: Side.BOTTOM for net in (4, 5, 6, 7)}
        partition = partition_ring(list(range(16)), preferred=preferred)
        assert partition.mismatch(preferred) == 0
        assert partition.sides[Side.BOTTOM] == [4, 5, 6, 7]

    def test_mismatch_counts(self):
        partition = Partition(sides={Side.BOTTOM: [0, 1],
                                     Side.RIGHT: [2],
                                     Side.TOP: [],
                                     Side.LEFT: []})
        assert partition.mismatch({0: Side.RIGHT, 2: Side.RIGHT}) == 1

    @given(st.integers(min_value=4, max_value=64))
    @settings(max_examples=30)
    def test_partition_covers_everything(self, count):
        partition = partition_ring(list(range(count)))
        collected = [n for side in partition.sides.values() for n in side]
        assert sorted(collected) == list(range(count))


class TestPartitionToDesign:
    def test_rows_feed_the_package_model(self):
        """partition -> rows -> quadrants -> legal DFA assignment."""
        partition = partition_ring(list(range(48)))
        rows_by_side = partition_to_rows(partition, rows_per_quadrant=4)
        quadrants = {
            side: quadrant_from_rows(rows, side=side)
            for side, rows in rows_by_side.items()
        }
        design = PackageDesign(quadrants, name="partitioned")
        assert design.total_net_count == 48
        for assignment in assign_design(DFAAssigner(), design).values():
            assert is_legal(assignment)

    def test_row_sizes_are_trapezoids(self):
        partition = partition_ring(list(range(52)))
        rows_by_side = partition_to_rows(partition)
        for rows in rows_by_side.values():
            sizes = [len(row) for row in rows]
            assert sizes == sorted(sizes, reverse=True)
