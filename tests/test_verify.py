"""The verification subsystem: checkers, diagnostics, policies, repair.

The checkers must (a) pass real algorithm output untouched and (b) flag
every corruption we can fabricate, with stable machine-readable codes.
The repair must restore legality without changing the density footprint.
"""

from repro.assign import assign_design
import math

import pytest

from repro.assign import Assignment, DFAAssigner, IFAAssigner, row_violations
from repro.circuits import build_design, table1_circuit
from repro.errors import VerificationError, classify_error
from repro.geometry import Side
from repro.package import PackageDesign, quadrant_from_rows
from repro.routing import max_density
from repro.verify import (
    Diagnostic,
    VerificationReport,
    check_assignments,
    check_design,
    check_job_value,
    check_power_values,
    normalize,
    repair_assignment,
    repair_assignments,
)


def small_design(rows=((0, 1, 2, 3), (4, 5, 6))):
    quadrant = quadrant_from_rows([list(row) for row in rows])
    return PackageDesign({Side.BOTTOM: quadrant}, name="small")


class TestDiagnostics:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(code="x", severity="fatal", message="nope")

    def test_report_ok_ignores_warnings_and_info(self):
        report = VerificationReport(subject="s")
        report.warning("w.code", "warn")
        report.info("i.code", "info")
        assert report.ok
        report.error("e.code", "bad")
        assert not report.ok
        assert report.codes("error") == ["e.code"]
        assert report.has("w.code")

    def test_raise_if_errors_carries_diagnostics(self):
        report = VerificationReport(subject="s")
        report.error("e.one", "first", side="bottom")
        report.error("e.two", "second")
        with pytest.raises(VerificationError) as excinfo:
            report.raise_if_errors()
        assert [d.code for d in excinfo.value.diagnostics] == ["e.one", "e.two"]
        assert classify_error(excinfo.value) == "verification"

    def test_clean_report_renders_and_does_not_raise(self):
        report = VerificationReport(subject="s")
        assert report.raise_if_errors() is report
        assert "clean" in report.render()


class TestCheckDesign:
    def test_table1_design_is_clean(self):
        design = build_design(table1_circuit(1), seed=0)
        assert check_design(design).ok

    def test_small_design_is_clean(self):
        assert check_design(small_design()).ok

    def test_empty_design(self):
        class Hollow:
            name = "hollow"
            quadrants = {}

        report = check_design(Hollow())
        assert report.has("design.empty") and not report.ok

    def test_cross_quadrant_duplicate_is_a_warning(self):
        design = PackageDesign(
            {
                Side.BOTTOM: quadrant_from_rows([[0, 1]]),
                Side.TOP: quadrant_from_rows([[0, 1]]),
            }
        )
        report = check_design(design)
        assert report.ok  # warnings only
        assert "design.duplicate-net" in report.codes("warning")

    def test_tier_range_caught_on_mutated_design(self):
        design = build_design(table1_circuit(1, tier_count=4), seed=0)
        # simulate post-construction corruption: shrink the stack in place
        from repro.package import StackingConfig

        design.stacking = StackingConfig(tier_count=1)
        report = check_design(design)
        assert "design.tier-range" in report.codes("error")


class TestCheckAssignments:
    def test_dfa_output_passes_deep_check(self):
        design = build_design(table1_circuit(1), seed=0)
        assignments = assign_design(DFAAssigner(), design, seed=0)
        report = check_assignments(design, assignments, deep=True)
        assert report.ok, report.render()

    def test_ifa_output_passes_deep_check(self):
        design = small_design()
        assignments = assign_design(IFAAssigner(), design, seed=0)
        assert check_assignments(design, assignments, deep=True).ok

    def test_missing_side(self):
        design = small_design()
        report = check_assignments(design, {})
        assert "assign.missing-side" in report.codes("error")

    def test_extra_side(self):
        design = small_design()
        assignments = assign_design(DFAAssigner(), design)
        assignments[Side.TOP] = assignments[Side.BOTTOM]
        report = check_assignments(design, assignments)
        assert "assign.extra-side" in report.codes("error")

    def test_monotonic_violation(self):
        design = small_design(rows=((0, 1, 2, 3),))
        quadrant = design.quadrants[Side.BOTTOM]
        illegal = Assignment(quadrant, [3, 2, 1, 0])
        report = check_assignments(design, {Side.BOTTOM: illegal}, deep=False)
        assert "assign.monotonic" in report.codes("error")

    def test_not_bijective_after_mutation(self):
        design = small_design()
        assignments = assign_design(DFAAssigner(), design)
        # corrupt the internal order the way a buggy in-place mutation would
        assignments[Side.BOTTOM]._order[0] = assignments[Side.BOTTOM]._order[1]
        report = check_assignments(design, assignments, deep=False)
        assert "assign.not-bijective" in report.codes("error")


class TestCheckPower:
    def test_clean_values(self):
        assert check_power_values({"a": 0.0, "b": 1.5, "c": None}).ok

    def test_nonfinite(self):
        report = check_power_values({"ir": float("nan"), "x": float("inf")})
        assert report.codes("error") == ["power.nonfinite", "power.nonfinite"]

    def test_negative(self):
        report = check_power_values({"ir": -0.25})
        assert report.has("power.negative")


class TestCheckJobValue:
    GOOD = {
        "circuit": "C1",
        "assigner": "DFA",
        "max_density": 5,
        "wirelength": 120.5,
        "flyline_length": 90.0,
    }

    def test_good_table2_cell(self):
        assert check_job_value("table2_cell", self.GOOD).ok

    def test_missing_key(self):
        bad = dict(self.GOOD)
        del bad["max_density"]
        report = check_job_value("table2_cell", bad)
        assert "job.schema" in report.codes("error")

    def test_wrong_shape(self):
        report = check_job_value("table2_cell", [1, 2, 3])
        assert "job.schema" in report.codes("error")

    def test_nested_nonfinite(self):
        bad = dict(self.GOOD, extras={"trace": [1.0, float("nan")]})
        report = check_job_value("table2_cell", bad)
        assert "job.nonfinite" in report.codes("error")

    def test_negative_density(self):
        bad = dict(self.GOOD, max_density=-1)
        report = check_job_value("table2_cell", bad)
        assert "job.negative" in report.codes("error")

    def test_unknown_kind_only_scans_finiteness(self):
        assert check_job_value("echo", {"anything": 1}).ok
        assert not check_job_value("echo", {"x": float("inf")}).ok


class TestPolicy:
    def test_normalize(self):
        assert normalize(None) == "off"
        assert normalize("STRICT") == "strict"
        with pytest.raises(ValueError, match="verify policy"):
            normalize("paranoid")


def _footprint(assignment):
    """Per-row sets of occupied slots — what the repair must preserve."""
    quadrant = assignment.quadrant
    return {
        row: frozenset(
            assignment.slot_of(n) for n in quadrant.row_nets(row)
        )
        for row in range(1, quadrant.row_count + 1)
    }


class TestRepair:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 99])
    def test_repair_restores_legality_after_random_perturbation(self, seed):
        import random

        design = small_design(rows=((0, 1, 2, 3, 4), (5, 6, 7), (8, 9)))
        assignment = DFAAssigner().assign(design.quadrants[Side.BOTTOM])
        rng = random.Random(seed)
        for __ in range(15):
            a = rng.randrange(1, assignment.slot_count + 1)
            b = rng.randrange(1, assignment.slot_count + 1)
            if a != b:
                assignment.swap_slots(a, b)
        before = _footprint(assignment)
        repair_assignment(assignment)
        assert row_violations(assignment) == []
        assert _footprint(assignment) == before
        # a repaired assignment is routable again
        assert max_density(assignment) >= 1

    def test_repair_is_noop_on_legal_assignment(self):
        design = small_design()
        assignments = assign_design(DFAAssigner(), design)
        moved = repair_assignments(design, assignments)
        assert sum(moved.values()) == 0
        assert check_assignments(design, assignments, deep=False).ok

    def test_design_level_repair(self):
        design = small_design(rows=((0, 1, 2, 3),))
        quadrant = design.quadrants[Side.BOTTOM]
        assignments = {Side.BOTTOM: Assignment(quadrant, [3, 2, 1, 0])}
        assert not check_assignments(design, assignments, deep=False).ok
        repair_assignments(design, assignments)
        assert check_assignments(design, assignments, deep=True).ok


class TestCoDesignFlowVerify:
    def _flow(self, verify):
        from repro.exchange import SAParams
        from repro.flow import CoDesignFlow
        from repro.power import PowerGridConfig

        return CoDesignFlow(
            sa_params=SAParams(
                initial_temp=0.03, final_temp=0.01, cooling=0.5, moves_per_temp=10
            ),
            grid_config=PowerGridConfig(size=8),
            verify=verify,
        )

    def test_strict_flow_runs_clean(self):
        design = build_design(table1_circuit(1), seed=0)
        result = self._flow("strict").run(design, seed=0)
        assert check_assignments(
            design,
            result.assignments_final,
            baseline=result.assignments_initial,
        ).ok

    def test_strict_rejects_illegal_stage_output(self):
        design = small_design(rows=((0, 1, 2, 3),))
        quadrant = design.quadrants[Side.BOTTOM]
        illegal = {Side.BOTTOM: Assignment(quadrant, [3, 2, 1, 0])}
        with pytest.raises(VerificationError):
            self._flow("strict")._verified_assignments(
                design, illegal, stage="assignment", seed=0
            )

    def test_repair_relegalizes_stage_output(self):
        design = small_design(rows=((0, 1, 2, 3),))
        quadrant = design.quadrants[Side.BOTTOM]
        illegal = {Side.BOTTOM: Assignment(quadrant, [3, 2, 1, 0])}
        repaired = self._flow("repair")._verified_assignments(
            design, illegal, stage="assignment", seed=0
        )
        assert check_assignments(design, repaired, deep=True).ok

    def test_strict_flow_rejects_mutated_design(self):
        from repro.package import StackingConfig

        design = build_design(table1_circuit(1, tier_count=4), seed=0)
        design.stacking = StackingConfig(tier_count=1)
        with pytest.raises(VerificationError):
            self._flow("strict").run(design, seed=0)


class TestEngineVerify:
    def _engine(self, tmp_path, verify, telemetry=None):
        from repro.runtime import JobEngine, ResultCache

        return JobEngine(
            cache=ResultCache(tmp_path / "cache"),
            verify=verify,
            retries=1,
            backoff=0.001,
            telemetry=telemetry,
        )

    def test_digest_corruption_is_a_miss_and_recomputes(self, tmp_path):
        from repro.runtime import JobSpec, Telemetry
        from repro.verify.chaos import corrupt_cache_entry

        spec = JobSpec("chaos_bad_value", {"fail_times": 0}, seed=3)
        telemetry = Telemetry()
        engine = self._engine(tmp_path, "strict", telemetry)
        first = engine.run_one(spec)
        assert first.ok and first.value["max_density"] == 7
        corrupt_cache_entry(engine.cache, spec, mode="digest")
        again = self._engine(tmp_path, "strict", telemetry).run_one(spec)
        assert again.ok and not again.cached
        assert again.value == first.value
        assert telemetry.events_named("cache.invalid")

    def test_schema_corruption_is_a_miss(self, tmp_path):
        from repro.runtime import JobSpec, Telemetry
        from repro.runtime.cache import MISS
        from repro.runtime.telemetry import using_telemetry
        from repro.verify.chaos import corrupt_cache_entry

        spec = JobSpec("chaos_bad_value", {"fail_times": 0}, seed=3)
        telemetry = Telemetry()
        engine = self._engine(tmp_path, "off", telemetry)
        engine.run_one(spec)
        corrupt_cache_entry(engine.cache, spec, mode="schema")
        with using_telemetry(telemetry):
            assert engine.cache.get(spec) is MISS
        assert engine.cache.stats["invalid"] == 1
        events = telemetry.events_named("cache.invalid")
        assert events and events[-1]["reason"] == "stale-schema"

    def test_nan_cached_value_dropped_under_verify(self, tmp_path):
        from repro.runtime import JobSpec, Telemetry
        from repro.verify.chaos import corrupt_cache_entry

        spec = JobSpec("chaos_bad_value", {"fail_times": 0}, seed=3)
        telemetry = Telemetry()
        engine = self._engine(tmp_path, "strict", telemetry)
        engine.run_one(spec)
        corrupt_cache_entry(engine.cache, spec, mode="nan_value")
        again = self._engine(tmp_path, "strict", telemetry).run_one(spec)
        assert again.ok and not again.cached
        assert again.value["max_density"] == 7
        assert telemetry.events_named("job.invalid")

    def test_nan_cached_value_served_when_verify_off(self, tmp_path):
        from repro.runtime import JobSpec
        from repro.verify.chaos import corrupt_cache_entry

        spec = JobSpec("chaos_bad_value", {"fail_times": 0}, seed=3)
        engine = self._engine(tmp_path, "off")
        engine.run_one(spec)
        corrupt_cache_entry(engine.cache, spec, mode="nan_value")
        served = self._engine(tmp_path, "off").run_one(spec)
        # documents why --verify exists: off trusts the poisoned entry
        assert served.cached and math.isnan(served.value["max_density"])

    def test_strict_fails_fast_on_invalid_fresh_value(self, tmp_path):
        from repro.runtime import JobEngine, JobSpec

        spec = JobSpec(
            "chaos_bad_value",
            {"fail_times": 5, "marker": str(tmp_path / "marker")},
            seed=0,
        )
        outcome = JobEngine(verify="strict", retries=3, backoff=0.001).run_one(spec)
        assert not outcome.ok
        assert outcome.error_class == "verification"
        assert outcome.attempts == 1  # a verdict, not a flake: no retries

    def test_repair_retries_invalid_fresh_value(self, tmp_path):
        from repro.runtime import JobEngine, JobSpec

        spec = JobSpec(
            "chaos_bad_value",
            {"fail_times": 1, "marker": str(tmp_path / "marker")},
            seed=0,
        )
        outcome = JobEngine(verify="repair", retries=2, backoff=0.001).run_one(spec)
        assert outcome.ok
        assert outcome.value["max_density"] == 7
        assert outcome.attempts == 2


class TestCheckWorkloadCli:
    def test_check_smoke_strict_is_clean(self, capsys):
        from repro.cli import main

        assert main(["check", "smoke", "--verify", "strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_check_rejects_off(self, capsys):
        from repro.cli import main

        assert main(["check", "smoke", "--verify", "off"]) == 2

    def test_check_workload_requires_active_policy(self):
        from repro.verify import check_workload

        with pytest.raises(ValueError, match="active policy"):
            check_workload("smoke", verify="off")
