"""Fine-grained behaviour of the exchange move generator."""

from repro.assign import assign_design
import random

import pytest

from repro.assign import DFAAssigner
from repro.exchange import MoveGenerator, SwapMove
from repro.package import quadrant_from_rows, PackageDesign
from repro.geometry import Side


class TestMoveGeneration:
    def test_no_candidates_returns_none(self):
        """A design whose only nets are signals has no 2-D moves."""
        quadrant = quadrant_from_rows([[0, 1, 2], [3, 4]])
        design = PackageDesign({Side.BOTTOM: quadrant})
        assignments = assign_design(DFAAssigner(), design)
        generator = MoveGenerator(design, assignments)  # power_only for psi=1
        assert generator.propose(random.Random(0)) is None

    def test_power_override(self):
        quadrant = quadrant_from_rows([[0, 1, 2], [3, 4]], supply_ids=[1])
        design = PackageDesign({Side.BOTTOM: quadrant})
        assignments = assign_design(DFAAssigner(), design)
        all_moves = MoveGenerator(design, assignments, power_only=False)
        assert len(all_moves._collect_candidates()) == 5
        only_power = MoveGenerator(design, assignments, power_only=True)
        assert len(only_power._collect_candidates()) == 1

    def test_moves_are_adjacent(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        generator = MoveGenerator(small_design, assignments, power_only=False)
        rng = random.Random(7)
        for __ in range(100):
            move = generator.propose(rng)
            if move is not None:
                assert move.slot_b == move.slot_a + 1

    def test_boundary_slots_fall_back_inward(self):
        """A net at slot 1 can only swap right; the generator retries."""
        quadrant = quadrant_from_rows([[0, 1], [2]], supply_ids=[0, 1, 2])
        design = PackageDesign({Side.BOTTOM: quadrant})
        assignments = assign_design(DFAAssigner(), design)
        generator = MoveGenerator(design, assignments, power_only=False)
        rng = random.Random(0)
        seen = set()
        for __ in range(200):
            move = generator.propose(rng)
            if move:
                seen.add((move.slot_a, move.slot_b))
                assert 1 <= move.slot_a < move.slot_b <= 3
        assert seen  # some legal move exists (rows differ somewhere)

    def test_apply_undo_roundtrip_many(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        snapshot = {side: a.order for side, a in assignments.items()}
        generator = MoveGenerator(small_design, assignments, power_only=False)
        rng = random.Random(3)
        stack = []
        for __ in range(50):
            move = generator.propose(rng)
            if move:
                generator.apply(move)
                stack.append(move)
        for move in reversed(stack):
            generator.undo(move)
        assert {side: a.order for side, a in assignments.items()} == snapshot

    def test_swapmove_is_frozen(self):
        move = SwapMove(side=Side.BOTTOM, slot_a=1, slot_b=2)
        with pytest.raises(Exception):
            move.slot_a = 5
