"""Durability tests: job journal, SA checkpoints, retrying client, recovery.

Covers the crash-safety contract PR 7 added across the stack:

- :class:`JobJournal` replay semantics — empty files, torn tails,
  interior corruption (typed, never guessed around), last-wins settles,
  the exactly-once ``submitted`` guard, failure supersession, compaction;
- :class:`JobEngine` integration — settled digests answer from the
  journal without re-execution, in-flight specs recover exactly once;
- :class:`SACheckpointer` — atomic saves, corrupt checkpoints read as
  absent (lax) or raise (strict), foreign run keys read as absent, and a
  crash-interrupted anneal resumes bit-identically;
- :class:`ServeClient` retry policy — jittered exponential backoff,
  ``Retry-After`` override, transport-error retry, retries=0 rawness;
- the daemon — registry recovery from the journal across a restart
  (in-process), SSE ``Last-Event-ID`` resumption on the wire, and a real
  ``kill -9`` subprocess round-trip re-executing only in-flight work.
"""

from __future__ import annotations

from repro.assign import assign_design
import signal
import time
from pathlib import Path

import pytest

from repro.errors import CheckpointIntegrityError, JournalCorruptionError
from repro.runtime import JobEngine, JobSpec, register_job_type
from repro.runtime.journal import JobJournal, spec_from_record
from repro.serve import ServeClient, ServeConfig, ServeHandle
from repro.serve.client import _parse_retry_after


# -- test job types --------------------------------------------------------
# Module-level so they resolve in the daemon's dispatcher thread; names are
# unique to this module (the registry is process-global).


@register_job_type("jwal_echo")
def _jwal_echo_job(params, seed):
    return {"value": params.get("value", 0), "seed": seed}


@register_job_type("jwal_count")
def _jwal_count_job(params, seed):
    """Counts executions through a file so re-runs are observable."""
    marker = Path(params["marker"])
    with open(marker, "a") as handle:
        handle.write("x")
    return {"executions": marker.stat().st_size, "seed": seed}


def _spec(value: int = 1, seed: int = 0) -> JobSpec:
    return JobSpec("jwal_echo", {"value": value}, seed=seed)


# -- journal replay --------------------------------------------------------


class TestJournalReplay:
    def test_missing_file_reads_empty(self, tmp_path):
        with JobJournal(tmp_path / "jobs.wal") as journal:
            assert journal.settled_records() == {}
            assert journal.inflight_digests() == []
            assert journal.take_recovered() == []

    def test_lifecycle_roundtrip(self, tmp_path):
        path = tmp_path / "jobs.wal"
        spec = _spec()
        with JobJournal(path) as journal:
            assert journal.record_submitted(spec)
            journal.record_started(spec.digest())
            journal.record_settled(spec, {"answer": 42}, seconds=0.5)
        with JobJournal(path) as journal:
            record = journal.settled_record(spec.digest())
            assert record["value"] == {"answer": 42}
            assert journal.inflight_digests() == []
            rebuilt = spec_from_record(record)
            assert rebuilt is not None and rebuilt.digest() == spec.digest()

    def test_spec_from_record_tolerates_garbage(self):
        assert spec_from_record({}) is None
        assert spec_from_record({"spec": "not-a-dict"}) is None
        assert spec_from_record({"spec": {"params": {}}}) is None  # no kind

    def test_torn_tail_dropped_and_counted(self, tmp_path):
        path = tmp_path / "jobs.wal"
        spec = _spec()
        with JobJournal(path) as journal:
            journal.record_submitted(spec)
            journal.record_settled(spec, {"answer": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"rec": "sett')  # kill -9 mid-append
        with JobJournal(path) as journal:
            assert journal.diagnostics["torn_tail"] == 1
            assert journal.settled_record(spec.digest())["value"] == {
                "answer": 1
            }

    def test_interior_corruption_raises_typed(self, tmp_path):
        path = tmp_path / "jobs.wal"
        with JobJournal(path) as journal:
            journal.record_submitted(_spec())
        lines = path.read_text().splitlines()
        lines.insert(0, "NOT A JOURNAL RECORD")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError):
            JobJournal(path)

    def test_duplicate_settled_last_wins(self, tmp_path):
        # Two engines racing on a shared journal: replay keeps the later
        # record and counts the race, it never raises.
        path = tmp_path / "jobs.wal"
        spec = _spec()
        with JobJournal(path) as journal:
            journal.record_settled(spec, {"answer": "old"})
        with JobJournal(path) as foreign:
            foreign._settled.clear()  # simulate a second blind writer
            foreign.record_settled(spec, {"answer": "new"})
        with JobJournal(path) as journal:
            assert journal.settled_record(spec.digest())["value"] == {
                "answer": "new"
            }
            assert journal.diagnostics["duplicate_settled"] == 1

    def test_submitted_is_exactly_once(self, tmp_path):
        spec = _spec()
        with JobJournal(tmp_path / "jobs.wal") as journal:
            assert journal.record_submitted(spec)
            assert not journal.record_submitted(spec)  # already in flight
            journal.record_settled(spec, {})
            assert not journal.record_submitted(spec)  # already settled

    def test_failed_is_terminal_until_resubmitted(self, tmp_path):
        path = tmp_path / "jobs.wal"
        spec = _spec()
        with JobJournal(path) as journal:
            journal.record_submitted(spec)
            journal.record_failed(spec.digest(), "boom", "RuntimeError")
        with JobJournal(path) as journal:
            assert spec.digest() in journal.failed_records()
            assert journal.take_recovered() == []  # failed, not in flight
            assert journal.record_submitted(spec)  # supersedes the failure
        with JobJournal(path) as journal:
            assert journal.failed_records() == {}
            assert [s.digest() for s in journal.take_recovered()] == [
                spec.digest()
            ]

    def test_take_recovered_consumes_the_snapshot(self, tmp_path):
        path = tmp_path / "jobs.wal"
        with JobJournal(path) as journal:
            journal.record_submitted(_spec())
        with JobJournal(path) as journal:
            assert len(journal.take_recovered()) == 1
            assert journal.take_recovered() == []

    def test_compaction_keeps_live_state_and_shrinks(self, tmp_path):
        path = tmp_path / "jobs.wal"
        with JobJournal(path, fsync=False, compact_bytes=None) as journal:
            for value in range(50):
                spec = _spec(value=value)
                journal.record_submitted(spec)
                journal.record_started(spec.digest())
                journal.record_settled(spec, {"value": value})
            inflight = _spec(value=999)
            journal.record_submitted(inflight)
            failed = _spec(value=998)
            journal.record_submitted(failed)
            journal.record_failed(failed.digest(), "boom")
            before = path.stat().st_size
            journal.compact()
            assert journal.diagnostics["compactions"] == 1
        assert path.stat().st_size < before
        with JobJournal(path) as journal:
            assert len(journal.settled_records()) == 50
            assert journal.inflight_digests() == [inflight.digest()]
            assert list(journal.failed_records()) == [failed.digest()]

    def test_size_trigger_compacts_automatically(self, tmp_path):
        path = tmp_path / "jobs.wal"
        with JobJournal(path, fsync=False, compact_bytes=2048) as journal:
            for value in range(200):
                spec = _spec(value=value % 3)  # 3 live digests, 200 appends
                journal._settled.pop(spec.digest(), None)
                journal.record_settled(spec, {"value": value})
            assert journal.diagnostics["compactions"] >= 1
        assert path.stat().st_size <= 2048

    def test_summary_shape(self, tmp_path):
        with JobJournal(tmp_path / "jobs.wal") as journal:
            journal.record_submitted(_spec())
            summary = journal.summary()
        for key in ("path", "bytes", "seq", "records",
                    "settled", "inflight", "failed", "diagnostics"):
            assert key in summary
        assert summary["inflight"] == 1


# -- engine integration ----------------------------------------------------


class TestEngineJournal:
    def test_settled_digest_answers_without_rerun(self, tmp_path):
        marker = tmp_path / "marker"
        spec = JobSpec("jwal_count", {"marker": str(marker)}, seed=1)
        path = tmp_path / "jobs.wal"
        with JobJournal(path) as journal:
            first = JobEngine(jobs=1, journal=journal).run_one(spec)
        assert first.ok and not first.journal
        assert marker.stat().st_size == 1
        # A fresh engine (fresh process, conceptually) on the same journal:
        # the settled record answers; the job function never runs again.
        with JobJournal(path) as journal:
            second = JobEngine(jobs=1, journal=journal).run_one(spec)
        assert second.ok and second.journal
        assert second.value == first.value
        assert marker.stat().st_size == 1

    def test_recovered_specs_exactly_once(self, tmp_path):
        path = tmp_path / "jobs.wal"
        spec = _spec(value=7)
        with JobJournal(path) as journal:
            journal.record_submitted(spec)
            journal.record_started(spec.digest())
            # crash here: never settled
        with JobJournal(path) as journal:
            engine = JobEngine(jobs=1, journal=journal)
            recovered = engine.recovered_specs()
            assert [s.digest() for s in recovered] == [spec.digest()]
            assert engine.recovered_specs() == []
            outcomes = engine.run(recovered)
            assert outcomes[0].ok
        with JobJournal(path) as journal:
            assert journal.inflight_digests() == []
            assert spec.digest() in journal.settled_records()

    def test_engine_without_journal_recovers_nothing(self):
        assert JobEngine(jobs=1).recovered_specs() == []


# -- SA checkpoints --------------------------------------------------------


class TestSACheckpointer:
    def _checkpointer(self, tmp_path, **kwargs):
        from repro.exchange.checkpoint import SACheckpointer

        return SACheckpointer(tmp_path / "sa.ckpt", **kwargs)

    def test_save_load_roundtrip(self, tmp_path):
        checkpointer = self._checkpointer(tmp_path, durable=False)
        checkpointer.save({"proposed": 10, "state": {"x": 1}})
        assert checkpointer.load() == {"proposed": 10, "state": {"x": 1}}

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            self._checkpointer(tmp_path, interval=0)

    def test_corrupt_checkpoint_reads_absent_and_moves_aside(self, tmp_path):
        checkpointer = self._checkpointer(tmp_path, durable=False)
        checkpointer.save({"proposed": 1})
        raw = checkpointer.path.read_text()
        checkpointer.path.write_text("GARBAGE" + raw[7:])
        assert checkpointer.load() is None
        aside = checkpointer.path.with_name(checkpointer.path.name + ".corrupt")
        assert aside.exists()
        assert not checkpointer.path.exists()

    def test_corrupt_checkpoint_strict_raises_typed(self, tmp_path):
        checkpointer = self._checkpointer(tmp_path, durable=False, strict=True)
        checkpointer.save({"proposed": 1})
        raw = checkpointer.path.read_text()
        checkpointer.path.write_text("GARBAGE" + raw[7:])
        with pytest.raises(CheckpointIntegrityError):
            checkpointer.load()
        assert checkpointer.path.exists()  # strict never renames

    def test_foreign_run_key_reads_absent_but_survives(self, tmp_path):
        writer = self._checkpointer(tmp_path, durable=False, run_key="run-a")
        writer.save({"proposed": 5})
        reader = self._checkpointer(tmp_path, durable=False, run_key="run-b")
        assert reader.load() is None
        assert reader.path.exists()  # another run's state, not damage

    def test_clear_removes_the_file(self, tmp_path):
        checkpointer = self._checkpointer(tmp_path, durable=False)
        checkpointer.save({"proposed": 1})
        checkpointer.clear()
        assert not checkpointer.path.exists()
        checkpointer.clear()  # idempotent

    def test_crashed_anneal_resumes_bit_identically(self, tmp_path):
        # The fuzz oracle enforces this over hundreds of random cases;
        # this is the deterministic regression anchor for the suite.
        from repro.assign import DFAAssigner
        from repro.circuits import CircuitSpec, build_design
        from repro.exchange import FingerPadExchanger, SAParams
        from repro.exchange.checkpoint import SACheckpointer, SimulatedCrash

        design = build_design(
            CircuitSpec(name="ckpt-resume", finger_count=32), seed=0
        )
        baseline = assign_design(DFAAssigner(), design)
        params = SAParams(
            initial_temp=0.05, final_temp=0.01, cooling=0.8, moves_per_temp=40
        )

        def run(checkpoint):
            exchanger = FingerPadExchanger(
                design, params=params, backend="array", polish_passes=2,
                checkpoint=checkpoint,
            )
            return exchanger.run(
                {side: a.copy() for side, a in baseline.items()}, seed=3
            )

        reference = run(None)
        path = tmp_path / "sa.ckpt"
        with pytest.raises(SimulatedCrash):
            run(SACheckpointer(path, interval=25, durable=False,
                               interrupt_after_saves=1))
        assert path.exists()
        resumed = run(SACheckpointer(path, interval=25, durable=False))
        assert resumed.stats.proposed == reference.stats.proposed
        assert resumed.stats.accepted == reference.stats.accepted
        assert resumed.stats.final_cost == reference.stats.final_cost
        assert resumed.stats.cost_trace == reference.stats.cost_trace
        for side in reference.after:
            assert resumed.after[side].order == reference.after[side].order
        assert not path.exists()  # completed runs leave no stale state


# -- client retry policy ---------------------------------------------------


class _FixedRng:
    def random(self):
        return 1.0  # jitter ceiling: delays become deterministic


class TestClientRetry:
    def _client(self, **kwargs):
        kwargs.setdefault("rng", _FixedRng())
        return ServeClient(port=1, **kwargs)

    def test_delay_grows_exponentially_and_caps(self):
        client = self._client(retries=5, backoff=0.1, max_backoff=0.5)
        assert client._delay(0) == pytest.approx(0.1)
        assert client._delay(1) == pytest.approx(0.2)
        assert client._delay(3) == pytest.approx(0.5)  # capped

    def test_retry_after_overrides_and_clamps(self):
        client = self._client(retries=1, max_backoff=0.5)
        assert client._delay(0, retry_after=0.25) == pytest.approx(0.25)
        assert client._delay(0, retry_after=9.0) == pytest.approx(0.5)
        assert client._delay(0, retry_after=-3.0) == 0.0

    def test_parse_retry_after_delta_seconds(self):
        assert _parse_retry_after({"retry-after": "2"}) == 2.0
        assert _parse_retry_after({"retry-after": " 2.5 "}) == 2.5
        assert _parse_retry_after({"retry-after": "-3"}) == 0.0  # clamped
        assert _parse_retry_after({}) is None

    def test_parse_retry_after_http_date(self):
        import email.utils

        future = email.utils.formatdate(time.time() + 30.0, usegmt=True)
        seconds = _parse_retry_after({"retry-after": future})
        assert seconds is not None and 25.0 <= seconds <= 31.0
        past = email.utils.formatdate(time.time() - 60.0, usegmt=True)
        assert _parse_retry_after({"retry-after": past}) == 0.0

    def test_parse_retry_after_garbage_falls_back(self):
        # Every unusable form must yield None (-> jittered backoff), not raise.
        for raw in ("soon", "", "nan", "inf", "-inf", "Wed, 99 Foo", "1;2",
                    None, object()):
            assert _parse_retry_after({"retry-after": raw}) is None

    def test_retries_503_honoring_retry_after(self, monkeypatch):
        client = self._client(retries=3, backoff=0.1)
        responses = iter([
            (503, {"error": {"code": "draining"}}, {"retry-after": "0.01"}),
            (503, {"error": {"code": "draining"}}, {}),
            (200, {"status": "done"}, {}),
        ])
        slept = []
        monkeypatch.setattr(
            ServeClient, "_request_once",
            lambda self, method, path, payload: next(responses),
        )
        monkeypatch.setattr(time, "sleep", slept.append)
        status, body = client._request("GET", "/healthz")
        assert (status, body) == (200, {"status": "done"})
        assert slept[0] == pytest.approx(0.01)   # Retry-After wins
        assert slept[1] == pytest.approx(0.2)    # computed backoff

    def test_retries_transport_errors_then_succeeds(self, monkeypatch):
        client = self._client(retries=2, backoff=0.01)
        calls = {"n": 0}

        def flaky(self, method, path, payload):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionRefusedError("daemon restarting")
            return 200, {"status": "ok"}, {}

        monkeypatch.setattr(ServeClient, "_request_once", flaky)
        monkeypatch.setattr(time, "sleep", lambda _: None)
        assert client._request("GET", "/healthz") == (200, {"status": "ok"})
        assert calls["n"] == 3

    def test_zero_retries_is_raw(self, monkeypatch):
        client = self._client()  # retries=0
        monkeypatch.setattr(
            ServeClient, "_request_once",
            lambda self, method, path, payload: (503, {"raw": True}, {}),
        )
        assert client._request("GET", "/healthz") == (503, {"raw": True})

        def refuse(self, method, path, payload):
            raise ConnectionRefusedError("nope")

        monkeypatch.setattr(ServeClient, "_request_once", refuse)
        with pytest.raises(ConnectionRefusedError):
            client._request("GET", "/healthz")


# -- daemon recovery -------------------------------------------------------


def _journal_config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(
        port=0,
        workers=1,
        cache=False,  # recovery must come from the journal alone
        journal=str(tmp_path / "jobs.wal"),
        announce=False,
        batch_window=0.005,
        drain_deadline=10.0,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestDaemonRecovery:
    def test_registry_survives_restart_via_journal(self, tmp_path):
        with ServeHandle(_journal_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout=30.0)
            status, first = client.submit("jwal_echo", {"value": 5}, seed=2)
            assert status == 200 and first["status"] == "done"
            digest = first["job"]
        with ServeHandle(_journal_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout=30.0)
            status, envelope = client.status(digest)
            assert status == 200
            assert envelope["status"] == "done"
            assert envelope["value"] == first["value"]
            # Answered from the recovered registry, not recomputed.
            assert client.health()["counters"]["executed"] == 0
            status, resubmit = client.submit("jwal_echo", {"value": 5}, seed=2)
            assert status == 200 and resubmit["deduped"]
            assert client.health()["counters"]["executed"] == 0

    def test_sse_last_event_id_resumes_mid_stream(self, tmp_path):
        with ServeHandle(_journal_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout=30.0)
            status, envelope = client.submit("jwal_echo", {"value": 1}, seed=9)
            digest = envelope["job"]
            full = list(client.events(digest, timeout=10.0, with_ids=True))
            ids = [event_id for event_id, _, __ in full
                   if event_id is not None]
            assert ids == sorted(ids) and len(ids) >= 2
            assert full[-1][1] == "serve.result"  # terminal, synthetic
            assert full[-1][0] is None
            # Reconnect as a client that saw everything up to ids[0].
            resumed = list(client.events(
                digest, timeout=10.0, last_event_id=ids[0], with_ids=True
            ))
            resumed_ids = [event_id for event_id, _, __ in resumed
                           if event_id is not None]
            assert resumed_ids == ids[1:]
            assert resumed[-1][1] == "serve.result"

    def test_kill_minus_nine_reexecutes_only_inflight(self, tmp_path):
        # The full-size version of this lives in `make crash-smoke`; this
        # is the tier-1 anchor: SIGKILL a real daemon subprocess, restart
        # it on the same journal, and count re-executions.
        from repro.serve.smoke import start_daemon

        params = {
            "spec": {
                "name": "jwal-kill9",
                "finger_count": 16,
                "quadrant_count": 4,
                "rows_per_quadrant": 2,
            },
            "design_seed": 3,
            "grid": 16,
            "initial_temp": 1.0,
            "final_temp": 0.4,
            "cooling": 0.5,
            "moves_per_temp": 2,
        }
        seeds = (5, 6)
        journal_path = str(tmp_path / "jobs.wal")
        cache_dir = str(tmp_path / "cache")
        daemon_args = ["--journal", journal_path,
                       "--batch-max", "1", "--batch-window", "0"]

        process, port = start_daemon(cache_dir, extra_args=daemon_args)
        try:
            client = ServeClient(port=port, timeout=30.0, retries=3)
            digests = []
            for seed in seeds:
                status, envelope = client.submit(
                    "design_run", params, seed=seed, wait=False
                )
                assert status in (200, 202)
                digests.append(envelope["job"])
        finally:
            process.send_signal(signal.SIGKILL)
            assert process.wait(timeout=30) == -signal.SIGKILL

        with JobJournal(journal_path, compact_bytes=None) as journal:
            settled_at_kill = set(journal.settled_records())
        inflight = [d for d in digests if d not in settled_at_kill]

        process, port = start_daemon(cache_dir, extra_args=daemon_args)
        try:
            client = ServeClient(port=port, timeout=30.0, retries=3)
            deadline = time.monotonic() + 60.0
            for digest in digests:
                envelope = {}
                while time.monotonic() < deadline:
                    status, envelope = client.status(digest)
                    if envelope.get("status") in ("done", "failed"):
                        break
                    time.sleep(0.05)
                assert envelope.get("status") == "done", envelope
            executed = client.health()["counters"]["executed"]
            assert executed == len(inflight)
        finally:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 128 + signal.SIGTERM

        with JobJournal(journal_path, compact_bytes=None) as journal:
            assert set(journal.settled_records()) >= set(digests)
            assert journal.inflight_digests() == []
