"""Tests for the ASCII visualization helpers."""

import numpy as np

from repro.assign import DFAAssigner, RandomAssigner
from repro.circuits import hotspot_current_map, realchip_grid_config
from repro.power import FDSolver, PowerGridConfig
from repro.viz import (
    render_assignment,
    render_comparison,
    render_current_map,
    render_density_profile,
    render_irdrop_map,
)


class TestAsciiArt:
    def test_render_assignment(self, fig5):
        text = render_assignment(DFAAssigner().assign(fig5))
        assert "fingers:" in text
        assert "row  3" in text
        # every net id appears
        for net in fig5.netlist:
            assert str(net.id) in text

    def test_density_profile(self, fig5):
        text = render_density_profile(DFAAssigner().assign(fig5))
        assert "max density: 2" in text
        assert "line y= 3" in text

    def test_single_row_profile(self):
        from repro.package import quadrant_from_rows

        quadrant = quadrant_from_rows([[1, 2, 3]])
        from repro.assign import Assignment

        text = render_density_profile(Assignment(quadrant, [1, 2, 3]))
        assert "no crossing congestion" in text

    def test_comparison(self, fig5):
        text = render_comparison(
            {
                "DFA": DFAAssigner().assign(fig5),
                "Random": RandomAssigner().assign(fig5, seed=0),
            }
        )
        assert "== DFA ==" in text and "== Random ==" in text


class TestHeatMaps:
    def test_irdrop_map(self):
        config = PowerGridConfig(size=16)
        result = FDSolver(config).factorize([(0, 0)]).solve()
        text = render_irdrop_map(result)
        assert "max IR-drop" in text
        assert len(text.splitlines()) == 17  # header + 16 rows

    def test_current_map(self):
        config = realchip_grid_config(size=16)
        text = render_current_map(hotspot_current_map(config))
        assert "current map" in text
        # hot block shading appears (darkest glyph)
        assert "@" in text
