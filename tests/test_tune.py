"""Tests for the tuning stack: Pareto math, sweeps, parallel tempering."""

import json
import math
import random

import pytest

from repro.exchange import SAParams, swap_accept
from repro.presets import TUNED_SCHEDULES, resolve_sa_params, tuned_schedule
from repro.runtime import JobEngine, ResultCache, Telemetry
from repro.tune import (
    SweepGrid,
    TemperingConfig,
    chain_temperatures,
    knee_point,
    pareto_front,
    render_pareto_svg,
    run_sweep,
    run_tempering,
    sweep_specs,
    write_report,
)

TINY_GRID = SweepGrid(
    initial_temps=(0.03, 0.1),
    coolings=(0.8,),
    moves=(10,),
    final_temp=0.01,
    replicates=2,
)

TINY_SCHEDULE = SAParams(
    initial_temp=0.03, final_temp=0.005, cooling=0.8, moves_per_temp=10
)


def _cell(cost, seconds):
    return {
        "schedule": {
            "initial_temp": 0.03,
            "final_temp": 1e-4,
            "cooling": 0.9,
            "moves_per_temp": 40,
        },
        "cost": cost,
        "seconds": seconds,
    }


class TestParetoMath:
    def test_front_keeps_only_nondominated_cells(self):
        cells = [_cell(1.0, 1.0), _cell(0.9, 2.0), _cell(1.1, 1.5),
                 _cell(0.95, 3.0)]
        front = pareto_front(cells)
        assert [(c["cost"], c["seconds"]) for c in front] == [
            (1.0, 1.0), (0.9, 2.0)
        ]

    def test_front_is_sorted_fastest_first(self):
        cells = [_cell(0.8, 5.0), _cell(1.0, 1.0), _cell(0.9, 2.0)]
        front = pareto_front(cells)
        assert [c["seconds"] for c in front] == [1.0, 2.0, 5.0]

    def test_duplicate_objectives_collapse_to_one(self):
        cells = [_cell(1.0, 1.0), _cell(1.0, 1.0)]
        assert len(pareto_front(cells)) == 1

    def test_knee_normalizes_both_axes(self):
        # Cost spans 0.1, time spans 100: without normalization the time
        # axis would dominate and pick the 1s point; normalized, the
        # middle point (0.3, 0.3) is nearest the utopia corner.
        front = [_cell(1.0, 1.0), _cell(0.97, 31.0), _cell(0.9, 101.0)]
        knee = knee_point(pareto_front(front))
        assert knee["seconds"] == 31.0

    def test_knee_of_single_point_front(self):
        front = [_cell(1.0, 1.0)]
        assert knee_point(front) == front[0]

    def test_knee_of_empty_front(self):
        assert knee_point([]) is None

    def test_svg_renders_front_and_knee(self):
        cells = [_cell(1.0, 1.0), _cell(0.9, 2.0), _cell(1.1, 1.5)]
        front = pareto_front(cells)
        report = {
            "circuit": "circuit1",
            "cells": cells,
            "front": front,
            "knee": knee_point(front),
        }
        svg = render_pareto_svg(report)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "knee:" in svg


class TestSwapAccept:
    def test_favourable_swap_always_accepted(self):
        rng = random.Random(0)
        # Hotter chain (b) holds the lower cost: delta >= 0, certain swap.
        accepted, _ = swap_accept(rng, 1.0, 0.5, 0.03, 0.06)
        assert accepted

    def test_unfavourable_swap_needs_boltzmann_luck(self):
        # delta very negative -> exp(delta) ~ 0: never accepted.
        rng = random.Random(0)
        accepted, _ = swap_accept(rng, 0.0, 100.0, 0.03, 0.06)
        assert not accepted

    def test_one_uniform_consumed_either_way(self):
        # The swap rng stream must be a pure function of the swap count.
        rng_a, rng_b = random.Random(7), random.Random(7)
        swap_accept(rng_a, 1.0, 0.5, 0.03, 0.06)   # accepted
        swap_accept(rng_b, 0.0, 100.0, 0.03, 0.06)  # rejected
        assert rng_a.random() == rng_b.random()

    def test_acceptance_probability_matches_formula(self):
        cost_a, cost_b, temp_a, temp_b = 0.95, 1.0, 0.03, 0.0375
        delta = (1 / temp_a - 1 / temp_b) * (cost_a - cost_b)
        expected = math.exp(delta)
        trials = 4000
        rng = random.Random(11)
        hits = sum(
            swap_accept(rng, cost_a, cost_b, temp_a, temp_b)[0]
            for _ in range(trials)
        )
        assert hits / trials == pytest.approx(expected, abs=0.03)


class TestTunedPresets:
    def test_every_table1_size_has_a_bucket(self):
        for nets in (96, 160, 208, 352, 448, 10_000):
            schedule = tuned_schedule(nets)
            assert isinstance(schedule, SAParams)

    def test_buckets_are_ascending(self):
        bounds = [bound for bound, _ in TUNED_SCHEDULES if bound is not None]
        assert bounds == sorted(bounds)
        assert TUNED_SCHEDULES[-1][0] is None

    def test_resolve_passes_through_none_and_params(self):
        assert resolve_sa_params(None) is None
        params = SAParams()
        assert resolve_sa_params(params) is params

    def test_resolve_preset_name(self):
        assert resolve_sa_params("fast").moves_per_temp == 60

    def test_resolve_tuned_needs_a_design(self):
        with pytest.raises(ValueError):
            resolve_sa_params("tuned")

    def test_resolve_tuned_buckets_by_net_count(self):
        from repro.circuits import build_design, table1_circuit

        design = build_design(table1_circuit(1), seed=0)  # 96 nets
        assert resolve_sa_params("tuned", design) == tuned_schedule(96)

    def test_exchanger_accepts_schedule_names(self):
        from repro.circuits import build_design, table1_circuit
        from repro.exchange import FingerPadExchanger

        design = build_design(table1_circuit(1), seed=0)
        exchanger = FingerPadExchanger(design, params="tuned")
        assert exchanger.params == tuned_schedule(design.total_net_count)

    def test_unknown_schedule_name_raises(self):
        from repro.circuits import build_design, table1_circuit
        from repro.exchange import FingerPadExchanger

        design = build_design(table1_circuit(1), seed=0)
        with pytest.raises(KeyError):
            FingerPadExchanger(design, params="nonsense")


class TestSweep:
    def test_specs_are_deterministic_and_cover_the_grid(self):
        specs = sweep_specs(1, TINY_GRID, seed=5)
        assert len(specs) == TINY_GRID.cell_count() == 4
        assert specs == sweep_specs(1, TINY_GRID, seed=5)
        assert {spec.seed for spec in specs} == {5, 6}

    def test_second_run_replays_from_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"

        def once():
            engine = JobEngine(
                jobs=1, cache=ResultCache(cache_dir), telemetry=Telemetry()
            )
            try:
                return run_sweep(engine, 1, grid=TINY_GRID, seed=0)
            finally:
                engine.close()

        report_a, first = once()
        report_b, second = once()
        hits = sum(1 for outcome in second if outcome.cached)
        assert hits / len(second) >= 0.9
        assert not any(outcome.cached for outcome in first)
        # Byte-determinism: cached seconds replay, so the artifacts match.
        paths_a = write_report(report_a, tmp_path / "a")
        paths_b = write_report(report_b, tmp_path / "b")
        for path_a, path_b in zip(paths_a, paths_b):
            assert open(path_a, "rb").read() == open(path_b, "rb").read()

    def test_report_shape(self, tmp_path):
        engine = JobEngine(jobs=1, telemetry=Telemetry())
        try:
            report, outcomes = run_sweep(engine, 1, grid=TINY_GRID, seed=0)
        finally:
            engine.close()
        assert report["circuit"] == "circuit1"
        # 2 schedules x 2 replicates -> 2 aggregated cells.
        assert len(report["cells"]) == 2
        assert all(cell["replicates"] == 2 for cell in report["cells"])
        assert report["knee"] in report["front"]
        paths = write_report(report, tmp_path)
        payload = json.loads(open(paths[0], encoding="utf-8").read())
        assert payload["schema"] == 1
        assert payload["grid"]["replicates"] == 2


class TestTempering:
    def _run(self, jobs, chains=2, seed=11, swap_stride=2):
        engine = JobEngine(jobs=jobs, telemetry=Telemetry())
        try:
            return run_tempering(
                engine,
                1,
                config=TemperingConfig(chains=chains, swap_stride=swap_stride),
                schedule=TINY_SCHEDULE,
                seed=seed,
                polish_passes=2,
            )
        finally:
            engine.close()

    def test_deterministic_across_pool_fanout(self):
        serial = self._run(jobs=1)
        parallel = self._run(jobs=4)
        assert (
            serial["tempering"]["accept_traces"]
            == parallel["tempering"]["accept_traces"]
        )
        assert serial["sa"]["best_cost"] == parallel["sa"]["best_cost"]
        assert serial == parallel

    def test_ladder_is_geometric(self):
        config = TemperingConfig(chains=3, ladder_ratio=2.0)
        temps = chain_temperatures(TINY_SCHEDULE, config)
        assert temps == [0.03, 0.06, 0.12]

    def test_multi_start_mode_never_swaps(self):
        result = self._run(jobs=1, swap_stride=0)
        assert result["tempering"]["swaps_proposed"] == 0
        assert result["tempering"]["rounds"] == 1

    def test_population_best_not_worse_than_worst_chain(self):
        result = self._run(jobs=1, chains=3)
        bests = result["tempering"]["chain_best_costs"]
        assert result["sa"]["best_cost"] == min(bests)

    def test_single_chain_keeps_codesign_result_shape(self):
        result = self._run(jobs=1, chains=1)
        for key in (
            "circuit",
            "density_after_assignment",
            "density_after_exchange",
            "ir_improvement",
            "max_ir_drop_initial",
            "max_ir_drop_final",
            "sa",
        ):
            assert key in result
        assert result["tempering"]["swaps_proposed"] == 0

    def test_adding_chains_never_hurts_the_population_best(self):
        # More replicas only add candidates; the pinned-seed best of K=3
        # must be <= the K=1 best (chain 0 is seed-stable across K).
        single = self._run(jobs=1, chains=1)
        population = self._run(jobs=1, chains=3)
        assert (
            population["sa"]["best_cost"] <= single["sa"]["best_cost"]
        )

    def test_swap_events_validate_against_schema(self, tmp_path):
        from repro.obs.schema import SCHEMA_VERSION, validate_trace
        from repro.runtime import JsonlSink

        trace = tmp_path / "trace.jsonl"
        with JsonlSink(trace) as sink:
            telemetry = Telemetry(sink=sink)
            telemetry.emit(
                "trace.meta", schema=SCHEMA_VERSION, tool="repro",
                command="test",
            )
            engine = JobEngine(jobs=1, telemetry=telemetry)
            try:
                run_tempering(
                    engine,
                    1,
                    config=TemperingConfig(chains=2, swap_stride=2),
                    schedule=TINY_SCHEDULE,
                    seed=3,
                )
            finally:
                engine.close()
        events = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        assert any(event["event"] == "sa.swap" for event in events)
        assert any(event["event"] == "sa.curve" for event in events)
        report = validate_trace(events)
        assert report.ok, report.render()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TemperingConfig(chains=0)
        with pytest.raises(ValueError):
            TemperingConfig(swap_stride=-1)
        with pytest.raises(ValueError):
            TemperingConfig(ladder_ratio=1.0)


class TestTuneCli:
    def test_tune_pareto_rerenders_a_report(self, tmp_path, capsys):
        from repro.cli import main
        from repro.tune import build_report

        report = build_report(
            "circuit1",
            0,
            TINY_GRID,
            [
                {
                    "circuit": "circuit1",
                    "replicate": 0,
                    "schedule": {
                        "initial_temp": 0.03,
                        "final_temp": 0.01,
                        "cooling": 0.8,
                        "moves_per_temp": 10,
                    },
                    "final_cost": 0.95,
                    "best_cost": 0.95,
                    "proposed": 100,
                    "acceptance_ratio": 0.5,
                    "seconds": 0.5,
                }
            ],
        )
        paths = write_report(report, tmp_path)
        svg_out = tmp_path / "re.svg"
        status = main(
            ["tune", "pareto", "--report", str(paths[0]), "--svg", str(svg_out)]
        )
        assert status == 0
        assert svg_out.exists()
        out = capsys.readouterr().out
        assert "knee (recommended)" in out

    def test_tune_pareto_requires_report(self, capsys):
        from repro.cli import main

        assert main(["tune", "pareto"]) == 2

    def test_run_accepts_tempering_flag(self, capsys):
        from repro.cli import main

        status = main(
            ["run", "smoke", "--tempering", "2", "--jobs", "1", "--no-cache"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "circuit1" in out
