"""At-scale invariants: one 1792-finger design through the fast pipeline.

Four times the paper's largest circuit.  No SA here (that is benchmarked);
this guards the O(n log n) paths — generation, assignment, density,
routing, spacing — against quadratic blow-ups and invariant drift at size.
"""

from repro.assign import assign_design
import time

import pytest

from repro.assign import DFAAssigner, IFAAssigner, RandomAssigner, is_legal
from repro.circuits import CircuitSpec, build_design
from repro.package import check_design
from repro.routing import (
    MonotonicRouter,
    max_density,
    max_density_of_design,
    measure_spacing,
)


@pytest.fixture(scope="module")
def big_design():
    return build_design(CircuitSpec(name="big", finger_count=1792), seed=0)


class TestAtScale:
    def test_generation(self, big_design):
        assert big_design.total_net_count == 1792
        assert check_design(big_design).is_clean

    def test_assignment_speed_and_legality(self, big_design):
        start = time.perf_counter()
        assignments = assign_design(DFAAssigner(), big_design)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # seconds; the Fenwick path keeps this trivial
        for assignment in assignments.values():
            assert is_legal(assignment)

    def test_density_stays_at_floor(self, big_design):
        dfa = assign_design(DFAAssigner(), big_design)
        ifa = assign_design(IFAAssigner(), big_design)
        random_assignments = assign_design(RandomAssigner(), big_design, seed=0)
        assert max_density_of_design(dfa) <= 6
        assert max_density_of_design(ifa) <= 8
        assert max_density_of_design(random_assignments) > max_density_of_design(dfa)

    def test_router_matches_estimate_at_scale(self, big_design):
        side = big_design.sides[0]
        quadrant = big_design.quadrants[side]
        assignment = DFAAssigner().assign(quadrant)
        result = MonotonicRouter().route(assignment)
        assert result.max_density == max_density(assignment)
        assert len(result.nets) == quadrant.net_count
        report = measure_spacing(result, quadrant)
        assert report.min_spacing > 0
