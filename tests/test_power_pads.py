"""Tests for the pad-to-boundary-ring mapping and the IR-drop analyzer."""

from repro.assign import assign_design
import pytest

from repro.assign import DFAAssigner, RandomAssigner
from repro.errors import PowerModelError
from repro.package import NetType
from repro.power import (
    IRDropAnalyzer,
    PowerGridConfig,
    pad_nodes_for_grid,
    supply_pad_fractions,
)


class TestSupplyPadFractions:
    def test_fractions_in_unit_interval(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        fractions = supply_pad_fractions(small_design, assignments)
        assert fractions
        assert all(0 <= f < 1 for f in fractions)

    def test_both_networks_when_none(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        power = supply_pad_fractions(small_design, assignments, net_type=NetType.POWER)
        ground = supply_pad_fractions(
            small_design, assignments, net_type=NetType.GROUND
        )
        both = supply_pad_fractions(small_design, assignments, net_type=None)
        assert len(both) == len(power) + len(ground)

    def test_missing_assignment_rejected(self, small_design):
        with pytest.raises(PowerModelError):
            supply_pad_fractions(small_design, {})

    def test_moving_a_power_pad_moves_its_fraction(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        before = sorted(
            supply_pad_fractions(small_design, assignments, net_type=None)
        )
        # find a supply pad with a signal neighbour and displace it one slot
        moved = False
        for side in small_design.sides:
            assignment = assignments[side]
            quadrant = small_design.quadrants[side]
            for supply_id in quadrant.supply_net_ids():
                slot = assignment.slot_of(supply_id)
                other = slot + 1 if slot < assignment.slot_count else slot - 1
                # only count it if the neighbour is a signal net, otherwise
                # swapping two supply pads leaves the fraction multiset intact
                if quadrant.net(assignment.net_at(other)).net_type.is_supply:
                    continue
                assignment.swap_slots(min(slot, other), max(slot, other))
                moved = True
                break
            if moved:
                break
        assert moved
        after = sorted(
            supply_pad_fractions(small_design, assignments, net_type=None)
        )
        assert before != after

    def test_pad_nodes_on_boundary(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        config = PowerGridConfig(size=16)
        nodes = pad_nodes_for_grid(small_design, assignments, config)
        g = config.size
        for x, y in nodes:
            assert x in (0, g - 1) or y in (0, g - 1)


class TestIRDropAnalyzer:
    def test_solve_and_max_drop(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        analyzer = IRDropAnalyzer(small_design, PowerGridConfig(size=16))
        result = analyzer.factorize(assignments).solve()
        assert result.max_drop == analyzer.max_drop(assignments)
        assert result.max_drop > 0

    def test_compact_cost_positive(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        analyzer = IRDropAnalyzer(small_design, PowerGridConfig(size=16))
        assert analyzer.compact_cost(assignments) > 0

    def test_improvement_sign(self, small_design):
        analyzer = IRDropAnalyzer(small_design, PowerGridConfig(size=16))
        a = assign_design(RandomAssigner(), small_design, seed=0)
        b = assign_design(RandomAssigner(), small_design, seed=1)
        improvement = analyzer.improvement(a, b)
        assert improvement == pytest.approx(
            1 - analyzer.max_drop(b) / analyzer.max_drop(a)
        )

    def test_pad_fractions_shortcut(self, small_design):
        assignments = assign_design(DFAAssigner(), small_design)
        analyzer = IRDropAnalyzer(small_design, PowerGridConfig(size=16))
        assert analyzer.pad_fractions(assignments) == supply_pad_fractions(
            small_design, assignments, net_type=NetType.POWER
        )
