"""Tests for the circuit generator, Table-1 specs and figure examples."""

from repro.assign import assign_design
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign import DFAAssigner, is_legal
from repro.circuits import (
    CIRCUIT_1,
    CIRCUIT_5,
    REALCHIP_SPEC,
    TABLE1_SPECS,
    CircuitSpec,
    build_design,
    build_table1_designs,
    fig5_quadrant,
    fig13_quadrant,
    quadrant_net_counts,
    table1_circuit,
    trapezoid_rows,
)
from repro.errors import CircuitSpecError
from repro.package import NetType


class TestCircuitSpec:
    def test_table1_values(self):
        assert [spec.finger_count for spec in TABLE1_SPECS] == [96, 160, 208, 352, 448]
        assert CIRCUIT_1.bump_ball_space == 2.0
        assert CIRCUIT_1.finger_width == 0.025
        assert CIRCUIT_5.finger_space == 0.12
        for spec in TABLE1_SPECS:
            assert spec.rows_per_quadrant == 4
            assert spec.quadrant_count == 4

    def test_with_tiers(self):
        stacked = table1_circuit(2, tier_count=4)
        assert stacked.tier_count == 4
        assert stacked.finger_count == 160
        assert table1_circuit(2).tier_count == 1

    def test_validation(self):
        with pytest.raises(CircuitSpecError):
            CircuitSpec(name="bad", finger_count=2, quadrant_count=4)
        with pytest.raises(CircuitSpecError):
            CircuitSpec(name="bad", finger_count=100, supply_fraction=2.0)
        with pytest.raises(CircuitSpecError):
            CircuitSpec(name="bad", finger_count=100, tier_count=0)
        with pytest.raises(CircuitSpecError):
            CircuitSpec(name="bad", finger_count=100, quadrant_count=5)


class TestTrapezoidRows:
    def test_sums_and_shape(self):
        for count in (24, 40, 52, 88, 112):
            sizes = trapezoid_rows(count, 4)
            assert sum(sizes) == count
            assert sizes == sorted(sizes, reverse=True)
            assert all(size >= 1 for size in sizes)

    def test_bga_diagonal_step(self):
        # full trapezoids lose two balls per ring inward
        sizes = trapezoid_rows(52, 4)
        assert sizes == [16, 14, 12, 10]

    def test_small_counts_fall_back(self):
        sizes = trapezoid_rows(5, 4)
        assert sum(sizes) == 5 and all(s >= 1 for s in sizes)

    def test_too_few_nets_rejected(self):
        with pytest.raises(CircuitSpecError):
            trapezoid_rows(2, 4)

    @given(st.integers(min_value=4, max_value=300), st.integers(min_value=1, max_value=6))
    @settings(max_examples=60)
    def test_property_sum_and_monotone(self, count, rows):
        if count < rows:
            return
        sizes = trapezoid_rows(count, rows)
        assert sum(sizes) == count
        assert sizes == sorted(sizes, reverse=True)


class TestBuildDesign:
    def test_finger_count_preserved(self):
        for spec in TABLE1_SPECS:
            design = build_design(spec, seed=0)
            assert design.total_net_count == spec.finger_count

    def test_quadrant_balance(self):
        counts = quadrant_net_counts(CIRCUIT_1)
        assert sum(counts) == 96
        assert max(counts) - min(counts) <= 1

    def test_supply_fraction_respected(self):
        design = build_design(CIRCUIT_1, seed=0)
        supply = sum(
            1
            for __, quadrant in design
            for net in quadrant.netlist
            if net.net_type.is_supply
        )
        assert supply == round(96 * CIRCUIT_1.supply_fraction)

    def test_supply_spread_over_quadrants(self):
        design = build_design(CIRCUIT_1, seed=0)
        per_side = [
            sum(1 for net in quadrant.netlist if net.net_type.is_supply)
            for __, quadrant in design
        ]
        assert max(per_side) - min(per_side) <= 1

    def test_both_networks_present(self):
        design = build_design(CIRCUIT_1, seed=0)
        types = {
            net.net_type
            for __, quadrant in design
            for net in quadrant.netlist
        }
        assert NetType.POWER in types and NetType.GROUND in types

    def test_deterministic(self):
        a = build_design(CIRCUIT_1, seed=5)
        b = build_design(CIRCUIT_1, seed=5)
        assert [n.name for n in a.all_nets()] == [n.name for n in b.all_nets()]

    def test_stacked_tiers_in_range(self):
        design = build_design(table1_circuit(1, tier_count=4), seed=0)
        tiers = {net.tier for net in design.all_nets()}
        assert tiers <= {1, 2, 3, 4}
        assert len(tiers) == 4

    def test_build_table1_designs(self):
        designs = build_table1_designs()
        assert set(designs) == {f"circuit{i}" for i in range(1, 6)}

    def test_designs_are_assignable(self):
        design = build_design(CIRCUIT_1, seed=0)
        for assignment in assign_design(DFAAssigner(), design).values():
            assert is_legal(assignment)


class TestFigureExamples:
    def test_fig5_structure(self):
        quadrant = fig5_quadrant()
        assert quadrant.net_count == 12
        assert quadrant.row_count == 3
        assert quadrant.highest_row_nets() == [11, 6, 9]

    def test_fig13_structure(self):
        quadrant = fig13_quadrant()
        assert quadrant.net_count == 20
        assert quadrant.row_count == 4

    def test_realchip_spec(self):
        assert REALCHIP_SPEC.finger_count == 138
