"""Tests for the Fenwick free-slot index, including a brute-force oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign.fenwick import FreeSlotIndex
from repro.errors import AssignmentError


class TestBasics:
    def test_initial_state(self):
        index = FreeSlotIndex(5)
        assert index.free_count == 5
        assert index.kth_free(0) == 0
        assert index.kth_free(4) == 4
        assert index.free_before(3) == 3

    def test_take_and_query(self):
        index = FreeSlotIndex(5)
        index.take(1)
        index.take(3)
        assert index.free_count == 3
        assert not index.is_free(1)
        assert index.kth_free(0) == 0
        assert index.kth_free(1) == 2
        assert index.kth_free(2) == 4
        assert index.free_before(4) == 2  # slots 0 and 2

    def test_kth_free_after(self):
        index = FreeSlotIndex(6)
        index.take(0)
        index.take(2)
        # free: 1, 3, 4, 5
        assert index.kth_free_after(0, -1) == 1
        assert index.kth_free_after(0, 1) == 3
        assert index.kth_free_after(2, 1) == 5
        assert index.free_after(1) == 3

    def test_errors(self):
        index = FreeSlotIndex(3)
        with pytest.raises(AssignmentError):
            FreeSlotIndex(0)
        with pytest.raises(AssignmentError):
            index.kth_free(3)
        index.take(0)
        with pytest.raises(AssignmentError):
            index.take(0)
        with pytest.raises(AssignmentError):
            index.take(5)


class TestAgainstOracle:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_interleaving(self, size, seed):
        """Random takes + queries must match a plain-list oracle."""
        rng = random.Random(seed)
        index = FreeSlotIndex(size)
        free = list(range(size))
        for __ in range(size):
            if free and rng.random() < 0.6:
                victim = rng.choice(free)
                index.take(victim)
                free.remove(victim)
            if free:
                k = rng.randrange(len(free))
                assert index.kth_free(k) == free[k]
                boundary = rng.randrange(-1, size)
                expected_after = [s for s in free if s > boundary]
                assert index.free_after(boundary) == len(expected_after)
                if expected_after:
                    j = rng.randrange(len(expected_after))
                    assert index.kth_free_after(j, boundary) == expected_after[j]
            assert index.free_count == len(free)
