"""Tests for the flip-chip (area-array) comparison (paper section 2.4)."""

import pytest

from repro.errors import PowerModelError
from repro.power import (
    PowerGridConfig,
    area_pad_nodes,
    compare_packaging,
)


class TestAreaPads:
    def test_grid_shape(self):
        config = PowerGridConfig(size=20)
        nodes = area_pad_nodes(config, pads_per_side=3)
        assert len(nodes) == 9
        # all pads inside the die, none on the very edge (margin 0.1)
        for x, y in nodes:
            assert 0 < x < 19 and 0 < y < 19

    def test_single_pad_centered(self):
        config = PowerGridConfig(size=21)
        nodes = area_pad_nodes(config, pads_per_side=1)
        assert nodes == [(10, 10)]

    def test_validation(self):
        config = PowerGridConfig(size=10)
        with pytest.raises(PowerModelError):
            area_pad_nodes(config, pads_per_side=0)
        with pytest.raises(PowerModelError):
            area_pad_nodes(config, pads_per_side=2, margin=0.7)


class TestComparison:
    def test_flipchip_beats_wirebond(self):
        """The paper's section-2.4 claim, quantified."""
        config = PowerGridConfig(size=24)
        comparison = compare_packaging(config, pad_count=9)
        assert comparison.flipchip_max_drop < comparison.wirebond_max_drop
        assert 0 < comparison.flipchip_advantage < 1

    def test_advantage_grows_with_die_size(self):
        """Bigger cores suffer more from boundary-only delivery."""
        small = compare_packaging(PowerGridConfig(size=12), pad_count=9)
        large = compare_packaging(PowerGridConfig(size=36), pad_count=9)
        assert large.flipchip_advantage > small.flipchip_advantage

    def test_pad_count_validated(self):
        with pytest.raises(PowerModelError):
            compare_packaging(PowerGridConfig(size=12), pad_count=0)
